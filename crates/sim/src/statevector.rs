//! The exact state-vector backend.

use mbu_circuit::{Angle, Basis, Circuit, CompiledCircuit, Gate, QubitId};
use rand::RngCore;

use crate::complex::Complex;
use crate::error::SimError;
use crate::exec::{self, Executed};
use crate::kernels::{self, Par};
use crate::pool::AmpPool;
use crate::simulator::{ConcreteFork, Fork, Simulator};
use crate::soa::Amps;

/// Tolerance below which a probability is treated as exactly 0 or 1 when
/// reading definite bits out of the state vector.
const DEFINITE_TOL: f64 = 1e-9;

/// Probability mass the reclamation engine may discard when compacting a
/// dead qubit out of the state. Post-measurement projections leave exact
/// zeros on the dead branch; MBU corrections (H·U·H chains) leave
/// `~1e-17`-amplitude rounding residues (`~1e-34` mass), far below this.
/// The threshold is deliberately tight — discarded amplitudes stay under
/// `1e-10`, an order below every equivalence bound the test suite asserts
/// — because a dead qubit carrying more mass than this on both branches
/// may be genuinely entangled (e.g. via a tiny controlled rotation after
/// its measurement) and projecting it away un-renormalised would visibly
/// change later Born probabilities. Such drops are skipped instead:
/// reclamation must never change the state it cannot prove separable.
const RECLAIM_TOL: f64 = 1e-20;

/// Maximum width the state-vector backend accepts (2^26 amplitudes ≈ 1 GiB).
pub const MAX_STATEVECTOR_QUBITS: usize = 26;

const FRAC_1_SQRT_2: f64 = std::f64::consts::FRAC_1_SQRT_2;

/// How the [`StateVector`] applies gates.
///
/// The default [`Stride`](KernelMode::Stride) mode uses the bit-stride
/// kernels of the [`kernels`] module: 1-qubit gates touch `2^(n-1)`
/// amplitude pairs, controlled gates iterate only the control-satisfied
/// subspace, diagonal gates are pure phase sweeps.
/// [`Scan`](KernelMode::Scan) is the unoptimised reference path — a full
/// `0..2^n` sweep with a per-index branch for every gate — retained for
/// differential testing and for benchmarking the stride kernels against.
/// Both modes compute the same amplitudes (the arithmetic per touched
/// amplitude is identical; only the iteration scheme differs).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum KernelMode {
    /// Stride-based kernels (the default).
    #[default]
    Stride,
    /// Full-amplitude-sweep reference implementation.
    Scan,
}

/// An exact state-vector simulator.
///
/// Amplitudes are indexed little-endian: qubit `i` is bit `i` of the index,
/// so a register `q[0..n]` holding the integer `v` contributes `v << 0` when
/// the register occupies the low qubits.
///
/// # Examples
///
/// ```
/// use mbu_circuit::CircuitBuilder;
/// use mbu_sim::StateVector;
/// use rand::SeedableRng;
///
/// // A Bell pair: H then CNOT.
/// let mut b = CircuitBuilder::new();
/// let q = b.qreg("q", 2);
/// b.h(q[0]);
/// b.cx(q[0], q[1]);
/// let circuit = b.finish();
///
/// let mut sim = StateVector::zeros(2).unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// sim.run(&circuit, &mut rng).unwrap();
/// assert!((sim.probability_of(0b00) - 0.5).abs() < 1e-12);
/// assert!((sim.probability_of(0b11) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug)]
pub struct StateVector {
    num_qubits: usize,
    amps: Amps,
    mode: KernelMode,
    /// Whether compiled runs may execute `Drop` instructions by compacting
    /// the amplitude array (defaults to on; `MBU_RECLAIM=0` force-disables).
    reclaim: bool,
    /// Whether stride kernels use the vectorized grouped enumeration
    /// (defaults to on; `MBU_SIMD=0` force-disables). Bit-identity either
    /// way — the switch changes iteration shape only, never arithmetic.
    simd: bool,
    /// Peak live amplitudes of the most recent compiled run.
    last_run_peak: Option<usize>,
    /// Requested intra-state amplitude worker lanes (`MBU_AMP_THREADS`
    /// construction default; 1 = serial).
    amp_threads: usize,
    /// The persistent worker pool, spawned lazily on the first kernel call
    /// large enough to benefit (never for small states).
    pool: Option<AmpPool>,
    /// Reusable destination buffer for permutation-block sweeps
    /// ([`kernels::permute`] streams `amps` into it and swaps), allocated
    /// on first need and kept across blocks so a deep shot pays the
    /// allocation once.
    scratch: Option<Amps>,
}

impl Clone for StateVector {
    fn clone(&self) -> Self {
        Self {
            num_qubits: self.num_qubits,
            amps: self.amps.clone(),
            mode: self.mode,
            reclaim: self.reclaim,
            simd: self.simd,
            last_run_peak: self.last_run_peak,
            amp_threads: self.amp_threads,
            // Worker pools are per-instance (one in-flight job each); the
            // clone lazily spawns its own when it first needs one. The
            // permutation scratch buffer is pure scratch — reallocated on
            // first need rather than copied.
            pool: None,
            scratch: None,
        }
    }
}

/// The process-wide reclamation default: on, unless the `MBU_RECLAIM`
/// environment variable disables it (`0`, `off`, `false`, `no`), resolved
/// through the shared [`mbu_circuit::knobs`] policy — unparsable values
/// warn once and keep the default instead of silently counting as "on".
/// The env var flips the *construction default* only — explicit
/// `with_reclamation(..)` calls always win — so the CI leg that sets
/// `MBU_RECLAIM=0` runs every test that doesn't pick an engine explicitly
/// on the non-compacting path. Read once: `StateVector` construction sits
/// in `ShotRunner`'s per-shot hot loop, and `std::env::var` takes a
/// process-global lock.
fn reclaim_default() -> bool {
    static DEFAULT: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| {
        mbu_circuit::knobs::switch(
            "MBU_RECLAIM",
            std::env::var("MBU_RECLAIM").ok().as_deref(),
            true,
        )
    })
}

/// Resolves an (injected) `MBU_SIMD` value: the vectorized grouped
/// enumeration is on unless the variable disables it (`0`, `off`,
/// `false`, `no`), through the same shared [`mbu_circuit::knobs`] policy
/// as `MBU_RECLAIM` — unparsable values warn once and keep the default.
/// Injected rather than read here so the policy is testable without
/// mutating process-global state.
fn resolve_simd(env_value: Option<&str>) -> bool {
    mbu_circuit::knobs::switch("MBU_SIMD", env_value, true)
}

/// The process-wide SIMD construction default. Like [`reclaim_default`],
/// the env var flips the *construction default* only — explicit
/// [`StateVector::with_simd`] calls always win, which is also how the
/// benches pit the two enumerations against each other inside one
/// process — and it is read once because construction sits in per-shot
/// hot loops.
pub(crate) fn simd_default() -> bool {
    static DEFAULT: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| resolve_simd(std::env::var("MBU_SIMD").ok().as_deref()))
}

/// The process-wide amplitude-lane construction default: 1 (serial),
/// unless the `MBU_AMP_THREADS` environment variable pins a positive lane
/// count. Serial by default because amplitude parallelism only pays on
/// large states and the [`ShotRunner`](crate::ShotRunner) assigns lanes
/// itself from its thread budget; unparsable values (and `0`, which has no
/// meaning for a lane count) warn once and stay serial. Read once, like
/// [`reclaim_default`]: construction sits in per-shot hot loops.
/// Resolves an (injected) `MBU_AMP_THREADS` value to a lane pin: `None`
/// when unset (callers pick their own default — the state vector runs
/// serial, the [`ShotRunner`](crate::ShotRunner) auto-schedules), a
/// positive integer pins that many lanes, and `0` or unparsable garbage
/// warns once and pins **serial** — one policy for every consumer, so an
/// explicit `MBU_AMP_THREADS=0` can never come back as multi-lane
/// parallelism through a different code path.
///
/// Injected value rather than an env read here so the policy is testable
/// without mutating process-global state (mirrors
/// `shots::resolve_threads`); the parse-and-warn-once policy itself lives
/// in the shared [`mbu_circuit::knobs`] resolver.
fn resolve_amp_threads(env_value: Option<&str>) -> Option<usize> {
    mbu_circuit::knobs::positive_count("MBU_AMP_THREADS", env_value, 1, "serial amplitude kernels")
}

/// The process-wide `MBU_AMP_THREADS` pin, resolved through
/// [`resolve_amp_threads`] and read once (construction sits in per-shot
/// hot loops, like [`reclaim_default`]).
pub(crate) fn amp_threads_env() -> Option<usize> {
    static DEFAULT: std::sync::OnceLock<Option<usize>> = std::sync::OnceLock::new();
    *DEFAULT.get_or_init(|| resolve_amp_threads(std::env::var("MBU_AMP_THREADS").ok().as_deref()))
}

/// The amplitude-lane construction default: serial unless the environment
/// pins a lane count. Serial by default because amplitude parallelism
/// only pays on large states and the [`ShotRunner`](crate::ShotRunner)
/// assigns lanes itself from its thread budget.
fn amp_threads_default() -> usize {
    amp_threads_env().unwrap_or(1)
}

impl StateVector {
    /// Creates `|0…0⟩` over `num_qubits` qubits.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::TooManyQubits`] above
    /// [`MAX_STATEVECTOR_QUBITS`].
    pub fn zeros(num_qubits: usize) -> Result<Self, SimError> {
        if num_qubits > MAX_STATEVECTOR_QUBITS {
            return Err(SimError::TooManyQubits {
                requested: num_qubits,
                max: MAX_STATEVECTOR_QUBITS,
            });
        }
        let mut amps = Amps::zeroed(1usize << num_qubits);
        amps.set(0, Complex::ONE);
        Ok(Self {
            num_qubits,
            amps,
            mode: KernelMode::Stride,
            reclaim: reclaim_default(),
            simd: simd_default(),
            last_run_peak: None,
            amp_threads: amp_threads_default(),
            pool: None,
            scratch: None,
        })
    }

    /// Creates the basis state `|index⟩`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::TooManyQubits`] for oversized widths, or
    /// [`SimError::OutOfRange`] if `index ≥ 2^num_qubits`.
    pub fn basis(num_qubits: usize, index: u64) -> Result<Self, SimError> {
        let mut sv = Self::zeros(num_qubits)?;
        sv.prepare_basis(index)?;
        Ok(sv)
    }

    /// Creates a state from raw amplitudes (length must be a power of two).
    ///
    /// The amplitudes are used as-is; callers wanting a normalised state
    /// should normalise first.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfRange`] if the length is not a power of two
    /// or [`SimError::TooManyQubits`] if it is too large.
    pub fn from_amplitudes(amps: Vec<Complex>) -> Result<Self, SimError> {
        if !amps.len().is_power_of_two() {
            return Err(SimError::OutOfRange {
                what: format!("amplitude vector of length {}", amps.len()),
            });
        }
        let num_qubits = amps.len().trailing_zeros() as usize;
        if num_qubits > MAX_STATEVECTOR_QUBITS {
            return Err(SimError::TooManyQubits {
                requested: num_qubits,
                max: MAX_STATEVECTOR_QUBITS,
            });
        }
        Ok(Self {
            num_qubits,
            amps: Amps::from_complex(&amps),
            mode: KernelMode::Stride,
            reclaim: reclaim_default(),
            simd: simd_default(),
            last_run_peak: None,
            amp_threads: amp_threads_default(),
            pool: None,
            scratch: None,
        })
    }

    /// Switches the gate-application path (builder style).
    ///
    /// See [`KernelMode`]; the default is the stride kernels.
    #[must_use]
    pub fn with_kernel_mode(mut self, mode: KernelMode) -> Self {
        self.mode = mode;
        self
    }

    /// The active gate-application path.
    #[must_use]
    pub fn kernel_mode(&self) -> KernelMode {
        self.mode
    }

    /// Enables or disables qubit reclamation for compiled runs (builder
    /// style).
    ///
    /// When enabled (the default, unless the `MBU_RECLAIM` environment
    /// variable force-disables it) and the compiled program contains
    /// [`Drop`](mbu_circuit::Instr::Drop) instructions,
    /// [`run_compiled`](Simulator::run_compiled) executes on a *compacted*
    /// amplitude array: definite qubits are factored out up front,
    /// re-materialised the moment an instruction touches them, and dropped
    /// qubits are projected out for good — each live-set change halves or
    /// doubles the array. The run is observationally invisible: outcomes,
    /// RNG consumption, executed counts and the final state match the
    /// non-reclaiming engine (the final state exactly, up to the
    /// `≤ 1e-20`-mass rounding residues a drop discards).
    #[must_use]
    pub fn with_reclamation(mut self, enabled: bool) -> Self {
        self.reclaim = enabled;
        self
    }

    /// Whether compiled runs may compact dropped qubits out of the state.
    #[must_use]
    pub fn reclamation_enabled(&self) -> bool {
        self.reclaim
    }

    /// Enables or disables the vectorized kernel enumeration (builder
    /// style).
    ///
    /// When enabled (the default, unless the `MBU_SIMD` environment
    /// variable force-disables it), the stride kernels walk the amplitude
    /// array as *groups* of consecutive strided runs and hand each span to
    /// explicit 8-wide lane loops over the structure-of-arrays re/im
    /// buffers — the autovectorizable shape. When disabled, they fall back
    /// to the original run-at-a-time scalar enumeration. Amplitudes, RNG
    /// draws, outcomes and executed counts are **bit-identical** either
    /// way: the switch changes iteration shape only, never the
    /// per-amplitude arithmetic or its order — it exists so the scalar
    /// path stays an honest in-process A/B baseline (and a CI leg) for
    /// the vectorized one.
    #[must_use]
    pub fn with_simd(mut self, enabled: bool) -> Self {
        self.simd = enabled;
        self
    }

    /// Whether stride kernels use the vectorized grouped enumeration.
    #[must_use]
    pub fn simd_enabled(&self) -> bool {
        self.simd
    }

    /// Sets the number of amplitude worker lanes for gate execution
    /// (builder style, clamped to at least 1).
    ///
    /// With `n > 1` lanes, every stride kernel splits its sweep over the
    /// amplitude array into `n` chunks at deterministic boundaries and
    /// executes them on a persistent worker pool (spawned lazily, and only
    /// once the state is large enough for the sweep to outweigh the
    /// wake-up — tiny states always run serially). Chunks write disjoint
    /// amplitudes with unchanged per-amplitude arithmetic, so amplitudes,
    /// RNG draws and measurement outcomes are **bit-identical** to serial
    /// execution at any lane count.
    ///
    /// The construction default is 1 (serial), or the `MBU_AMP_THREADS`
    /// environment variable when set; the
    /// [`ShotRunner`](crate::ShotRunner) overrides it per shot from its
    /// unified thread budget.
    #[must_use]
    pub fn with_amp_threads(mut self, threads: usize) -> Self {
        Simulator::set_amp_threads(&mut self, threads);
        self
    }

    /// The requested amplitude worker lane count (1 = serial).
    #[must_use]
    pub fn amp_threads(&self) -> usize {
        self.amp_threads
    }

    /// Spawns the worker pool if lanes were requested, none exists yet and
    /// the state is large enough for parallel sweeps to pay.
    fn ensure_pool(&mut self) {
        if self.amp_threads > 1 && self.pool.is_none() && self.amps.len() >= kernels::PAR_MIN_AMPS {
            self.pool = Some(AmpPool::new(self.amp_threads));
        }
    }

    /// The peak number of live amplitudes the most recent compiled run
    /// operated on: the full `2^n` for the non-reclaiming engine, the
    /// largest compacted working set for the reclaiming one. `None` before
    /// any compiled run.
    #[must_use]
    pub fn last_run_peak_amplitudes(&self) -> Option<usize> {
        self.last_run_peak
    }

    /// Resets the state to `|index⟩`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfRange`] if `index ≥ 2^num_qubits`.
    pub fn prepare_basis(&mut self, index: u64) -> Result<(), SimError> {
        if index as u128 >= (1u128 << self.num_qubits) {
            return Err(SimError::OutOfRange {
                what: format!("basis index {index}"),
            });
        }
        self.amps.fill_zero();
        self.amps.set(index as usize, Complex::ONE);
        Ok(())
    }

    /// The number of qubits.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The amplitude of basis state `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index ≥ 2^num_qubits`.
    #[must_use]
    pub fn amplitude(&self, index: u64) -> Complex {
        self.amps.get(index as usize)
    }

    /// All amplitudes, indexed by basis state.
    ///
    /// Amplitudes are stored internally as structure-of-arrays re/im
    /// buffers (see the crate docs), so this materialises a fresh
    /// interleaved vector — an `O(2^n)` copy. Component values round-trip
    /// bit-exactly; hot paths wanting single entries should use
    /// [`amplitude`](Self::amplitude).
    #[must_use]
    pub fn amplitudes(&self) -> Vec<Complex> {
        self.amps.to_vec()
    }

    /// The probability of observing basis state `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index ≥ 2^num_qubits`.
    #[must_use]
    pub fn probability_of(&self, index: u64) -> f64 {
        self.amps.get(index as usize).norm_sqr()
    }

    /// The 2-norm of the state (1 for any normalised state).
    #[must_use]
    pub fn norm(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt()
    }

    /// `⟨self|other⟩`.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    #[must_use]
    pub fn inner_product(&self, other: &Self) -> Complex {
        assert_eq!(self.num_qubits, other.num_qubits, "width mismatch");
        let mut acc = Complex::ZERO;
        for (a, b) in self.amps.iter().zip(other.amps.iter()) {
            acc += a.conj() * b;
        }
        acc
    }

    /// If the state is a single basis state (within `tol` leaked
    /// probability), returns `(index, amplitude)`.
    #[must_use]
    pub fn as_basis(&self, tol: f64) -> Option<(u64, Complex)> {
        let mut best = 0usize;
        let mut best_p = -1.0;
        for (i, a) in self.amps.iter().enumerate() {
            let p = a.norm_sqr();
            if p > best_p {
                best_p = p;
                best = i;
            }
        }
        let leaked: f64 = self
            .amps
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != best)
            .map(|(_, a)| a.norm_sqr())
            .sum();
        if leaked <= tol {
            Some((best as u64, self.amps.get(best)))
        } else {
            None
        }
    }

    /// Reads the integer value of a register out of a basis index.
    ///
    /// Bit `i` of the result is the bit of `index` at position
    /// `qubits[i]` — registers are little-endian like everything else.
    #[must_use]
    pub fn register_value(index: u64, qubits: &[QubitId]) -> u64 {
        let mut v = 0u64;
        for (i, q) in qubits.iter().enumerate() {
            if (index >> q.index()) & 1 == 1 {
                v |= 1u64 << i;
            }
        }
        v
    }

    /// Builds a basis index with each register holding a given value.
    ///
    /// Inverse of [`register_value`](Self::register_value) over multiple
    /// registers: bit `i` of `value` lands on qubit `qubits[i]`.
    #[must_use]
    pub fn index_with(assignments: &[(&[QubitId], u64)]) -> u64 {
        let mut index = 0u64;
        for (qubits, value) in assignments {
            for (i, q) in qubits.iter().enumerate() {
                if (value >> i) & 1 == 1 {
                    index |= 1u64 << q.index();
                }
            }
        }
        index
    }

    /// Applies a single gate.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OutOfRange`] if any operand qubit lies outside
    /// the state, or [`SimError::DuplicateOperand`] if a multi-qubit gate
    /// names the same qubit twice. Out-of-range gates used to be silently
    /// ignored (or panic, depending on the gate); they are now rejected
    /// before touching any amplitude.
    pub fn apply_gate_pub(&mut self, gate: &Gate) -> Result<(), SimError> {
        self.apply(gate)
    }

    /// Runs an adaptive circuit, sampling measurements from `rng`.
    ///
    /// Convenience wrapper over the [`Simulator`] trait method for callers
    /// holding a concrete state and a concrete generator.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnwrittenClassicalBit`] if a conditional fires
    /// before its bit is measured, or [`SimError::OutOfRange`] if the
    /// circuit is wider than the state.
    pub fn run<R: RngCore>(
        &mut self,
        circuit: &Circuit,
        rng: &mut R,
    ) -> Result<Executed, SimError> {
        Simulator::run(self, circuit, rng)
    }

    /// The probability that qubit `q` reads 1 in the computational basis.
    /// One block-structured kernel sweep, summing in ascending index order
    /// exactly like the per-index filtered scan it replaced.
    fn prob_one(&self, q: QubitId) -> f64 {
        kernels::prob_of_set_bit(&self.amps, q.index())
    }

    /// The per-qubit probabilities of reading 1, for all of `qubits`, in a
    /// single sweep over the amplitudes (instead of one sweep per qubit).
    /// Zero-weight amplitudes — the overwhelming majority for the
    /// basis-like states register reads happen on — are skipped.
    fn marginals(&self, qubits: &[QubitId]) -> Vec<f64> {
        let mut p1 = vec![0.0f64; qubits.len()];
        for (i, a) in self.amps.iter().enumerate() {
            let w = a.norm_sqr();
            if w == 0.0 {
                continue;
            }
            for (j, q) in qubits.iter().enumerate() {
                if (i >> q.index()) & 1 == 1 {
                    p1[j] += w;
                }
            }
        }
        p1
    }

    /// Classifies a marginal probability as a definite bit, or reports the
    /// superposed qubit.
    fn definite_bit(p1: f64, q: QubitId) -> Result<bool, SimError> {
        if p1 >= 1.0 - DEFINITE_TOL {
            Ok(true)
        } else if p1 <= DEFINITE_TOL {
            Ok(false)
        } else {
            Err(SimError::ReadOfSuperposedQubit { qubit: q.0 })
        }
    }

    /// Rejects gates whose operands are out of range or duplicated.
    ///
    /// Kernels (stride and scan alike) assume valid operands: an
    /// out-of-range mask used to make some gates silently no-ops (`Z`,
    /// `CZ`, phases: the `i & m != 0` filter never fires) and others panic
    /// (`X`: `amps.swap` past the end), and a duplicated operand would make
    /// the pinned-bit expansion enumerate garbage. Validation up front
    /// turns all of that into a typed error.
    fn validate_gate(&self, gate: &Gate) -> Result<(), SimError> {
        let mut seen: [Option<QubitId>; 3] = [None; 3];
        let mut count = 0usize;
        let mut oob: Option<QubitId> = None;
        let mut dup: Option<QubitId> = None;
        gate.for_each_qubit(&mut |q| {
            if q.index() >= self.num_qubits {
                oob.get_or_insert(q);
            }
            if seen[..count].contains(&Some(q)) {
                dup.get_or_insert(q);
            } else if count < seen.len() {
                seen[count] = Some(q);
                count += 1;
            }
        });
        if let Some(q) = oob {
            return Err(SimError::OutOfRange {
                what: format!("gate `{gate}` on qubit q{}", q.0),
            });
        }
        if let Some(q) = dup {
            return Err(SimError::DuplicateOperand {
                gate: gate.to_string(),
                qubit: q.0,
            });
        }
        Ok(())
    }

    fn apply(&mut self, gate: &Gate) -> Result<(), SimError> {
        self.validate_gate(gate)?;
        match self.mode {
            KernelMode::Stride => {
                // Gate-at-a-time use: run the kernel under an empty frame
                // and materialise immediately (an X gate toggles the local
                // frame, so the flush performs the physical move).
                let mut flip = 0usize;
                self.apply_stride(gate, &mut flip);
                self.flush_flips(&mut flip);
            }
            KernelMode::Scan => self.apply_scan(gate),
        }
        Ok(())
    }

    /// Applies a fused dense block (local `gates` over the physical bit
    /// `positions` of the current array) in one sweep, flushing pending
    /// frame flips on the block's qubits first — the block computes in
    /// physical storage; flips on untouched qubits commute with it (they
    /// permute group bases, and the block acts identically on every
    /// group).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidFusedBlock`] when the descriptor fails
    /// the kernel's structural validation (checked in release builds too);
    /// the flips are only flushed once the positions are known to be
    /// in-range, so a rejected block leaves the amplitudes untouched.
    fn apply_fused_block(
        &mut self,
        positions: &[usize],
        gates: &[Gate],
        flip: &mut usize,
    ) -> Result<(), SimError> {
        self.ensure_pool();
        let Self {
            amps,
            pool,
            simd,
            scratch,
            ..
        } = self;
        let par = Par::new(pool.as_ref(), *simd);
        let width = amps.len().trailing_zeros() as usize;
        if positions.iter().all(|&p| p < width) {
            for &p in positions {
                Self::flush_flip_bit(par, amps, flip, p);
            }
        }
        if positions.len() > mbu_circuit::MAX_FUSED_QUBITS {
            // Wider than the dense-kernel arity: only permutation blocks
            // compile to this shape, applied as one index-remap sweep.
            let buf = scratch.get_or_insert_with(|| Amps::zeroed(0));
            kernels::permute(par, amps, buf, positions, gates)
        } else {
            kernels::fused(par, amps, positions, gates)
        }
    }

    /// Stride-kernel dispatch: every gate touches only the amplitudes it
    /// can move (see the [`kernels`] module docs). `flip` is the compiled
    /// executor's bit-flip frame: bit `q` set means qubit `q`'s storage is
    /// X-conjugated, so controls and diagonal pins activate on the
    /// *opposite* bit value, X gates toggle the frame instead of moving
    /// amplitudes, and H (the only non-permutation, non-diagonal gate)
    /// first materialises the pending flip on its operand. Gate-at-a-time
    /// callers hand in a fresh zero frame and flush right after, so the
    /// frame is an internal detail of batched (compiled) execution.
    fn apply_stride(&mut self, gate: &Gate, flip: &mut usize) {
        /// The active bit value for an operand under the frame.
        fn pin(flip: usize, q: QubitId) -> usize {
            1 ^ (flip >> q.index() & 1)
        }
        self.ensure_pool();
        let Self {
            amps, pool, simd, ..
        } = self;
        let par = Par::new(pool.as_ref(), *simd);
        match *gate {
            Gate::X(q) => *flip ^= 1usize << q.index(),
            Gate::H(q) => {
                Self::flush_flip_bit(par, amps, flip, q.index());
                kernels::h(par, amps, q.index());
            }
            Gate::Z(q) => kernels::z(par, amps, q.index(), pin(*flip, q)),
            Gate::Phase(q, theta) => kernels::phase1(
                par,
                amps,
                q.index(),
                pin(*flip, q),
                Complex::cis(theta.radians()),
            ),
            // A flipped CX/CCX *target* needs no adjustment: X on the
            // target commutes with the controlled-X itself.
            Gate::Cx(c, t) => kernels::cx(par, amps, c.index(), pin(*flip, c), t.index()),
            Gate::Cz(a, b) => kernels::cz(
                par,
                amps,
                a.index(),
                pin(*flip, a),
                b.index(),
                pin(*flip, b),
            ),
            Gate::CPhase(c, t, theta) => kernels::phase2(
                par,
                amps,
                c.index(),
                pin(*flip, c),
                t.index(),
                pin(*flip, t),
                Complex::cis(theta.radians()),
            ),
            Gate::Ccx(c1, c2, t) => kernels::ccx(
                par,
                amps,
                c1.index(),
                pin(*flip, c1),
                c2.index(),
                pin(*flip, c2),
                t.index(),
            ),
            Gate::Ccz(a, b, c) => kernels::ccz(
                par,
                amps,
                a.index(),
                pin(*flip, a),
                b.index(),
                pin(*flip, b),
                c.index(),
                pin(*flip, c),
            ),
            Gate::CcPhase(c1, c2, t, theta) => kernels::phase3(
                par,
                amps,
                c1.index(),
                pin(*flip, c1),
                c2.index(),
                pin(*flip, c2),
                t.index(),
                pin(*flip, t),
                Complex::cis(theta.radians()),
            ),
            Gate::Swap(a, b) => {
                // Physical SWAP conjugated by the frame is SWAP with the
                // frame bits exchanged.
                kernels::swap(par, amps, a.index(), b.index());
                let fa = *flip >> a.index() & 1;
                let fb = *flip >> b.index() & 1;
                if fa != fb {
                    *flip ^= (1usize << a.index()) | (1usize << b.index());
                }
            }
        }
    }

    /// Materialises the pending frame flip on qubit `q`, if any: one exact
    /// X kernel (pure amplitude moves, no arithmetic).
    fn flush_flip_bit(par: Par<'_>, amps: &mut Amps, flip: &mut usize, q: usize) {
        if *flip >> q & 1 == 1 {
            kernels::x(par, amps, q);
            *flip &= !(1usize << q);
        }
    }

    /// Materialises every pending frame flip. Called before measurements,
    /// resets and at the end of a compiled run, so observable state is
    /// always the physical one.
    fn flush_flips(&mut self, flip: &mut usize) {
        self.ensure_pool();
        let Self {
            amps, pool, simd, ..
        } = self;
        let par = Par::new(pool.as_ref(), *simd);
        let mut m = *flip;
        while m != 0 {
            let q = m.trailing_zeros() as usize;
            kernels::x(par, amps, q);
            m &= m - 1;
        }
        *flip = 0;
    }

    /// Reference implementation: a full `0..2^n` sweep with a per-index
    /// branch for every gate. Semantically identical to the stride path
    /// (same per-amplitude arithmetic); kept for differential tests and as
    /// the baseline the `simulators` bench compares the kernels against.
    fn apply_scan(&mut self, gate: &Gate) {
        match *gate {
            Gate::X(q) => {
                let m = 1usize << q.index();
                for i in 0..self.amps.len() {
                    if i & m == 0 {
                        self.amps.swap(i, i | m);
                    }
                }
            }
            Gate::Z(q) => {
                let m = 1usize << q.index();
                for i in 0..self.amps.len() {
                    if i & m != 0 {
                        self.amps.set(i, -self.amps.get(i));
                    }
                }
            }
            Gate::H(q) => {
                let m = 1usize << q.index();
                for i in 0..self.amps.len() {
                    if i & m == 0 {
                        let a = self.amps.get(i);
                        let b = self.amps.get(i | m);
                        self.amps.set(i, (a + b).scale(FRAC_1_SQRT_2));
                        self.amps.set(i | m, (a - b).scale(FRAC_1_SQRT_2));
                    }
                }
            }
            Gate::Phase(q, theta) => {
                let m = 1usize << q.index();
                let w = Complex::cis(theta.radians());
                for i in 0..self.amps.len() {
                    if i & m != 0 {
                        self.amps.set(i, self.amps.get(i) * w);
                    }
                }
            }
            Gate::Cx(c, t) => {
                let mc = 1usize << c.index();
                let mt = 1usize << t.index();
                for i in 0..self.amps.len() {
                    if i & mc != 0 && i & mt == 0 {
                        self.amps.swap(i, i | mt);
                    }
                }
            }
            Gate::Cz(a, b) => {
                let m = (1usize << a.index()) | (1usize << b.index());
                for i in 0..self.amps.len() {
                    if i & m == m {
                        self.amps.set(i, -self.amps.get(i));
                    }
                }
            }
            Gate::Ccx(c1, c2, t) => {
                let mc = (1usize << c1.index()) | (1usize << c2.index());
                let mt = 1usize << t.index();
                for i in 0..self.amps.len() {
                    if i & mc == mc && i & mt == 0 {
                        self.amps.swap(i, i | mt);
                    }
                }
            }
            Gate::Ccz(a, b, c) => {
                let m = (1usize << a.index()) | (1usize << b.index()) | (1usize << c.index());
                for i in 0..self.amps.len() {
                    if i & m == m {
                        self.amps.set(i, -self.amps.get(i));
                    }
                }
            }
            Gate::CPhase(c, t, theta) => {
                let m = (1usize << c.index()) | (1usize << t.index());
                let w = Complex::cis(theta.radians());
                for i in 0..self.amps.len() {
                    if i & m == m {
                        self.amps.set(i, self.amps.get(i) * w);
                    }
                }
            }
            Gate::CcPhase(c1, c2, t, theta) => {
                let m = (1usize << c1.index()) | (1usize << c2.index()) | (1usize << t.index());
                let w = Complex::cis(theta.radians());
                for i in 0..self.amps.len() {
                    if i & m == m {
                        self.amps.set(i, self.amps.get(i) * w);
                    }
                }
            }
            Gate::Swap(a, b) => {
                let ma = 1usize << a.index();
                let mb = 1usize << b.index();
                for i in 0..self.amps.len() {
                    if i & ma != 0 && i & mb == 0 {
                        self.amps.swap(i, i ^ ma ^ mb);
                    }
                }
            }
        }
    }

    /// The Born probability that the qubit at bit `p` reads 1, clamped
    /// into `[0, 1]`: long gate chains can push the summed mass a few ulps
    /// past 1, and the complementary branch probability `1 − p1` then goes
    /// negative — whose `1/sqrt` renormaliser is NaN and would silently
    /// poison every later amplitude. The summation order (ascending index)
    /// is part of the bit-identity contract between the sampling and
    /// forking measurement paths.
    fn z_prob_one(&self, p: usize) -> f64 {
        kernels::prob_of_set_bit(&self.amps, p).clamp(0.0, 1.0)
    }

    /// The renormalisation factor for projecting onto branch `outcome` of
    /// the qubit at bit position `p`, given its summed probability `p1`.
    fn z_branch_scale(&self, p: usize, outcome: bool, p1: f64) -> f64 {
        let prob = if outcome { p1 } else { 1.0 - p1 };
        if prob > 0.0 {
            1.0 / prob.sqrt()
        } else {
            // The branch carries no mass by the summed probability
            // (possible only when the draw callback ignores its argument,
            // or when every surviving amplitude is so small its square
            // underflowed). Renormalise from the directly-computed branch
            // mass when there is any; otherwise leave the survivors as-is
            // — never produce inf/NaN.
            let (m0, m1) = kernels::bit_masses(&self.amps, p);
            let kept = if outcome { m1 } else { m0 };
            if kept > 0.0 {
                1.0 / kept.sqrt()
            } else {
                1.0
            }
        }
    }

    /// Z-basis measurement: projects and renormalises.
    fn measure_z(&mut self, q: QubitId, draw: &mut dyn FnMut(f64) -> bool) -> bool {
        let p = q.index();
        let p1 = self.z_prob_one(p);
        let outcome = draw(p1);
        let scale = self.z_branch_scale(p, outcome, p1);
        kernels::project_bit(&mut self.amps, p, outcome, scale);
        outcome
    }

    /// A forked child sharing this state's configuration but **never** its
    /// worker pool: the child starts with `pool: None` and lazily spawns
    /// its own on first need, exactly like [`Clone`] — the pool's one-job
    /// protocol assumes a single `&mut` owner, so a pool shared between a
    /// parent and a forked child running on different threads would race
    /// its epoch/acknowledge handshake and deadlock.
    fn child_with_amps(&self, amps: Amps) -> Self {
        Self {
            num_qubits: self.num_qubits,
            amps,
            mode: self.mode,
            reclaim: self.reclaim,
            simd: self.simd,
            last_run_peak: None,
            amp_threads: self.amp_threads,
            pool: None,
            scratch: None,
        }
    }

    /// Counts amplitudes that are not exactly zero, giving up as soon as
    /// the count exceeds `bound` (returning `None`) so the hybrid planner
    /// can probe "is this state sparse enough to demote?" without paying a
    /// full `O(2^n)` sweep on dense states — the common case stops at the
    /// first `bound + 1` occupied entries.
    pub(crate) fn nonzero_count_capped(&self, bound: u64) -> Option<u64> {
        let mut count = 0u64;
        for a in self.amps.iter() {
            if a != Complex::ZERO {
                count += 1;
                if count > bound {
                    return None;
                }
            }
        }
        Some(count)
    }

    /// The both-branch Z measurement behind [`Simulator::measure_fork`]:
    /// one probability sweep plus one [`kernels::split_bit`] sweep yields
    /// both renormalised children, each **possible** branch bit-identical
    /// to a forced-outcome [`measure_z`](Self::measure_z) on a copy of the
    /// parent. An impossible branch (probability exactly 0) is never
    /// materialised — the outcome-1 side comes back as `None`, the
    /// outcome-0 side stays in the receiver with its dead half merely
    /// zeroed — and its kept-mass fallback sweep is skipped: every
    /// branch-tree consumer prunes zero-probability children unseen, and
    /// paying a full child allocation plus two extra sweeps per definite
    /// measurement would double the traffic of a full-expansion run.
    fn fork_z(&mut self, q: QubitId) -> ConcreteFork<Self> {
        let p = q.index();
        let p1 = self.z_prob_one(p);
        if p1 == 0.0 {
            // Outcome 0 is certain: its renormaliser is exactly
            // 1/√(1−0) = 1, so `measure_z(…, false)` would scale the
            // survivors by 1.0 (a bitwise no-op) and zero the dead half.
            kernels::zero_where_bit(&mut self.amps, p);
            return ConcreteFork::Split {
                p_one: p1,
                one: None,
            };
        }
        let scale0 = if p1 == 1.0 {
            1.0
        } else {
            self.z_branch_scale(p, false, p1)
        };
        let scale1 = self.z_branch_scale(p, true, p1);
        let one_amps = kernels::split_bit(&mut self.amps, 1usize << p, scale0, scale1);
        ConcreteFork::Split {
            p_one: p1,
            one: Some(self.child_with_amps(one_amps)),
        }
    }

    /// [`measure_fork`](Simulator::measure_fork) with the child still a
    /// concrete `StateVector` instead of a boxed trait object, so wrapper
    /// backends (the hybrid planner) can re-wrap both branches in their own
    /// type. The state vector always reports a split — its sampling path
    /// consumes one draw per measurement even when the outcome is certain,
    /// and the fork must mirror that so per-shot RNG replay stays
    /// bit-identical.
    pub(crate) fn fork_concrete(
        &mut self,
        qubit: QubitId,
        basis: Basis,
    ) -> Result<ConcreteFork<Self>, SimError> {
        if qubit.index() >= self.num_qubits {
            return Err(SimError::OutOfRange {
                what: format!("measured qubit q{}", qubit.0),
            });
        }
        match basis {
            Basis::Z => Ok(self.fork_z(qubit)),
            Basis::X => {
                // Same H-conjugation as the sampling path, applied to each
                // branch independently (the branches are product-separate
                // states once split).
                self.apply(&Gate::H(qubit))?;
                let fork = self.fork_z(qubit);
                self.apply(&Gate::H(qubit))?;
                let ConcreteFork::Split { p_one, mut one } = fork else {
                    unreachable!("fork_z always splits");
                };
                if let Some(one) = one.as_mut() {
                    one.apply(&Gate::H(qubit))?;
                }
                Ok(ConcreteFork::Split { p_one, one })
            }
        }
    }
}

/// Whether an index-gather/scatter over the live core (`2^live · live`
/// bit operations) is cheaper than a per-bit compaction/expansion cascade
/// over the full array (`≈ 2·2^n` contiguous element moves). True when
/// the live core is small relative to the full width.
fn gather_beats_cascade(live: usize, num_qubits: usize) -> bool {
    (1usize << live).saturating_mul(live.max(1)) <= 1usize << num_qubits
}

/// The full-width index bits contributed by the factored-out qubits.
fn virtual_base(slots: &[LiveSlot]) -> usize {
    let mut base = 0usize;
    for (q, slot) in slots.iter().enumerate() {
        if let LiveSlot::Virtual(true) = slot {
            base |= 1usize << q;
        }
    }
    base
}

/// Expands compact index `i` to its full-width index: bit `j` of `i`
/// lands at position `phys[j]`, on top of the virtual-qubit `base`.
fn scatter_index(base: usize, phys: &[usize], i: usize) -> usize {
    let mut idx = base;
    for (j, &q) in phys.iter().enumerate() {
        idx |= ((i >> j) & 1) << q;
    }
    idx
}

/// Where a logical qubit lives during a reclaiming compiled run.
#[derive(Clone, Copy, Debug)]
enum LiveSlot {
    /// Materialised in the amplitude array at this bit position.
    Live(usize),
    /// Factored out of the array while holding this definite bit.
    Virtual(bool),
}

/// The live-qubit remap table of one reclaiming compiled run.
///
/// The compiled engine's core assumption — `QubitId` equals statevector
/// bit position — stops holding the moment a drop compacts the array; this
/// table is the single source of truth that restores it: every instruction
/// operand is translated through [`LiveMap::ensure_live`] (materialising
/// factored-out qubits on first touch), and every drop updates the
/// positions of the survivors.
#[derive(Debug)]
struct LiveMap {
    /// Logical qubit → current location.
    slots: Vec<LiveSlot>,
    /// Physical bit position → logical qubit (`len` = live count).
    phys: Vec<usize>,
    /// Largest amplitude array the run has operated on so far.
    peak_amps: usize,
}

impl LiveMap {
    /// Factors every exactly-definite qubit out of `amps`, compacting the
    /// array down to the live core (and releasing the surplus capacity of
    /// the caller-held full-width allocation when the reduction is big).
    ///
    /// Exact by construction: a qubit is virtualised only when every
    /// amplitude on one of its branches is exactly zero, and each
    /// [`kernels::compact_bit`] step copies the survivors bit-for-bit.
    fn compact_definite(num_qubits: usize, amps: &mut Amps) -> Self {
        // One sweep: which bit values ever occur with nonzero amplitude.
        let mut ones = 0usize;
        let mut zeros = 0usize;
        for (i, a) in amps.iter().enumerate() {
            if a != Complex::ZERO {
                ones |= i;
                zeros |= !i;
            }
        }
        let mut slots = Vec::with_capacity(num_qubits);
        let mut phys = Vec::new();
        for q in 0..num_qubits {
            let seen1 = ones >> q & 1 == 1;
            let seen0 = zeros >> q & 1 == 1;
            if seen1 && seen0 {
                slots.push(LiveSlot::Live(phys.len()));
                phys.push(q);
            } else {
                slots.push(LiveSlot::Virtual(seen1));
            }
        }
        let live = phys.len();
        if live < num_qubits {
            if gather_beats_cascade(live, num_qubits) {
                // Few live qubits: gather the core directly into a fresh
                // (small) array, releasing the full-width allocation for
                // the duration of the run.
                let base = virtual_base(&slots);
                let mut compact = Amps::zeroed(1usize << live);
                for i in 0..1usize << live {
                    compact.set(i, amps.get(scatter_index(base, &phys, i)));
                }
                *amps = compact;
            } else {
                // Mostly live: compact virtual positions from the top down
                // (each step a forward in-place copy over the shrinking
                // array — under 2·2^n element moves in total).
                for q in (0..num_qubits).rev() {
                    if let LiveSlot::Virtual(b) = slots[q] {
                        kernels::compact_bit(amps, q, b);
                    }
                }
                if amps.len() * 4 <= amps.capacity() {
                    amps.shrink_to_fit();
                }
            }
        }
        Self {
            slots,
            phys,
            peak_amps: amps.len(),
        }
    }

    /// The physical bit position of logical qubit `q`.
    ///
    /// Only valid once `q` is live — callers materialise every operand of
    /// an instruction (via [`ensure_live`](Self::ensure_live)) *before*
    /// translating any of them, because a materialisation shifts the
    /// positions of live qubits above its insertion point.
    fn position(&self, q: usize) -> usize {
        match self.slots[q] {
            LiveSlot::Live(p) => p,
            LiveSlot::Virtual(_) => unreachable!("operand materialised before translation"),
        }
    }

    /// Makes logical qubit `q` live, materialising it first if it had been
    /// factored out.
    fn ensure_live(&mut self, amps: &mut Amps, q: usize, flip: &mut usize) {
        if let LiveSlot::Virtual(b) = self.slots[q] {
            self.materialize(amps, q, b, flip);
        }
    }

    /// Re-inserts virtual qubit `q` (holding bit `b`) at its
    /// *order-preserving* position, doubling the array. Keeping `phys`
    /// sorted means the remap never accumulates a permutation: physical
    /// order always mirrors logical order, and the end-of-run restore is
    /// nothing but materialising the leftover virtual qubits. Live qubits
    /// above the insertion point shift up by one, as do their pending
    /// bit-flip frame entries.
    fn materialize(&mut self, amps: &mut Amps, q: usize, b: bool, flip: &mut usize) {
        let p = self.phys.partition_point(|&lq| lq < q);
        kernels::expand_bit(amps, p, b);
        let low = *flip & ((1usize << p) - 1);
        let high = *flip >> p;
        *flip = low | (high << (p + 1));
        self.phys.insert(p, q);
        self.slots[q] = LiveSlot::Live(p);
        for j in p + 1..self.phys.len() {
            self.slots[self.phys[j]] = LiveSlot::Live(j);
        }
        self.peak_amps = self.peak_amps.max(amps.len());
    }

    /// Executes a `Drop`: verifies the qubit is definite (all mass on one
    /// branch, up to reclamation tolerance), projects, compacts the array
    /// to half its length and re-indexes the surviving qubits and the
    /// bit-flip frame. A qubit that cannot be proven definite stays live —
    /// skipping is always safe because drops are advisory.
    fn drop_qubit(&mut self, amps: &mut Amps, q: usize, flip: &mut usize, simd: bool) {
        let LiveSlot::Live(p) = self.slots[q] else {
            // Factored out since the initial compaction and never touched
            // again: already reclaimed.
            return;
        };
        StateVector::flush_flip_bit(Par::new(None, simd), amps, flip, p);
        let (m0, m1) = kernels::bit_masses(amps, p);
        let keep = if m0 <= RECLAIM_TOL {
            true
        } else if m1 <= RECLAIM_TOL {
            false
        } else {
            // Not provably definite: leave the qubit live.
            return;
        };
        kernels::compact_bit(amps, p, keep);
        // Close the gap at position `p` in the frame and the remap.
        let low = *flip & ((1usize << p) - 1);
        let high = *flip >> (p + 1);
        *flip = low | (high << p);
        self.phys.remove(p);
        for j in p..self.phys.len() {
            self.slots[self.phys[j]] = LiveSlot::Live(j);
        }
        self.slots[q] = LiveSlot::Virtual(keep);
    }

    /// Re-expands `amps` to the full `2^num_qubits` layout with every
    /// logical qubit back at its own bit position — virtual qubits
    /// re-inserted at their recorded definite values — so the external
    /// `QubitId == bit position` contract holds again after the run.
    ///
    /// Because `phys` is kept sorted throughout the run, this is just the
    /// remaining materialisations: once every qubit is live, position
    /// equals logical index by construction.
    fn restore(mut self, amps: &mut Amps, num_qubits: usize) {
        let live = self.phys.len();
        if live == num_qubits {
            // `phys` is sorted, so fully-live means identity already.
            return;
        }
        if gather_beats_cascade(live, num_qubits) {
            // Small live core: scatter it into a fresh full-width array.
            let base = virtual_base(&self.slots);
            let mut out = Amps::zeroed(1usize << num_qubits);
            for (i, a) in amps.iter().enumerate() {
                out.set(scatter_index(base, &self.phys, i), a);
            }
            *amps = out;
            return;
        }
        // Flips are flushed before restore; materialisation shifts nothing.
        let mut no_flips = 0usize;
        for q in 0..num_qubits {
            if let LiveSlot::Virtual(b) = self.slots[q] {
                self.materialize(amps, q, b, &mut no_flips);
            }
        }
        debug_assert_eq!(self.phys.len(), num_qubits);
        debug_assert!(self.phys.iter().enumerate().all(|(j, &q)| j == q));
    }
}

/// A physical bit position as a [`QubitId`], as a typed error instead of
/// a panic when a (malformed) position cannot be encoded — the
/// drop/compaction path must never bring a worker thread down on bad
/// input.
fn physical_qubit(pos: usize) -> Result<QubitId, SimError> {
    u32::try_from(pos)
        .map(QubitId)
        .map_err(|_| SimError::OutOfRange {
            what: format!("physical qubit position {pos}"),
        })
}

impl StateVector {
    /// The reclaiming compiled executor: runs the program on a compacted
    /// amplitude array, materialising qubits on first touch and executing
    /// `Drop` instructions by projection + compaction, with every operand
    /// translated through the [`LiveMap`]. Restores the full-width layout
    /// (and records the peak working set) before returning — reclamation
    /// is invisible to everything outside the run.
    fn run_compiled_reclaiming(
        &mut self,
        compiled: &CompiledCircuit,
        rng: &mut dyn RngCore,
    ) -> Result<Executed, SimError> {
        let mut executed = Executed::default();
        let live =
            std::cell::RefCell::new(LiveMap::compact_definite(self.num_qubits, &mut self.amps));
        // The bit-flip frame, indexed by *physical* position.
        let flip = std::cell::Cell::new(0usize);
        let result = exec::execute_compiled_core(
            self,
            compiled,
            rng,
            &mut executed,
            |sv, g| {
                let mut lm = live.borrow_mut();
                let mut f = flip.get();
                // Materialise every operand before translating any: an
                // insertion shifts the positions of live qubits above it.
                g.for_each_qubit(&mut |q| lm.ensure_live(&mut sv.amps, q.index(), &mut f));
                let mut bad_position = None;
                let phys = g.map_qubits(|q| {
                    let pos = lm.position(q.index());
                    u32::try_from(pos).map(QubitId).unwrap_or_else(|_| {
                        bad_position.get_or_insert(pos);
                        QubitId(0)
                    })
                });
                drop(lm);
                if let Some(pos) = bad_position {
                    return physical_qubit(pos).map(|_| ());
                }
                sv.apply_stride(&phys, &mut f);
                flip.set(f);
                Ok(())
            },
            |sv, fu| {
                let mut lm = live.borrow_mut();
                let mut f = flip.get();
                for q in fu.qubits() {
                    lm.ensure_live(&mut sv.amps, q.index(), &mut f);
                }
                let positions: Vec<usize> =
                    fu.qubits().iter().map(|q| lm.position(q.index())).collect();
                drop(lm);
                // `phys` mirrors logical order, so ascending logical
                // operands translate to ascending physical positions — the
                // layout the fused kernels' group enumeration assumes.
                debug_assert!(positions.windows(2).all(|w| w[0] < w[1]));
                let applied = sv.apply_fused_block(&positions, fu.gates(), &mut f);
                flip.set(f);
                applied
            },
            |sv, q| {
                let mut f = flip.get();
                sv.flush_flips(&mut f);
                let mut lm = live.borrow_mut();
                lm.ensure_live(&mut sv.amps, q.index(), &mut f);
                flip.set(f);
                physical_qubit(lm.position(q.index()))
            },
            |sv, q| {
                let mut lm = live.borrow_mut();
                let mut f = flip.get();
                let simd = sv.simd;
                lm.drop_qubit(&mut sv.amps, q.index(), &mut f, simd);
                flip.set(f);
            },
            |_, _| Ok(()),
        );
        let mut f = flip.get();
        self.flush_flips(&mut f);
        let lm = live.into_inner();
        self.last_run_peak = Some(lm.peak_amps);
        lm.restore(&mut self.amps, self.num_qubits);
        result?;
        Ok(executed)
    }
}

impl Simulator for StateVector {
    fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    fn apply_gate(&mut self, gate: &Gate) -> Result<(), SimError> {
        self.apply(gate)
    }

    /// Single-sweep fused-block application for gate-at-a-time callers
    /// (the branch-tree engine's deterministic segments): dense blocks go
    /// through the gather kernel, wide permutation blocks through the
    /// index-remap kernel — bit-identical to replaying the constituents.
    /// The scan reference path keeps replaying gate by gate.
    fn apply_fused(&mut self, block: &mbu_circuit::FusedUnitary) -> Result<(), SimError> {
        if self.mode == KernelMode::Scan {
            for g in block.global_gates() {
                self.apply_gate(&g)?;
            }
            return Ok(());
        }
        if let Some(q) = block.qubits().iter().find(|q| q.index() >= self.num_qubits) {
            return Err(SimError::OutOfRange {
                what: format!("fused-block qubit {}", q.0),
            });
        }
        // Gate-at-a-time use runs under an empty frame (like `apply`);
        // blocks hold only frame-free gates, so nothing accrues to flush.
        let mut flip = 0usize;
        let positions: Vec<usize> = block.qubits().iter().map(|q| q.index()).collect();
        self.apply_fused_block(&positions, block.gates(), &mut flip)?;
        debug_assert_eq!(flip, 0, "fused blocks leave no pending frame flips");
        Ok(())
    }

    /// Frame-aware compiled execution: gates stream through the stride
    /// kernels under a bit-flip frame, so X gates cost one mask toggle and
    /// every controlled/diagonal gate absorbs pending flips into its pin
    /// values for free. The frame is materialised (exact amplitude moves)
    /// before any measurement or reset and at the end of the run, so
    /// results — amplitudes, outcomes, RNG consumption, executed counts —
    /// are bit-identical to the interpreted walk of the same lowered
    /// program. Compiled programs are pre-validated by construction, so
    /// per-gate operand checks are skipped on this path.
    ///
    /// When the program reclaims qubits (it contains `Drop` instructions)
    /// and reclamation is enabled, execution switches to the compacting
    /// engine: see [`StateVector::with_reclamation`].
    fn run_compiled(
        &mut self,
        compiled: &CompiledCircuit,
        rng: &mut dyn RngCore,
    ) -> Result<Executed, SimError> {
        exec::check_width(compiled.num_qubits(), self.num_qubits)?;
        let mut executed = Executed::default();
        if self.mode == KernelMode::Scan {
            // Reference semantics: the generic per-instruction executor.
            // Drops are ignored here — the scan path keeps the full array,
            // which is exactly what makes it a differential baseline for
            // the reclaiming engine.
            self.last_run_peak = Some(self.amps.len());
            exec::execute_compiled(self, compiled, rng, &mut executed)?;
            return Ok(executed);
        }
        if self.reclaim && compiled.reclaims_qubits() {
            return self.run_compiled_reclaiming(compiled, rng);
        }
        self.last_run_peak = Some(self.amps.len());
        // The frame lives in a `Cell` so the gate-application closure and
        // the pre-measurement flush hook can both reach it.
        let flip = std::cell::Cell::new(0usize);
        exec::execute_compiled_core(
            self,
            compiled,
            rng,
            &mut executed,
            |sv, g| {
                let mut f = flip.get();
                sv.apply_stride(g, &mut f);
                flip.set(f);
                Ok(())
            },
            |sv, fu| {
                let mut f = flip.get();
                let positions: Vec<usize> = fu.qubits().iter().map(|q| q.index()).collect();
                let applied = sv.apply_fused_block(&positions, fu.gates(), &mut f);
                flip.set(f);
                applied
            },
            |sv, q| {
                let mut f = flip.get();
                sv.flush_flips(&mut f);
                flip.set(f);
                Ok(q)
            },
            |_, _| {},
            |_, _| Ok(()),
        )?;
        let mut f = flip.get();
        self.flush_flips(&mut f);
        Ok(executed)
    }

    fn peak_amplitudes(&self) -> Option<u64> {
        self.last_run_peak.map(|p| p as u64)
    }

    /// The dense working set *is* the amplitude array: every entry is
    /// materialised whether or not it carries mass, so the occupancy a
    /// branch-tree leaf or hybrid planner should account for is its
    /// current length (compacted mid-run under reclamation, `2^n`
    /// otherwise).
    fn occupancy_peak(&self) -> Option<u64> {
        Some(self.amps.len() as u64)
    }

    fn set_amp_threads(&mut self, threads: usize) {
        let threads = threads.max(1);
        if threads != self.amp_threads {
            self.amp_threads = threads;
            // Re-spawn lazily at the new lane count (and never spawn at
            // all for a serial request).
            self.pool = None;
        }
    }

    fn set_bit(&mut self, q: QubitId, value: bool) -> Result<(), SimError> {
        if q.index() >= self.num_qubits {
            return Err(SimError::OutOfRange {
                what: format!("qubit q{}", q.0),
            });
        }
        let current = Self::definite_bit(self.prob_one(q), q)?;
        if current != value {
            self.apply(&Gate::X(q))?;
        }
        Ok(())
    }

    fn set_value(&mut self, qubits: &[QubitId], value: u128) -> Result<(), SimError> {
        if let Some(q) = qubits.iter().find(|q| q.index() >= self.num_qubits) {
            return Err(SimError::OutOfRange {
                what: format!("qubit q{}", q.0),
            });
        }
        // One marginal sweep for the whole register, then X where the
        // current bit differs from the requested one.
        let marginals = self.marginals(qubits);
        for (i, (q, p1)) in qubits.iter().zip(marginals).enumerate() {
            let desired = i < 128 && (value >> i) & 1 == 1;
            if Self::definite_bit(p1, *q)? != desired {
                self.apply(&Gate::X(*q))?;
            }
        }
        Ok(())
    }

    fn bit(&self, q: QubitId) -> Result<bool, SimError> {
        if q.index() >= self.num_qubits {
            return Err(SimError::OutOfRange {
                what: format!("qubit q{}", q.0),
            });
        }
        Self::definite_bit(self.prob_one(q), q)
    }

    fn value(&self, qubits: &[QubitId]) -> Result<u128, SimError> {
        if qubits.len() > 128 {
            return Err(SimError::OutOfRange {
                what: format!("register of width {}", qubits.len()),
            });
        }
        if let Some(q) = qubits.iter().find(|q| q.index() >= self.num_qubits) {
            return Err(SimError::OutOfRange {
                what: format!("qubit q{}", q.0),
            });
        }
        let marginals = self.marginals(qubits);
        let mut v = 0u128;
        for (i, (q, p1)) in qubits.iter().zip(marginals).enumerate() {
            if Self::definite_bit(p1, *q)? {
                v |= 1u128 << i;
            }
        }
        Ok(v)
    }

    fn global_phase(&self) -> Option<Angle> {
        // Only meaningful when the state is (numerically) one basis state
        // whose amplitude lies on the unit circle at a dyadic angle.
        let (_, amp) = self.as_basis(DEFINITE_TOL)?;
        if (amp.norm() - 1.0).abs() > 1e-6 {
            return None;
        }
        let tau = std::f64::consts::TAU;
        let turns = (amp.im.atan2(amp.re) / tau).rem_euclid(1.0);
        const LOG2_DENOM: u32 = 24;
        let scaled = (turns * f64::from(1u32 << LOG2_DENOM)).round();
        let numerator = (scaled as u128) % (1u128 << LOG2_DENOM);
        let angle = Angle::from_fraction(numerator, LOG2_DENOM);
        let back = Complex::cis(angle.radians());
        if (back - amp).norm() < 1e-6 {
            Some(angle)
        } else {
            None
        }
    }

    fn measure(
        &mut self,
        qubit: QubitId,
        basis: Basis,
        draw: &mut dyn FnMut(f64) -> bool,
    ) -> Result<bool, SimError> {
        if qubit.index() >= self.num_qubits {
            return Err(SimError::OutOfRange {
                what: format!("measured qubit q{}", qubit.0),
            });
        }
        match basis {
            Basis::Z => Ok(self.measure_z(qubit, draw)),
            Basis::X => {
                // Measure in X: rotate to Z, measure, rotate back so the
                // post-measurement state is |+⟩ or |−⟩.
                self.apply(&Gate::H(qubit))?;
                let outcome = self.measure_z(qubit, draw);
                self.apply(&Gate::H(qubit))?;
                Ok(outcome)
            }
        }
    }

    /// Both-branch measurement for the branch-tree engine: the receiver
    /// collapses to the outcome-0 branch, the returned child holds the
    /// outcome-1 branch. The state vector always reports a
    /// [`Fork::Split`] — see [`fork_concrete`](Self::fork_concrete).
    fn measure_fork(&mut self, qubit: QubitId, basis: Basis) -> Result<Option<Fork>, SimError> {
        Ok(Some(self.fork_concrete(qubit, basis)?.into_fork()))
    }

    fn reset(&mut self, qubit: QubitId, draw: &mut dyn FnMut(f64) -> bool) -> Result<(), SimError> {
        if qubit.index() >= self.num_qubits {
            return Err(SimError::OutOfRange {
                what: format!("reset qubit q{}", qubit.0),
            });
        }
        if self.measure_z(qubit, draw) {
            self.apply(&Gate::X(qubit))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbu_circuit::{Angle, CircuitBuilder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn q(i: u32) -> QubitId {
        QubitId(i)
    }

    #[test]
    fn width_guard() {
        assert!(matches!(
            StateVector::zeros(MAX_STATEVECTOR_QUBITS + 1),
            Err(SimError::TooManyQubits { .. })
        ));
    }

    #[test]
    fn out_of_range_gates_are_rejected_not_ignored() {
        // Every gate family, with one operand past the end of a 2-qubit
        // state. Before validation, Z/CZ/phase gates were silent no-ops and
        // X-like gates panicked; now all are typed errors and the state is
        // untouched.
        let theta = Angle::turn_over_power_of_two(2);
        let gates = [
            Gate::X(q(2)),
            Gate::Z(q(2)),
            Gate::H(q(2)),
            Gate::Phase(q(2), theta),
            Gate::Cx(q(0), q(2)),
            Gate::Cx(q(2), q(0)),
            Gate::Cz(q(0), q(7)),
            Gate::Ccx(q(0), q(1), q(2)),
            Gate::Ccz(q(2), q(0), q(1)),
            Gate::CPhase(q(0), q(2), theta),
            Gate::CcPhase(q(0), q(1), q(2), theta),
            Gate::Swap(q(1), q(2)),
        ];
        for mode in [KernelMode::Stride, KernelMode::Scan] {
            for gate in &gates {
                let mut sv = StateVector::basis(2, 0b01).unwrap().with_kernel_mode(mode);
                let err = sv.apply(gate).unwrap_err();
                assert!(
                    matches!(err, SimError::OutOfRange { .. }),
                    "{gate} ({mode:?}): {err}"
                );
                assert_eq!(sv.as_basis(0.0).unwrap().0, 0b01, "state untouched");
            }
        }
    }

    #[test]
    fn duplicate_operand_gates_are_rejected() {
        let theta = Angle::turn_over_power_of_two(3);
        let gates = [
            Gate::Cx(q(1), q(1)),
            Gate::Cz(q(0), q(0)),
            Gate::Swap(q(1), q(1)),
            Gate::Ccx(q(0), q(1), q(1)),
            Gate::Ccx(q(1), q(1), q(0)),
            Gate::CPhase(q(0), q(0), theta),
            Gate::CcPhase(q(1), q(0), q(1), theta),
        ];
        for gate in &gates {
            let mut sv = StateVector::zeros(2).unwrap();
            let err = sv.apply(gate).unwrap_err();
            assert!(
                matches!(err, SimError::DuplicateOperand { .. }),
                "{gate}: {err}"
            );
        }
    }

    #[test]
    fn out_of_range_measure_and_reset_are_rejected() {
        let mut sv = StateVector::zeros(1).unwrap();
        let mut draw = |_: f64| false;
        assert!(matches!(
            sv.measure(q(1), Basis::Z, &mut draw),
            Err(SimError::OutOfRange { .. })
        ));
        assert!(matches!(
            sv.measure(q(4), Basis::X, &mut draw),
            Err(SimError::OutOfRange { .. })
        ));
        assert!(matches!(
            Simulator::reset(&mut sv, q(1), &mut draw),
            Err(SimError::OutOfRange { .. })
        ));
    }

    #[test]
    fn stride_and_scan_modes_agree_bit_for_bit() {
        // A superposed 4-qubit state pushed through every gate family in
        // both kernel modes must match exactly: the per-amplitude
        // arithmetic is identical, only the iteration order differs.
        let theta = Angle::turn_over_power_of_two(3);
        let program = [
            Gate::H(q(0)),
            Gate::H(q(2)),
            Gate::Cx(q(2), q(1)),
            Gate::Ccx(q(3), q(0), q(2)),
            Gate::Phase(q(1), theta),
            Gate::CPhase(q(3), q(1), theta),
            Gate::CcPhase(q(1), q(2), q(0), theta),
            Gate::Z(q(0)),
            Gate::Cz(q(1), q(3)),
            Gate::Ccz(q(0), q(2), q(3)),
            Gate::Swap(q(0), q(3)),
            Gate::X(q(1)),
        ];
        let mut stride = StateVector::basis(4, 0b1010).unwrap();
        let mut scan = StateVector::basis(4, 0b1010)
            .unwrap()
            .with_kernel_mode(KernelMode::Scan);
        for gate in &program {
            stride.apply(gate).unwrap();
            scan.apply(gate).unwrap();
        }
        let stride_amps = stride.amplitudes();
        let scan_amps = scan.amplitudes();
        for (i, (a, b)) in stride_amps.iter().zip(&scan_amps).enumerate() {
            assert_eq!(a.re.to_bits(), b.re.to_bits(), "re of amp {i}");
            assert_eq!(a.im.to_bits(), b.im.to_bits(), "im of amp {i}");
        }
    }

    #[test]
    fn x_flips_a_basis_state() {
        let mut sv = StateVector::basis(3, 0b010).unwrap();
        sv.apply(&Gate::X(q(2))).unwrap();
        assert_eq!(sv.as_basis(1e-12).unwrap().0, 0b110);
    }

    #[test]
    fn h_twice_is_identity() {
        let mut sv = StateVector::basis(1, 1).unwrap();
        sv.apply(&Gate::H(q(0))).unwrap();
        sv.apply(&Gate::H(q(0))).unwrap();
        let (idx, amp) = sv.as_basis(1e-12).unwrap();
        assert_eq!(idx, 1);
        assert!((amp - Complex::ONE).norm() < 1e-12);
    }

    #[test]
    fn toffoli_truth_table() {
        for input in 0u64..8 {
            let mut sv = StateVector::basis(3, input).unwrap();
            sv.apply(&Gate::Ccx(q(0), q(1), q(2))).unwrap();
            let expected = if input & 0b011 == 0b011 {
                input ^ 0b100
            } else {
                input
            };
            assert_eq!(sv.as_basis(1e-12).unwrap().0, expected, "input {input:03b}");
        }
    }

    #[test]
    fn cphase_applies_only_when_both_set() {
        let theta = Angle::turn_over_power_of_two(2); // i
        for input in 0u64..4 {
            let mut sv = StateVector::basis(2, input).unwrap();
            sv.apply(&Gate::CPhase(q(0), q(1), theta)).unwrap();
            let (idx, amp) = sv.as_basis(1e-12).unwrap();
            assert_eq!(idx, input);
            let expected = if input == 0b11 {
                Complex::I
            } else {
                Complex::ONE
            };
            assert!((amp - expected).norm() < 1e-12, "input {input:02b}");
        }
    }

    #[test]
    fn swap_exchanges_bits() {
        let mut sv = StateVector::basis(2, 0b01).unwrap();
        sv.apply(&Gate::Swap(q(0), q(1))).unwrap();
        assert_eq!(sv.as_basis(1e-12).unwrap().0, 0b10);
    }

    #[test]
    fn z_measurement_collapses_and_renormalises() {
        let mut b = CircuitBuilder::new();
        let r = b.qreg("q", 1);
        b.h(r[0]);
        let _m = b.measure(r[0], Basis::Z);
        let circuit = b.finish();

        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut sv = StateVector::zeros(1).unwrap();
            let ex = sv.run(&circuit, &mut rng).unwrap();
            let outcome = ex.outcome(0).unwrap();
            let (idx, amp) = sv.as_basis(1e-12).unwrap();
            assert_eq!(idx == 1, outcome);
            assert!((amp.norm() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn measuring_a_nearly_impossible_branch_renormalises_safely() {
        // A state with ~1e-16 probability on the 0 branch — the residue
        // profile long dyadic-rotation chains leave behind. Forcing the
        // near-impossible outcome must renormalise from the branch's actual
        // mass instead of zeroing the state (the old `scale = 0` path) or
        // feeding a negative probability into `1/sqrt`.
        let mut sv =
            StateVector::from_amplitudes(vec![Complex::new(1e-8, 0.0), Complex::new(1.0, 0.0)])
                .unwrap();
        let mut force_zero = |_: f64| false;
        let outcome = sv.measure(q(0), Basis::Z, &mut force_zero).unwrap();
        assert!(!outcome);
        let a0 = sv.amplitude(0);
        assert!(a0.re.is_finite() && a0.im.is_finite());
        assert!((a0.re - 1.0).abs() < 1e-9, "renormalised, got {a0}");
        assert!((sv.norm() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn overfull_probability_sums_clamp_instead_of_going_negative() {
        // Summed |amp|² can exceed 1 by rounding; the complementary branch
        // probability must clamp to 0 — unclamped it reaches the draw
        // callback out of range (the rand shim asserts on that) and makes
        // the projector's 1/sqrt NaN.
        let mut sv = StateVector::from_amplitudes(vec![
            Complex::ZERO,
            Complex::new(1.0, 0.0),
            Complex::ZERO,
            Complex::new(1e-7, 0.0),
        ])
        .unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let mut draw = |p: f64| {
            assert!((0.0..=1.0).contains(&p), "p = {p} escaped the clamp");
            use rand::Rng;
            rng.gen_bool(p)
        };
        let outcome = sv.measure(q(0), Basis::Z, &mut draw).unwrap();
        assert!(outcome, "the p ≈ 1 branch");
        for a in sv.amplitudes() {
            assert!(a.re.is_finite() && a.im.is_finite());
        }
        assert!((sv.norm() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn x_measurement_leaves_plus_or_minus() {
        let mut b = CircuitBuilder::new();
        let r = b.qreg("q", 1);
        let _m = b.measure(r[0], Basis::X);
        let circuit = b.finish();
        let mut rng = StdRng::seed_from_u64(3);
        let mut sv = StateVector::zeros(1).unwrap();
        let ex = sv.run(&circuit, &mut rng).unwrap();
        let outcome = ex.outcome(0).unwrap();
        // |0⟩ measured in X collapses to (|0⟩ ± |1⟩)/√2.
        let expected_sign = if outcome { -1.0 } else { 1.0 };
        let a0 = sv.amplitude(0);
        let a1 = sv.amplitude(1);
        assert!((a0.norm_sqr() - 0.5).abs() < 1e-12);
        assert!((a1.re / a0.re - expected_sign).abs() < 1e-9);
    }

    #[test]
    fn register_value_round_trip() {
        let qubits = [q(1), q(3), q(4)];
        let index = StateVector::index_with(&[(&qubits, 0b101)]);
        assert_eq!(index, (1u64 << 1) | (1u64 << 4));
        assert_eq!(StateVector::register_value(index, &qubits), 0b101);
    }

    #[test]
    fn inner_product_detects_orthogonality() {
        let a = StateVector::basis(2, 0).unwrap();
        let b = StateVector::basis(2, 3).unwrap();
        assert!((a.inner_product(&b)).norm() < 1e-12);
        assert!((a.inner_product(&a) - Complex::ONE).norm() < 1e-12);
    }

    /// Two sequential Gidney AND compute/MBU-uncompute phases on *fresh*
    /// ancillas (q2 then q3) — the composition profile where reclamation
    /// pays: q2 is dropped before q3 is ever touched.
    fn two_phase_mbu_circuit() -> mbu_circuit::Circuit {
        let mut b = CircuitBuilder::new();
        let r = b.qreg("q", 4);
        for anc in [r[2], r[3]] {
            b.ccx(r[0], r[1], anc);
            b.h(anc);
            let m = b.measure(anc, Basis::Z);
            let (_, fix) = b.record(|b| {
                b.cz(r[0], r[1]);
                b.x(anc);
            });
            b.emit_conditional(m, &fix);
        }
        b.finish()
    }

    #[test]
    fn reclamation_is_observationally_invisible() {
        let circuit = two_phase_mbu_circuit();
        let compiled = mbu_circuit::CompiledCircuit::compile(&circuit).unwrap();
        assert!(compiled.reclaims_qubits(), "{compiled}");
        for seed in 0..24 {
            let mut on = StateVector::basis(4, 0b0011)
                .unwrap()
                .with_reclamation(true);
            let mut off = StateVector::basis(4, 0b0011)
                .unwrap()
                .with_reclamation(false);
            let mut rng_on = StdRng::seed_from_u64(seed);
            let mut rng_off = StdRng::seed_from_u64(seed);
            let ex_on = on.run_compiled(&compiled, &mut rng_on).unwrap();
            let ex_off = off.run_compiled(&compiled, &mut rng_off).unwrap();
            assert_eq!(ex_on, ex_off, "seed {seed}");
            let amps_on = on.amplitudes();
            let amps_off = off.amplitudes();
            for (i, (a, b)) in amps_on.iter().zip(&amps_off).enumerate() {
                assert!((*a - *b).norm() < 1e-12, "seed {seed} amp {i}: {a} vs {b}");
            }
            // Both ancillas uncomputed, data preserved.
            assert_eq!(on.as_basis(1e-9).unwrap().0, 0b0011, "seed {seed}");
        }
    }

    #[test]
    fn reclamation_halves_the_peak_working_set() {
        let circuit = two_phase_mbu_circuit();
        let compiled = mbu_circuit::CompiledCircuit::compile(&circuit).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let mut on = StateVector::basis(4, 0b0011)
            .unwrap()
            .with_reclamation(true);
        on.run_compiled(&compiled, &mut rng).unwrap();
        let peak_on = on.last_run_peak_amplitudes().unwrap();

        let mut rng = StdRng::seed_from_u64(9);
        let mut off = StateVector::basis(4, 0b0011)
            .unwrap()
            .with_reclamation(false);
        off.run_compiled(&compiled, &mut rng).unwrap();
        let peak_off = off.last_run_peak_amplitudes().unwrap();

        assert_eq!(peak_off, 1usize << 4, "non-reclaiming engine holds 2^n");
        assert!(
            peak_on * 2 <= peak_off,
            "q2 dropped before q3 materialises: peak {peak_on} vs {peak_off}"
        );
        assert_eq!(Simulator::peak_amplitudes(&on), Some(peak_on as u64));
    }

    #[test]
    fn indefinite_drops_are_skipped_not_projected() {
        // An X-basis measurement leaves the qubit in |+⟩/|−⟩ — collapsed
        // from the compiler's viewpoint (a drop is emitted) but not
        // definite, so the runtime must refuse to project it.
        let mut b = CircuitBuilder::new();
        let r = b.qreg("q", 2);
        b.x(r[1]);
        let _ = b.measure(r[0], Basis::X);
        let circuit = b.finish();
        let compiled = mbu_circuit::CompiledCircuit::compile(&circuit).unwrap();
        assert!(compiled.reclaims_qubits());
        for seed in 0..8 {
            let mut on = StateVector::zeros(2).unwrap().with_reclamation(true);
            let mut off = StateVector::zeros(2).unwrap().with_reclamation(false);
            let mut rng_on = StdRng::seed_from_u64(seed);
            let mut rng_off = StdRng::seed_from_u64(seed);
            let ex_on = on.run_compiled(&compiled, &mut rng_on).unwrap();
            let ex_off = off.run_compiled(&compiled, &mut rng_off).unwrap();
            assert_eq!(ex_on, ex_off);
            let amps_on = on.amplitudes();
            let amps_off = off.amplitudes();
            for (i, (a, b)) in amps_on.iter().zip(&amps_off).enumerate() {
                assert!((*a - *b).norm() < 1e-12, "seed {seed} amp {i}");
            }
            // The superposed qubit survived the skipped drop.
            assert!((on.probability_of(0b10) - 0.5).abs() < 1e-9);
        }
    }

    #[test]
    fn reclamation_restores_untouched_padding_qubits() {
        // A 2-qubit program on a 4-qubit state prepared at |1001⟩: the
        // padding qubits are factored out up front and must come back at
        // their original positions and values.
        let mut b = CircuitBuilder::new();
        let r = b.qreg("q", 2);
        b.x(r[0]);
        let _ = b.measure(r[1], Basis::Z);
        let circuit = b.finish();
        let compiled = mbu_circuit::CompiledCircuit::compile(&circuit).unwrap();
        assert!(compiled.reclaims_qubits());
        let mut sv = StateVector::basis(4, 0b1001)
            .unwrap()
            .with_reclamation(true);
        let mut rng = StdRng::seed_from_u64(0);
        let ex = sv.run_compiled(&compiled, &mut rng).unwrap();
        assert!(!ex.outcome(0).unwrap());
        assert_eq!(sv.as_basis(1e-12).unwrap().0, 0b1000, "X flipped q0");
        assert_eq!(sv.amplitudes().len(), 1usize << 4);
    }

    #[test]
    #[cfg_attr(miri, ignore)] // oversized for the miri CI leg
    fn amp_parallel_compiled_runs_are_bit_identical_to_serial() {
        // A 15-qubit (32768-amplitude, above the parallel threshold)
        // adaptive circuit: compiled execution with 4 amplitude lanes
        // must reproduce the serial run bit for bit — amplitudes,
        // records, executed counts — with and without fusion.
        let mut b = CircuitBuilder::new();
        let r = b.qreg("q", 15);
        for i in 0..14 {
            b.h(r[i]);
            b.cx(r[i], r[i + 1]);
        }
        b.ccx(r[0], r[7], r[14]);
        let m = b.measure(r[14], Basis::Z);
        let (_, fix) = b.record(|b| {
            b.h(r[13]);
            b.cx(r[13], r[14]);
        });
        b.emit_conditional(m, &fix);
        let circuit = b.finish();

        for fuse in [0usize, 3] {
            let config = mbu_circuit::PassConfig {
                fuse_max_qubits: fuse,
                ..mbu_circuit::PassConfig::default()
            };
            let compiled = mbu_circuit::CompiledCircuit::with_config(&circuit, &config).unwrap();
            let mut serial = StateVector::zeros(15).unwrap().with_amp_threads(1);
            let mut rng = StdRng::seed_from_u64(5);
            let ex_serial = serial.run_compiled(&compiled, &mut rng).unwrap();
            let mut parallel = StateVector::zeros(15).unwrap().with_amp_threads(4);
            let mut rng = StdRng::seed_from_u64(5);
            let ex_parallel = parallel.run_compiled(&compiled, &mut rng).unwrap();
            assert_eq!(ex_serial, ex_parallel, "fuse window {fuse}");
            let amps_serial = serial.amplitudes();
            let amps_parallel = parallel.amplitudes();
            for (i, (a, b)) in amps_serial.iter().zip(&amps_parallel).enumerate() {
                assert_eq!(a.re.to_bits(), b.re.to_bits(), "fuse {fuse}: re amp {i}");
                assert_eq!(a.im.to_bits(), b.im.to_bits(), "fuse {fuse}: im amp {i}");
            }
        }
    }

    #[test]
    fn amp_thread_resolution_policy_is_uniform() {
        // Unset: callers choose (state vector serial, runner auto).
        assert_eq!(resolve_amp_threads(None), None);
        // Positive integers pin.
        assert_eq!(resolve_amp_threads(Some("4")), Some(4));
        assert_eq!(resolve_amp_threads(Some(" 2 ")), Some(2));
        // 0 and garbage pin *serial* — never silently auto-parallel.
        assert_eq!(resolve_amp_threads(Some("0")), Some(1));
        assert_eq!(resolve_amp_threads(Some("lots")), Some(1));
        assert_eq!(resolve_amp_threads(Some("-3")), Some(1));
    }

    #[test]
    fn amp_threads_builder_and_trait_agree() {
        let sv = StateVector::zeros(1).unwrap().with_amp_threads(6);
        assert_eq!(sv.amp_threads(), 6);
        let mut sv = sv.with_amp_threads(0);
        assert_eq!(sv.amp_threads(), 1, "clamped to serial");
        Simulator::set_amp_threads(&mut sv, 3);
        assert_eq!(sv.amp_threads(), 3);
        // Clones share configuration but never a pool.
        let clone = sv.clone();
        assert_eq!(clone.amp_threads(), 3);
    }

    /// Drives an H sweep over qubits `1..n` and then captures the Born
    /// probability an ensuing Z measurement of qubit 1 would draw with —
    /// a bit-exact observable that works through `dyn Simulator`.
    fn sweep_and_probe(sim: &mut dyn Simulator, n: usize) -> f64 {
        for i in 1..n {
            sim.apply_gate(&Gate::H(q(u32::try_from(i).unwrap())))
                .unwrap();
        }
        let mut captured = f64::NAN;
        sim.measure(q(1), Basis::Z, &mut |p| {
            captured = p;
            false
        })
        .unwrap();
        captured
    }

    #[test]
    #[cfg_attr(miri, ignore)] // oversized for the miri CI leg
    fn forked_states_never_share_a_worker_pool_across_threads() {
        // Audit regression for the manual `Clone` / `measure_fork` pair:
        // the per-state worker pool runs a strict one-job handshake, so a
        // pool shared between a parent and its forked child would race the
        // epoch/acknowledge protocol and deadlock the moment both run on
        // different threads. Build a state big enough to actually spawn
        // the pool (above `PAR_MIN_AMPS`), fork it, then drive parent and
        // child concurrently: completing at all is half the assertion, and
        // both must reproduce a single-threaded reference bit for bit.
        let n = 15usize;
        let build = |lanes: usize| {
            let mut sv = StateVector::zeros(n).unwrap().with_amp_threads(lanes);
            sv.apply(&Gate::H(q(0))).unwrap();
            sv.apply(&Gate::Phase(q(0), Angle::turn_over_power_of_two(3)))
                .unwrap();
            sv.apply(&Gate::H(q(0))).unwrap();
            for i in 0..n - 1 {
                let i = u32::try_from(i).unwrap();
                sv.apply(&Gate::Cx(q(i), q(i + 1))).unwrap();
            }
            sv
        };
        let mut parallel = build(4);
        assert!(parallel.pool.is_some(), "pool spawned above the threshold");
        let Some(Fork::Split {
            p_one,
            one: Some(one),
        }) = parallel.measure_fork(q(0), Basis::Z).unwrap()
        else {
            panic!("a fair coin always splits with a materialised 1-branch");
        };

        let h_child = std::thread::spawn({
            let mut sim = one;
            move || sweep_and_probe(sim.as_mut(), n)
        });
        let h_parent = std::thread::spawn(move || {
            let p = sweep_and_probe(&mut parallel, n);
            (p, parallel)
        });
        let probe_child = h_child.join().unwrap();
        let (probe_parent, parent) = h_parent.join().unwrap();
        assert!(parent.pool.is_some(), "parent kept (or re-spawned) a pool");

        // Single-threaded reference of the same fork + sweep.
        let mut serial = build(1);
        let Some(Fork::Split {
            p_one: s_p_one,
            one: Some(mut s_child),
        }) = serial.measure_fork(q(0), Basis::Z).unwrap()
        else {
            panic!("a fair coin always splits with a materialised 1-branch");
        };
        assert_eq!(p_one.to_bits(), s_p_one.to_bits(), "fork probability");
        assert_eq!(
            probe_parent.to_bits(),
            sweep_and_probe(&mut serial, n).to_bits(),
            "parent branch diverged from serial"
        );
        assert_eq!(
            probe_child.to_bits(),
            sweep_and_probe(s_child.as_mut(), n).to_bits(),
            "child branch diverged from serial"
        );
    }

    #[test]
    fn simd_knob_resolution_policy() {
        // Unset and garbage keep the vectorized default; explicit
        // disablers turn it off.
        assert!(resolve_simd(None));
        assert!(resolve_simd(Some("1")));
        assert!(resolve_simd(Some("definitely")));
        assert!(!resolve_simd(Some("0")));
        assert!(!resolve_simd(Some("off")));
        assert!(!resolve_simd(Some("false")));
    }

    #[test]
    fn simd_builder_override_and_propagation() {
        let sv = StateVector::zeros(2).unwrap().with_simd(false);
        assert!(!sv.simd_enabled());
        assert!(!sv.clone().simd_enabled(), "clones keep the setting");
        let sv = sv.with_simd(true);
        assert!(sv.simd_enabled());
    }

    #[test]
    fn scalar_enumeration_matches_vectorized_bit_for_bit() {
        // The same gate program under both enumerations, amplitudes
        // compared exactly — the contract every equivalence suite in this
        // PR rides on, asserted here at its source.
        let theta = Angle::turn_over_power_of_two(3);
        let program = [
            Gate::H(q(0)),
            Gate::H(q(3)),
            Gate::Cx(q(3), q(1)),
            Gate::Ccx(q(0), q(1), q(4)),
            Gate::Phase(q(1), theta),
            Gate::CPhase(q(4), q(1), theta),
            Gate::CcPhase(q(1), q(2), q(0), theta),
            Gate::Cz(q(1), q(4)),
            Gate::Swap(q(0), q(4)),
            Gate::X(q(2)),
            Gate::H(q(2)),
        ];
        let mut vec = StateVector::basis(5, 0b10110).unwrap().with_simd(true);
        let mut sca = StateVector::basis(5, 0b10110).unwrap().with_simd(false);
        for gate in &program {
            vec.apply(gate).unwrap();
            sca.apply(gate).unwrap();
        }
        let va = vec.amplitudes();
        let sa = sca.amplitudes();
        for (i, (a, b)) in va.iter().zip(&sa).enumerate() {
            assert_eq!(a.re.to_bits(), b.re.to_bits(), "re of amp {i}");
            assert_eq!(a.im.to_bits(), b.im.to_bits(), "im of amp {i}");
        }
    }

    #[test]
    fn reclamation_default_honours_builder_override() {
        let sv = StateVector::zeros(1).unwrap();
        let off = sv.clone().with_reclamation(false);
        assert!(!off.reclamation_enabled());
        let on = off.with_reclamation(true);
        assert!(on.reclamation_enabled());
        assert_eq!(sv.last_run_peak_amplitudes(), None, "no compiled run yet");
    }

    #[test]
    fn bell_pair_probabilities() {
        let mut sv = StateVector::zeros(2).unwrap();
        sv.apply(&Gate::H(q(0))).unwrap();
        sv.apply(&Gate::Cx(q(0), q(1))).unwrap();
        assert!((sv.probability_of(0b00) - 0.5).abs() < 1e-12);
        assert!((sv.probability_of(0b11) - 0.5).abs() < 1e-12);
        assert!(sv.probability_of(0b01) < 1e-12);
        assert!(sv.as_basis(1e-12).is_none());
    }
}
