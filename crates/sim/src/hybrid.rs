//! The hybrid auto backend: representation-polymorphic execution with a
//! per-segment planner and mid-run representation switching.
//!
//! [`HybridState`] holds the quantum state in whichever representation is
//! currently cheapest — the dense [`StateVector`] array, the sparse
//! [`SparseVector`] basis map, or (opt-in) the Fourier-basis
//! [`PhaseAccumulator`](crate::PhaseAccumulator) — and re-decides at every
//! deterministic segment boundary of a compiled program:
//!
//! * **sparse → dense (promote)** before a segment whose `H` fan-out
//!   would push the occupied set past the sparsity threshold (and the
//!   register fits under the dense width cap);
//! * **dense → sparse (demote)** when the array's nonzero support has
//!   collapsed far enough (post-measurement, post-uncomputation) that the
//!   map representation wins even through the segment's fan-out;
//! * **sparse → phase (hop)** before a diagonal-heavy segment — at least
//!   `MBU_AUTO_PHASE_DIAG` diagonal gates — that outgrows the sparse
//!   sweet spot past the dense cap (a QFT-adder interior), when the phase
//!   arm is enabled with `MBU_AUTO_PHASE=1`; and **phase → sparse** back
//!   at the first segment that is not.
//!
//! The phase representation runs in *tandem*: the authoritative state is
//! still the sparse map (every gate, measurement and draw goes through
//! it, so the bit-identity contract below survives phase hops verbatim),
//! with the phase accumulator executing the same stream as a mirror and
//! resynchronised from the map after every non-unitary operation. The
//! pure `MBU_BACKEND=phase` backend is where the representation's
//! asymptotic wins land; inside `auto` it is a correctness-pinned
//! passenger that proves the three-way plumbing on live traffic.
//!
//! Conversions are the bit-exact moves of [`crate::convert`] — no
//! amplitude arithmetic — and both representations compute bit-identical
//! amplitudes for every gate (the sparse backend's contract), so a hybrid
//! run's amplitudes, measurement outcomes, classical records and executed
//! counts match the forced sparse run bit for bit. RNG consumption is
//! pinned to the sparse map's draw policy *regardless of the live
//! representation*: a definite measurement or reset (`p₁` exactly `0` or
//! `1`) consumes no draw even while dense — the wrapper shortcuts the
//! dense engine's unconditional draw, which is sound because the two
//! representations' ascending-order Born sums are bitwise identical, so
//! they agree exactly on which outcomes are definite. Hence
//! `MBU_BACKEND=auto` is stream-identical to `MBU_BACKEND=sparse` on
//! every circuit, and to `dense` as well on circuits whose measurements
//! are all genuinely random (every draw policy draws there).
//!
//! Selected at runtime with `MBU_BACKEND=auto`
//! ([`BackendKind`](crate::BackendKind)); the planning thresholds are the
//! compile-time defaults of [`mbu_circuit::DEFAULT_AUTO_DENSE_QUBITS`] /
//! [`mbu_circuit::DEFAULT_AUTO_SPARSITY`] /
//! [`mbu_circuit::DEFAULT_AUTO_PHASE_DIAG`], overridable through the
//! `MBU_AUTO_DENSE_QUBITS`, `MBU_AUTO_SPARSITY` and `MBU_AUTO_PHASE_DIAG`
//! environment knobs; the phase arm itself is off unless `MBU_AUTO_PHASE`
//! is set (the compile-time [`mbu_circuit::PassStats`] dump plans with it
//! on, showing what the run-time planner *would* do).

use std::sync::OnceLock;

use mbu_circuit::{Angle, Basis, CompiledCircuit, Gate, Instr, PlannedRepr, QubitId};
use rand::RngCore;

use crate::convert;
use crate::error::SimError;
use crate::exec::{self, Executed};
use crate::phase::PhaseAccumulator;
use crate::simulator::{ConcreteFork, Fork, Simulator};
use crate::sparse::SparseVector;
use crate::statevector::{StateVector, MAX_STATEVECTOR_QUBITS};

/// Below this many compiled instructions, per-segment planning is pure
/// overhead over just picking a backend — `MBU_BACKEND=auto` warns once.
const TINY_PLAN_INSTRS: usize = 16;

/// Resolves an (injected) `MBU_AUTO_DENSE_QUBITS` value: the widest
/// register the planner may materialise densely. Unset keeps
/// [`mbu_circuit::DEFAULT_AUTO_DENSE_QUBITS`]; numbers pin (clamped to
/// [`MAX_STATEVECTOR_QUBITS`]); `0`/`off` forbids promotion entirely;
/// garbage warns once and keeps the default.
fn resolve_auto_dense_qubits(raw: Option<&str>) -> usize {
    mbu_circuit::knobs::window(
        "MBU_AUTO_DENSE_QUBITS",
        raw,
        mbu_circuit::DEFAULT_AUTO_DENSE_QUBITS,
        MAX_STATEVECTOR_QUBITS,
    )
}

/// Resolves an (injected) `MBU_AUTO_SPARSITY` value: the occupied-entry
/// threshold separating "sparse is cheaper" from "dense is cheaper".
/// Unset keeps [`mbu_circuit::DEFAULT_AUTO_SPARSITY`]; numbers pin;
/// `0`/`off` makes every superposing segment promote; garbage warns once
/// and keeps the default.
fn resolve_auto_sparsity(raw: Option<&str>) -> u64 {
    let default = usize::try_from(mbu_circuit::DEFAULT_AUTO_SPARSITY).unwrap_or(usize::MAX);
    mbu_circuit::knobs::window("MBU_AUTO_SPARSITY", raw, default, usize::MAX) as u64
}

/// The process-wide `MBU_AUTO_DENSE_QUBITS` pin, read once (construction
/// sits in per-shot hot loops, like every other `MBU_*` knob).
fn auto_dense_qubits_env() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        resolve_auto_dense_qubits(std::env::var("MBU_AUTO_DENSE_QUBITS").ok().as_deref())
    })
}

/// The process-wide `MBU_AUTO_SPARSITY` pin, read once.
fn auto_sparsity_env() -> u64 {
    static DEFAULT: OnceLock<u64> = OnceLock::new();
    *DEFAULT
        .get_or_init(|| resolve_auto_sparsity(std::env::var("MBU_AUTO_SPARSITY").ok().as_deref()))
}

/// Resolves an (injected) `MBU_AUTO_PHASE` value: whether the runtime
/// planner may hop to the phase-accumulator representation at all.
/// Default **off** — inside `auto` the phase arm runs in tandem with the
/// authoritative sparse map (pure correctness plumbing, no speedup), so it
/// is opt-in; `MBU_BACKEND=phase` is the representation's native mode.
fn resolve_auto_phase(raw: Option<&str>) -> bool {
    mbu_circuit::knobs::switch("MBU_AUTO_PHASE", raw, false)
}

/// Resolves an (injected) `MBU_AUTO_PHASE_DIAG` value: the minimum
/// diagonal-gate count for a segment to be worth a phase hop. Unset keeps
/// [`mbu_circuit::DEFAULT_AUTO_PHASE_DIAG`]; numbers pin; `0`/`off` makes
/// every outgrowing segment eligible; garbage warns once and keeps the
/// default.
fn resolve_auto_phase_diag(raw: Option<&str>) -> u32 {
    let default = usize::try_from(mbu_circuit::DEFAULT_AUTO_PHASE_DIAG).unwrap_or(usize::MAX);
    u32::try_from(mbu_circuit::knobs::window(
        "MBU_AUTO_PHASE_DIAG",
        raw,
        default,
        u32::MAX as usize,
    ))
    .unwrap_or(u32::MAX)
}

/// The process-wide `MBU_AUTO_PHASE` switch, read once.
fn auto_phase_env() -> bool {
    static DEFAULT: OnceLock<bool> = OnceLock::new();
    *DEFAULT.get_or_init(|| resolve_auto_phase(std::env::var("MBU_AUTO_PHASE").ok().as_deref()))
}

/// The process-wide `MBU_AUTO_PHASE_DIAG` pin, read once.
fn auto_phase_diag_env() -> u32 {
    static DEFAULT: OnceLock<u32> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        resolve_auto_phase_diag(std::env::var("MBU_AUTO_PHASE_DIAG").ok().as_deref())
    })
}

/// The `H` and diagonal gate counts of `instrs[start..end]`, counting
/// fused-block constituents — the per-segment facts the runtime planner
/// keys on (`H` count is the occupancy-growth exponent; the diagonal
/// count decides whether a phase hop can pay). `O(segment length)`,
/// stateless, so re-planning per run costs a fraction of executing the
/// segment itself.
fn segment_mix(compiled: &CompiledCircuit, start: usize, end: usize) -> (u32, u32) {
    let mut h = 0u32;
    let mut diag = 0u32;
    let mut tally = |g: &Gate| {
        h += u32::from(matches!(g, Gate::H(_)));
        diag += u32::from(g.is_diagonal());
    };
    for instr in &compiled.instrs()[start..end] {
        match instr {
            Instr::Gate(g) => tally(g),
            Instr::Fused(idx) => {
                for g in compiled.fused_unitaries()[*idx as usize].gates() {
                    tally(g);
                }
            }
            _ => {}
        }
    }
    (h, diag)
}

/// Wraps a draw callback with the sparse map's policy: exact-definite
/// probabilities resolve without consuming the draw (the sparse backend's
/// `p1 == 0.0` / `p1 == 1.0` criterion verbatim — dense and sparse Born
/// sums are bitwise identical, so definiteness agrees across
/// representations), anything in between forwards to the real draw.
fn sparse_policy<'a>(draw: &'a mut dyn FnMut(f64) -> bool) -> impl FnMut(f64) -> bool + 'a {
    |p: f64| {
        if p == 0.0 {
            false
        } else if p == 1.0 {
            true
        } else {
            draw(p)
        }
    }
}

/// The live representations a [`HybridState`] hops between.
#[derive(Clone, Debug)]
enum Repr {
    /// Flat `2^n` amplitude array.
    Dense(StateVector),
    /// Sorted basis-key → amplitude map.
    Sparse(SparseVector),
    /// The phase-accumulator tandem: `sv` is the authoritative sparse map
    /// (per-gate identical to a forced sparse run; all measurements and
    /// draws happen here), `ps` mirrors the same stream on the
    /// phase-accumulator representation and is resynchronised from `sv`
    /// after every non-unitary operation.
    Phase {
        /// The authoritative sparse state.
        sv: SparseVector,
        /// The phase-accumulator mirror.
        ps: Box<PhaseAccumulator>,
    },
}

/// A state that executes each compiled segment in whichever representation
/// the planner predicts is cheapest, converting losslessly at segment
/// boundaries. See the module docs for the planning rule and the
/// bit-identity contract; `MBU_BACKEND=auto` selects it process-wide.
///
/// # Examples
///
/// ```
/// use mbu_circuit::{CircuitBuilder, CompiledCircuit};
/// use mbu_sim::{HybridState, Simulator};
/// use rand::SeedableRng;
///
/// // An H-fanout makes the occupied set explode: the planner promotes to
/// // the dense array before it (with a threshold this small).
/// let mut b = CircuitBuilder::new();
/// let q = b.qreg("q", 8);
/// for i in 0..8 {
///     b.h(q[i]);
/// }
/// let compiled = CompiledCircuit::compile(&b.finish()).unwrap();
/// let mut sim = HybridState::zeros(8).unwrap().with_thresholds(24, 4);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// sim.run_compiled(&compiled, &mut rng).unwrap();
/// assert_eq!(sim.last_run_switches(), Some(1), "one sparse→dense switch");
/// ```
#[derive(Clone, Debug)]
pub struct HybridState {
    repr: Repr,
    /// Widest register the planner may materialise densely.
    dense_cap: usize,
    /// Predicted-occupancy threshold above which dense wins.
    sparsity: u64,
    /// Whether the planner may hop to the phase-accumulator
    /// representation (`MBU_AUTO_PHASE`, default off).
    phase_on: bool,
    /// Minimum diagonal-gate count for a segment to be worth a phase hop
    /// (`MBU_AUTO_PHASE_DIAG`).
    phase_diag: u32,
    /// Representation switches since the last compiled-run start (forked
    /// children inherit the counter of the branch they split from).
    switches: u64,
    /// Switch count of the most recent compiled run, once one ran.
    last_run_switches: Option<u64>,
    /// Occupancy high-water mark since the last compiled-run start, in
    /// the backends' shared unit (occupied/materialised entries). A
    /// promotion folds the full `2^n` in — the array really is allocated.
    peak: u64,
    /// The high-water mark of the most recent compiled run.
    last_run_peak: Option<u64>,
    /// Requested amplitude worker lanes, forwarded to the dense
    /// representation (the sparse map is always serial).
    amp_threads: usize,
}

impl HybridState {
    /// Creates `|0…0⟩` over `num_qubits` qubits, starting in the sparse
    /// representation (one occupied entry) with the process-default
    /// planning thresholds (`MBU_AUTO_DENSE_QUBITS`, `MBU_AUTO_SPARSITY`).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::TooManyQubits`] above
    /// [`MAX_SPARSEVECTOR_QUBITS`](crate::MAX_SPARSEVECTOR_QUBITS).
    pub fn zeros(num_qubits: usize) -> Result<Self, SimError> {
        Ok(Self {
            repr: Repr::Sparse(SparseVector::zeros(num_qubits)?),
            dense_cap: auto_dense_qubits_env(),
            sparsity: auto_sparsity_env(),
            phase_on: auto_phase_env(),
            phase_diag: auto_phase_diag_env(),
            switches: 0,
            last_run_switches: None,
            peak: 1,
            last_run_peak: None,
            amp_threads: crate::statevector::amp_threads_env().unwrap_or(1),
        })
    }

    /// Overrides the planning thresholds (builder style): the planner may
    /// go dense up to `dense_cap` qubits (clamped to
    /// [`MAX_STATEVECTOR_QUBITS`]), and prefers sparse while the predicted
    /// occupancy stays at or under `sparsity` entries.
    #[must_use]
    pub fn with_thresholds(mut self, dense_cap: usize, sparsity: u64) -> Self {
        self.dense_cap = dense_cap.min(MAX_STATEVECTOR_QUBITS);
        self.sparsity = sparsity;
        self
    }

    /// Overrides the phase-hop policy (builder style): whether the
    /// planner may hop to the phase-accumulator representation, and the
    /// minimum diagonal-gate count a segment needs for the hop to pay.
    /// The constructor reads both from the `MBU_AUTO_PHASE` /
    /// `MBU_AUTO_PHASE_DIAG` knobs.
    #[must_use]
    pub fn with_phase(mut self, enabled: bool, diag_min: u32) -> Self {
        self.phase_on = enabled;
        self.phase_diag = diag_min;
        self
    }

    /// The representation currently holding the state.
    #[must_use]
    pub fn representation(&self) -> PlannedRepr {
        match self.repr {
            Repr::Dense(_) => PlannedRepr::Dense,
            Repr::Sparse(_) => PlannedRepr::Sparse,
            Repr::Phase { .. } => PlannedRepr::Phase,
        }
    }

    /// Representation switches since the last compiled-run start.
    #[must_use]
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Switch count of the most recent compiled run, or `None` before the
    /// first one.
    #[must_use]
    pub fn last_run_switches(&self) -> Option<u64> {
        self.last_run_switches
    }

    /// Occupancy high-water mark of the most recent compiled run (same
    /// unit as [`Simulator::peak_amplitudes`]), or `None` before one.
    #[must_use]
    pub fn last_run_peak_occupancy(&self) -> Option<u64> {
        self.last_run_peak
    }

    /// The active representation's current occupancy high-water figure:
    /// the map's occupied-entry peak, or the array's materialised length.
    fn inner_peak(&self) -> u64 {
        match &self.repr {
            Repr::Dense(sv) => Simulator::occupancy_peak(sv).unwrap_or(0),
            Repr::Sparse(sp) => sp.peak_entries(),
            Repr::Phase { sv, .. } => sv.peak_entries(),
        }
    }

    /// Folds the active representation's occupancy into the run peak.
    fn fold_peak(&mut self) {
        let inner = self.inner_peak();
        if inner > self.peak {
            self.peak = inner;
        }
    }

    /// Converts to the dense array (a planner *promotion*). No-op when
    /// already dense.
    fn promote(&mut self) -> Result<(), SimError> {
        if let Repr::Sparse(sp) = &self.repr {
            self.peak = self.peak.max(sp.peak_entries());
            let mut dense = convert::sparse_to_dense(sp)?;
            Simulator::set_amp_threads(&mut dense, self.amp_threads);
            self.repr = Repr::Dense(dense);
            self.switches += 1;
            self.fold_peak();
        }
        Ok(())
    }

    /// Converts to the sparse map (a planner *demotion*). No-op when
    /// already sparse.
    fn demote(&mut self) {
        if let Repr::Dense(sv) = &self.repr {
            let sparse = convert::dense_to_sparse(sv);
            self.fold_peak();
            self.repr = Repr::Sparse(sparse);
            self.switches += 1;
        }
    }

    /// Hops from the sparse map into the phase tandem: the map stays (and
    /// stays authoritative), the phase-accumulator mirror is lifted from
    /// it losslessly. No-op unless currently sparse.
    fn hop_to_phase(&mut self) {
        let (sv, ps) = match &self.repr {
            Repr::Sparse(sp) => (sp.clone(), Box::new(convert::sparse_to_phase(sp))),
            _ => return,
        };
        self.fold_peak();
        self.repr = Repr::Phase { sv, ps };
        self.switches += 1;
    }

    /// Leaves the phase tandem for the plain sparse map: the authoritative
    /// map is taken bitwise, the mirror is dropped. No-op unless currently
    /// in the tandem.
    fn hop_from_phase(&mut self) {
        let sv = match &self.repr {
            Repr::Phase { sv, .. } => sv.clone(),
            _ => return,
        };
        self.fold_peak();
        self.repr = Repr::Sparse(sv);
        self.switches += 1;
    }

    /// Rebuilds the phase mirror from the authoritative map — after a
    /// non-unitary operation (whose collapse happened on the map), or when
    /// the mirror's branch budget overflowed mid-gate. No-op outside the
    /// tandem.
    fn resync_mirror(&mut self) {
        if let Repr::Phase { sv, ps } = &mut self.repr {
            **ps = convert::sparse_to_phase(sv);
        }
    }

    /// Re-plans the representation for a segment with `h_count` Hadamards
    /// and `diag_count` diagonal gates — the runtime mirror of the static
    /// three-way cost model
    /// ([`mbu_circuit::plan_segment`](mbu_circuit::plan_segment)), seeded
    /// with live occupancy instead of the compile-time prediction:
    ///
    /// * sparse, and the current occupancy could exceed the sparsity
    ///   threshold after `2^h_count` fan-out:
    ///   * the register fits the dense cap → promote;
    ///   * otherwise, the phase arm is on and the segment is
    ///     diagonal-heavy (`diag_count ≥ phase_diag`) → hop to the phase
    ///     tandem;
    /// * in the phase tandem, and the segment no longer qualifies → hop
    ///   back to the plain map (then the promote rule gets its look);
    /// * dense, and the nonzero support is provably small enough that even
    ///   after the fan-out it stays under the threshold → demote.
    ///
    /// The demotion probe ([`StateVector::nonzero_count_capped`]) bails
    /// out at the first `bound + 1` occupied entries, so keeping a dense
    /// state dense costs far less than a full sweep per segment.
    fn replan(&mut self, h_count: u32, diag_count: u32) -> Result<(), SimError> {
        // `occ · 2^h > s  ⇔  occ > s >> h` for integers (and any shift of
        // 64+ overflows every occ ≥ 1), computed without overflow.
        let bound = if h_count >= 64 {
            0
        } else {
            self.sparsity >> h_count
        };
        if let Repr::Phase { sv, .. } = &self.repr {
            let outgrows = sv.occupied() as u64 > bound;
            if !(self.phase_on && outgrows && diag_count >= self.phase_diag) {
                self.hop_from_phase();
            }
        }
        match &self.repr {
            Repr::Sparse(sp) => {
                let outgrows = sp.occupied() as u64 > bound;
                if outgrows && Simulator::num_qubits(sp) <= self.dense_cap {
                    self.promote()?;
                } else if outgrows && self.phase_on && diag_count >= self.phase_diag {
                    self.hop_to_phase();
                }
            }
            Repr::Dense(sv) => {
                if bound > 0 && sv.nonzero_count_capped(bound).is_some() {
                    self.demote();
                }
            }
            Repr::Phase { .. } => {}
        }
        Ok(())
    }

    /// Runs an adaptive circuit, sampling measurements from `rng`.
    ///
    /// Convenience wrapper over the [`Simulator`] trait method for callers
    /// holding a concrete state and a concrete generator.
    ///
    /// # Errors
    ///
    /// As [`Simulator::run`].
    pub fn run<R: RngCore>(
        &mut self,
        circuit: &mbu_circuit::Circuit,
        rng: &mut R,
    ) -> Result<Executed, SimError> {
        Simulator::run(self, circuit, rng)
    }

    /// All amplitudes, indexed by basis state — readable only under the
    /// dense width cap (it materialises `2^n` entries).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::TooManyQubits`] past
    /// [`MAX_STATEVECTOR_QUBITS`].
    pub fn amplitudes(&self) -> Result<Vec<crate::Complex>, SimError> {
        match &self.repr {
            Repr::Dense(sv) => Ok(sv.amplitudes()),
            Repr::Sparse(sp) => Ok(convert::sparse_to_dense(sp)?.amplitudes()),
            Repr::Phase { sv, .. } => Ok(convert::sparse_to_dense(sv)?.amplitudes()),
        }
    }
}

impl Simulator for HybridState {
    fn num_qubits(&self) -> usize {
        match &self.repr {
            Repr::Dense(sv) => sv.num_qubits(),
            Repr::Sparse(sp) => Simulator::num_qubits(sp),
            Repr::Phase { sv, .. } => Simulator::num_qubits(sv),
        }
    }

    fn apply_gate(&mut self, gate: &Gate) -> Result<(), SimError> {
        match &mut self.repr {
            Repr::Dense(sv) => Simulator::apply_gate(sv, gate),
            Repr::Sparse(sp) => Simulator::apply_gate(sp, gate),
            Repr::Phase { sv, ps } => {
                Simulator::apply_gate(sv, gate)?;
                // The map is authoritative; a mirror failure (branch
                // budget on a pathological materialisation) costs a
                // resync, never correctness.
                if Simulator::apply_gate(ps.as_mut(), gate).is_err() {
                    **ps = convert::sparse_to_phase(sv);
                }
                Ok(())
            }
        }
    }

    fn apply_fused(&mut self, block: &mbu_circuit::FusedUnitary) -> Result<(), SimError> {
        match &mut self.repr {
            Repr::Dense(sv) => Simulator::apply_fused(sv, block),
            Repr::Sparse(sp) => Simulator::apply_fused(sp, block),
            Repr::Phase { sv, ps } => {
                Simulator::apply_fused(sv, block)?;
                if Simulator::apply_fused(ps.as_mut(), block).is_err() {
                    **ps = convert::sparse_to_phase(sv);
                }
                Ok(())
            }
        }
    }

    /// Measurement with the sparse map's draw policy whichever
    /// representation is live: the dense engine hands every Born
    /// probability to the draw unconditionally, so the dense arm wraps the
    /// draw to shortcut exact-definite outcomes without consuming
    /// randomness — keeping the auto backend's RNG stream bit-identical
    /// to the forced sparse backend's across representation switches.
    fn measure(
        &mut self,
        qubit: QubitId,
        basis: Basis,
        draw: &mut dyn FnMut(f64) -> bool,
    ) -> Result<bool, SimError> {
        let outcome = match &mut self.repr {
            Repr::Dense(sv) => {
                return Simulator::measure(sv, qubit, basis, &mut sparse_policy(draw))
            }
            Repr::Sparse(sp) => return Simulator::measure(sp, qubit, basis, draw),
            // The tandem measures on the authoritative map (native sparse
            // draw policy), then rebuilds the mirror from the collapsed
            // state.
            Repr::Phase { sv, .. } => Simulator::measure(sv, qubit, basis, draw)?,
        };
        self.resync_mirror();
        Ok(outcome)
    }

    /// Reset under the same representation-independent draw policy as
    /// [`measure`](Self::measure).
    fn reset(&mut self, qubit: QubitId, draw: &mut dyn FnMut(f64) -> bool) -> Result<(), SimError> {
        match &mut self.repr {
            Repr::Dense(sv) => return Simulator::reset(sv, qubit, &mut sparse_policy(draw)),
            Repr::Sparse(sp) => return Simulator::reset(sp, qubit, draw),
            Repr::Phase { sv, .. } => Simulator::reset(sv, qubit, draw)?,
        }
        self.resync_mirror();
        Ok(())
    }

    fn set_bit(&mut self, q: QubitId, value: bool) -> Result<(), SimError> {
        match &mut self.repr {
            Repr::Dense(sv) => return Simulator::set_bit(sv, q, value),
            Repr::Sparse(sp) => return Simulator::set_bit(sp, q, value),
            Repr::Phase { sv, .. } => Simulator::set_bit(sv, q, value)?,
        }
        self.resync_mirror();
        Ok(())
    }

    fn set_value(&mut self, qubits: &[QubitId], value: u128) -> Result<(), SimError> {
        match &mut self.repr {
            Repr::Dense(sv) => return Simulator::set_value(sv, qubits, value),
            Repr::Sparse(sp) => return Simulator::set_value(sp, qubits, value),
            Repr::Phase { sv, .. } => Simulator::set_value(sv, qubits, value)?,
        }
        self.resync_mirror();
        Ok(())
    }

    fn bit(&self, q: QubitId) -> Result<bool, SimError> {
        match &self.repr {
            Repr::Dense(sv) => Simulator::bit(sv, q),
            Repr::Sparse(sp) => Simulator::bit(sp, q),
            Repr::Phase { sv, .. } => Simulator::bit(sv, q),
        }
    }

    fn value(&self, qubits: &[QubitId]) -> Result<u128, SimError> {
        match &self.repr {
            Repr::Dense(sv) => Simulator::value(sv, qubits),
            Repr::Sparse(sp) => Simulator::value(sp, qubits),
            Repr::Phase { sv, .. } => Simulator::value(sv, qubits),
        }
    }

    fn global_phase(&self) -> Option<Angle> {
        match &self.repr {
            Repr::Dense(sv) => Simulator::global_phase(sv),
            Repr::Sparse(sp) => Simulator::global_phase(sp),
            Repr::Phase { sv, .. } => Simulator::global_phase(sv),
        }
    }

    /// Both-branch measurement for the branch-tree engine: each branch is
    /// re-wrapped as a [`HybridState`] sharing this one's thresholds, so a
    /// forked child keeps making its own per-segment representation
    /// choices down its branch (and inherits the switch/peak counters of
    /// the trajectory it split from). Definite outcomes report
    /// [`Fork::Definite`] whichever representation is live — the dense
    /// engine's always-`Split` forks are folded back to `Definite` at
    /// `p₁` exactly `0`/`1`, matching [`measure`](Self::measure)'s
    /// no-draw policy so tree replay consumes the same stream a per-shot
    /// auto run does.
    fn measure_fork(&mut self, qubit: QubitId, basis: Basis) -> Result<Option<Fork>, SimError> {
        let (dense_cap, sparsity) = (self.dense_cap, self.sparsity);
        let (phase_on, phase_diag) = (self.phase_on, self.phase_diag);
        let (switches, peak, amp_threads) = (self.switches, self.peak, self.amp_threads);
        let wrap = move |repr: Repr| HybridState {
            repr,
            dense_cap,
            sparsity,
            phase_on,
            phase_diag,
            switches,
            last_run_switches: None,
            peak,
            last_run_peak: None,
            amp_threads,
        };
        match &mut self.repr {
            Repr::Dense(sv) => match sv.fork_concrete(qubit, basis)? {
                ConcreteFork::Definite(b) => Ok(Some(Fork::Definite(b))),
                ConcreteFork::Split { p_one, one } => {
                    if p_one == 0.0 {
                        // The receiver already collapsed to the only
                        // possible branch; drop the massless child,
                        // consume no draw.
                        drop(one);
                        return Ok(Some(Fork::Definite(false)));
                    }
                    if p_one == 1.0 {
                        let one = one.expect("a sure outcome-1 branch carries the state");
                        self.repr = Repr::Dense(one);
                        return Ok(Some(Fork::Definite(true)));
                    }
                    Ok(Some(Fork::Split {
                        p_one,
                        one: one
                            .map(|s| Box::new(wrap(Repr::Dense(s))) as Box<dyn Simulator + Send>),
                    }))
                }
            },
            Repr::Sparse(sp) => match sp.fork_concrete(qubit, basis)? {
                ConcreteFork::Definite(b) => Ok(Some(Fork::Definite(b))),
                ConcreteFork::Split { p_one, one } => Ok(Some(Fork::Split {
                    p_one,
                    one: one.map(|s| Box::new(wrap(Repr::Sparse(s))) as Box<dyn Simulator + Send>),
                })),
            },
            // The tandem forks its authoritative map; both the receiver
            // (collapsed in place by `fork_concrete`) and the spun-off
            // child rebuild their mirrors from their own collapsed state.
            Repr::Phase { sv, ps } => {
                let fork = match sv.fork_concrete(qubit, basis)? {
                    ConcreteFork::Definite(b) => Some(Fork::Definite(b)),
                    ConcreteFork::Split { p_one, one } => Some(Fork::Split {
                        p_one,
                        one: one.map(|child| {
                            let mirror = Box::new(convert::sparse_to_phase(&child));
                            Box::new(wrap(Repr::Phase {
                                sv: child,
                                ps: mirror,
                            })) as Box<dyn Simulator + Send>
                        }),
                    }),
                };
                **ps = convert::sparse_to_phase(sv);
                Ok(fork)
            }
        }
    }

    fn peak_amplitudes(&self) -> Option<u64> {
        self.last_run_peak
    }

    fn occupancy_peak(&self) -> Option<u64> {
        Some(self.peak.max(self.inner_peak()))
    }

    fn set_amp_threads(&mut self, threads: usize) {
        self.amp_threads = threads.max(1);
        if let Repr::Dense(sv) = &mut self.repr {
            Simulator::set_amp_threads(sv, self.amp_threads);
        }
        // Sparse and phase representations are serial; the budget is
        // remembered for the next promotion either way.
    }

    /// The gate-at-a-time planning seam: the branch-tree engine announces
    /// each deterministic unitary run before walking it, and the hybrid
    /// re-plans exactly as its compiled loop would at that segment start.
    fn plan_segment(
        &mut self,
        compiled: &CompiledCircuit,
        start: usize,
        end: usize,
    ) -> Result<(), SimError> {
        let (h, diag) = segment_mix(compiled, start, end);
        self.replan(h, diag)
    }

    /// Compiled execution with per-segment re-planning: a segment-start
    /// table (pc → `H` count) is probed by the executor's `at_pc` hook,
    /// and a hit re-plans the representation before the segment's first
    /// instruction dispatches. Gates then stream through whichever
    /// representation is live — bit-identical amplitudes either way, so
    /// switching mid-run is observationally invisible except in memory
    /// traffic and the [`switches`](Self::switches) counter.
    fn run_compiled(
        &mut self,
        compiled: &CompiledCircuit,
        rng: &mut dyn RngCore,
    ) -> Result<Executed, SimError> {
        exec::check_width(compiled.num_qubits(), self.num_qubits())?;
        if !crate::statevector::simd_default() {
            mbu_circuit::knobs::warn_once(
                "MBU_BACKEND=auto+MBU_SIMD=0",
                "MBU_BACKEND=auto with MBU_SIMD=0: dense segments will run the scalar \
                 reference kernels, which forfeits most of what promotion buys",
            );
        }
        if compiled.instrs().len() < TINY_PLAN_INSTRS {
            mbu_circuit::knobs::warn_once(
                "MBU_BACKEND=auto+tiny-circuit",
                "MBU_BACKEND=auto on a tiny compiled program: per-segment planning is \
                 pure overhead here; a fixed backend (dense/sparse/tracker) will be faster",
            );
        }
        self.switches = 0;
        match &mut self.repr {
            Repr::Sparse(sp) => sp.reset_peak(),
            Repr::Phase { sv, .. } => sv.reset_peak(),
            Repr::Dense(_) => {}
        }
        self.peak = self.inner_peak();
        // pc → the segment's (H, diagonal) counts, present only at
        // segment starts. Every program point the executor can land on
        // after a branch is a segment start (`CompiledCircuit::segments`
        // cuts at join targets), so probing at each pc re-plans exactly
        // once per segment entry.
        let mut plan_at: Vec<Option<(u32, u32)>> = vec![None; compiled.instrs().len()];
        for seg in compiled.segments() {
            plan_at[seg.start] = Some(segment_mix(compiled, seg.start, seg.end));
        }
        let mut executed = Executed::default();
        exec::execute_compiled_core(
            self,
            compiled,
            rng,
            &mut executed,
            Simulator::apply_gate,
            Simulator::apply_fused,
            |_, q| Ok(q),
            |_, _| {},
            |s, pc| match plan_at[pc] {
                Some((h, diag)) => s.replan(h, diag),
                None => Ok(()),
            },
        )?;
        self.fold_peak();
        self.last_run_switches = Some(self.switches);
        self.last_run_peak = Some(self.peak);
        Ok(executed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbu_circuit::{Basis, CircuitBuilder};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn q(i: u32) -> QubitId {
        QubitId(i)
    }

    /// H fan-out over `wide` qubits, measure them all back down, then a
    /// permutation tail — the promote-then-demote shape.
    fn fanout_collapse_circuit(n: usize, wide: usize) -> mbu_circuit::Circuit {
        let mut b = CircuitBuilder::new();
        let r = b.qreg("q", n);
        for i in 0..wide {
            b.h(r[i]);
        }
        for i in 0..wide {
            let _ = b.measure(r[i], Basis::Z);
        }
        for i in 0..n - 1 {
            b.cx(r[i], r[i + 1]);
        }
        b.finish()
    }

    #[test]
    fn planner_promotes_and_demotes_across_a_run() {
        let circuit = fanout_collapse_circuit(10, 10);
        let compiled = mbu_circuit::CompiledCircuit::compile(&circuit).unwrap();
        let mut sim = HybridState::zeros(10).unwrap().with_thresholds(24, 8);
        let mut rng = StdRng::seed_from_u64(3);
        sim.run_compiled(&compiled, &mut rng).unwrap();
        let switches = sim.last_run_switches().unwrap();
        assert!(switches >= 2, "promote + demote, got {switches}");
        assert_eq!(
            sim.representation(),
            PlannedRepr::Sparse,
            "collapsed back to one basis state → demoted for the permutation tail"
        );
        assert_eq!(
            sim.last_run_peak_occupancy(),
            Some(1u64 << 10),
            "the dense phase materialised the full array"
        );
    }

    #[test]
    fn wide_registers_never_promote() {
        // 60 qubits is past the default dense cap: the planner must stay
        // sparse no matter how many Hs a segment holds.
        let circuit = fanout_collapse_circuit(60, 12);
        let compiled = mbu_circuit::CompiledCircuit::compile(&circuit).unwrap();
        let mut sim = HybridState::zeros(60).unwrap().with_thresholds(24, 4);
        let mut rng = StdRng::seed_from_u64(5);
        sim.run_compiled(&compiled, &mut rng).unwrap();
        assert_eq!(sim.last_run_switches(), Some(0));
        assert_eq!(sim.representation(), PlannedRepr::Sparse);
    }

    #[test]
    fn auto_matches_forced_sparse_bit_for_bit() {
        // An MBU AND compute/uncompute: every measurement follows an H, so
        // RNG streams coincide across representations, and amplitudes are
        // bit-identical by the conversion + kernel contracts.
        let mut b = CircuitBuilder::new();
        let r = b.qreg("q", 3);
        b.x(r[0]);
        b.x(r[1]);
        b.ccx(r[0], r[1], r[2]);
        b.h(r[2]);
        let m = b.measure(r[2], Basis::Z);
        let (_, fix) = b.record(|b| {
            b.cz(r[0], r[1]);
            b.x(r[2]);
        });
        b.emit_conditional(m, &fix);
        let circuit = b.finish();
        let compiled = mbu_circuit::CompiledCircuit::compile(&circuit).unwrap();
        for seed in 0..16 {
            let mut auto = HybridState::zeros(3).unwrap().with_thresholds(24, 2);
            let mut sparse = SparseVector::zeros(3).unwrap();
            let mut rng_a = StdRng::seed_from_u64(seed);
            let mut rng_s = StdRng::seed_from_u64(seed);
            let ex_a = Simulator::run_compiled(&mut auto, &compiled, &mut rng_a).unwrap();
            let ex_s = Simulator::run_compiled(&mut sparse, &compiled, &mut rng_s).unwrap();
            assert_eq!(ex_a, ex_s, "seed {seed}");
            assert_eq!(rng_a.next_u64(), rng_s.next_u64(), "seed {seed}: RNG pos");
            let a = auto.amplitudes().unwrap();
            let s = convert::sparse_to_dense(&sparse).unwrap().amplitudes();
            for (i, (x, y)) in a.iter().zip(&s).enumerate() {
                assert_eq!(x.re.to_bits(), y.re.to_bits(), "seed {seed} re amp {i}");
                assert_eq!(x.im.to_bits(), y.im.to_bits(), "seed {seed} im amp {i}");
            }
        }
    }

    #[test]
    fn forked_children_keep_planning() {
        let mut sim = HybridState::zeros(4).unwrap().with_thresholds(24, 2);
        Simulator::apply_gate(&mut sim, &Gate::H(q(0))).unwrap();
        let Some(Fork::Split {
            one: Some(mut one), ..
        }) = Simulator::measure_fork(&mut sim, q(0), Basis::Z).unwrap()
        else {
            panic!("a fair coin splits");
        };
        // The child is a HybridState: it still answers occupancy and can
        // keep executing gates.
        one.apply_gate(&Gate::H(q(1))).unwrap();
        assert!(one.occupancy_peak().is_some());
    }

    #[test]
    fn threshold_knob_resolution_policy() {
        assert_eq!(
            resolve_auto_dense_qubits(None),
            mbu_circuit::DEFAULT_AUTO_DENSE_QUBITS
        );
        assert_eq!(resolve_auto_dense_qubits(Some("20")), 20);
        assert_eq!(
            resolve_auto_dense_qubits(Some("99")),
            MAX_STATEVECTOR_QUBITS,
            "clamped to the dense construction cap"
        );
        assert_eq!(resolve_auto_dense_qubits(Some("off")), 0, "never promote");
        assert_eq!(
            resolve_auto_sparsity(None),
            mbu_circuit::DEFAULT_AUTO_SPARSITY
        );
        assert_eq!(resolve_auto_sparsity(Some("128")), 128);
        assert_eq!(resolve_auto_sparsity(Some("0")), 0);
    }

    #[test]
    fn planner_hops_to_phase_and_back() {
        // 30 qubits is past a cap of 4, and a sparsity of 0 makes every
        // occupied state outgrow — so the three-way rule is decided purely
        // by the segment's diagonal count.
        let mut sim = HybridState::zeros(30)
            .unwrap()
            .with_thresholds(4, 0)
            .with_phase(true, 4);
        assert_eq!(sim.representation(), PlannedRepr::Sparse);
        sim.replan(0, 3).unwrap();
        assert_eq!(
            sim.representation(),
            PlannedRepr::Sparse,
            "below the diagonal floor: no hop"
        );
        sim.replan(0, 4).unwrap();
        assert_eq!(sim.representation(), PlannedRepr::Phase);
        sim.replan(0, 7).unwrap();
        assert_eq!(
            sim.representation(),
            PlannedRepr::Phase,
            "still diagonal-heavy: the tandem persists"
        );
        sim.replan(0, 0).unwrap();
        assert_eq!(sim.representation(), PlannedRepr::Sparse);
        assert_eq!(sim.switches, 2, "one hop in, one hop out");

        // With the arm forced off (the builder overrides any
        // `MBU_AUTO_PHASE` in the environment), the same segment stays
        // sparse no matter how diagonal-heavy it is.
        let mut sim = HybridState::zeros(30)
            .unwrap()
            .with_thresholds(4, 0)
            .with_phase(false, 4);
        sim.replan(0, 64).unwrap();
        assert_eq!(sim.representation(), PlannedRepr::Sparse);
    }

    #[test]
    fn phase_hops_stay_bit_identical_to_forced_sparse() {
        // A diagonal-heavy fan-out (a QFT-adder-interior shape) on a
        // register past the dense cap: the first segment hops into the
        // phase tandem, the post-measurement tail hops back out. Every
        // gate, draw and amplitude must still match the forced sparse
        // backend bit for bit — the tandem's authoritative-map contract.
        let mut b = CircuitBuilder::new();
        let r = b.qreg("q", 12);
        b.x(r[0]);
        for i in 0..3 {
            b.h(r[i]);
        }
        for i in 0..11 {
            b.cphase(
                r[i],
                r[i + 1],
                Angle::turn_over_power_of_two(2 + (i as u32 % 3)),
            );
        }
        for i in 0..3 {
            b.phase(r[i], Angle::turn_over_power_of_two(1));
        }
        let m = b.measure(r[1], Basis::Z);
        let (_, fix) = b.record(|b| {
            b.z(r[0]);
            b.x(r[1]);
        });
        b.emit_conditional(m, &fix);
        for i in 0..3 {
            b.h(r[i]);
        }
        for i in 0..3 {
            let _ = b.measure(r[i], Basis::Z);
        }
        let circuit = b.finish();
        let compiled = mbu_circuit::CompiledCircuit::compile(&circuit).unwrap();
        for seed in 0..16 {
            let mut auto = HybridState::zeros(12)
                .unwrap()
                .with_thresholds(4, 2)
                .with_phase(true, 1);
            let mut sparse = SparseVector::zeros(12).unwrap();
            let mut rng_a = StdRng::seed_from_u64(seed);
            let mut rng_s = StdRng::seed_from_u64(seed);
            let ex_a = Simulator::run_compiled(&mut auto, &compiled, &mut rng_a).unwrap();
            let ex_s = Simulator::run_compiled(&mut sparse, &compiled, &mut rng_s).unwrap();
            assert_eq!(ex_a, ex_s, "seed {seed}");
            assert_eq!(rng_a.next_u64(), rng_s.next_u64(), "seed {seed}: RNG pos");
            assert!(
                auto.last_run_switches().unwrap() >= 2,
                "seed {seed}: the run must actually hop through the tandem"
            );
            let a = auto.amplitudes().unwrap();
            let s = convert::sparse_to_dense(&sparse).unwrap().amplitudes();
            for (i, (x, y)) in a.iter().zip(&s).enumerate() {
                assert_eq!(x.re.to_bits(), y.re.to_bits(), "seed {seed} re amp {i}");
                assert_eq!(x.im.to_bits(), y.im.to_bits(), "seed {seed} im amp {i}");
            }
        }
    }

    #[test]
    fn phase_knob_resolution_policy() {
        assert!(!resolve_auto_phase(None), "tandem arm is opt-in");
        assert!(resolve_auto_phase(Some("1")));
        assert!(!resolve_auto_phase(Some("0")));
        assert_eq!(
            resolve_auto_phase_diag(None),
            mbu_circuit::DEFAULT_AUTO_PHASE_DIAG
        );
        assert_eq!(resolve_auto_phase_diag(Some("3")), 3);
        assert_eq!(
            resolve_auto_phase_diag(Some("0")),
            0,
            "every outgrowing segment eligible"
        );
    }

    #[test]
    fn definite_measurements_never_draw_in_either_representation() {
        // The draw policy is the sparse map's whichever representation is
        // live: definite outcomes consume no randomness even while dense
        // (where the raw engine would burn a draw) — the property that
        // keeps auto runs stream-identical to forced sparse runs.
        let mut no_draw = |_: f64| panic!("definite measurement must not draw");

        let mut sim = HybridState::zeros(2).unwrap();
        Simulator::set_bit(&mut sim, q(0), true).unwrap();
        assert_eq!(sim.representation(), PlannedRepr::Sparse);
        assert!(Simulator::measure(&mut sim, q(0), Basis::Z, &mut no_draw).unwrap());

        let mut sim = HybridState::zeros(2).unwrap().with_thresholds(24, 0);
        Simulator::set_bit(&mut sim, q(0), true).unwrap();
        sim.replan(0, 0).unwrap();
        assert_eq!(sim.representation(), PlannedRepr::Dense);
        assert!(Simulator::measure(&mut sim, q(0), Basis::Z, &mut no_draw).unwrap());
        Simulator::reset(&mut sim, q(0), &mut no_draw).unwrap();
        assert!(!Simulator::bit(&sim, q(0)).unwrap());

        // And the fork path agrees: a definite outcome is Fork::Definite
        // even from the dense representation (whose raw engine always
        // splits), so tree replay consumes the per-shot stream.
        let mut sim = HybridState::zeros(2).unwrap().with_thresholds(24, 0);
        Simulator::set_bit(&mut sim, q(1), true).unwrap();
        sim.replan(0, 0).unwrap();
        assert_eq!(sim.representation(), PlannedRepr::Dense);
        let Some(Fork::Definite(true)) = Simulator::measure_fork(&mut sim, q(1), Basis::Z).unwrap()
        else {
            panic!("definite dense fork must fold to Fork::Definite");
        };
        assert!(Simulator::bit(&sim, q(1)).unwrap(), "post-fork state kept");
    }
}
