//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! This workspace builds without access to crates.io, so the subset of the
//! criterion 0.5 API its benches use is reimplemented here: [`Criterion`],
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], [`Bencher::iter`]
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical analysis, each benchmark is warmed up
//! briefly, then timed for a fixed budget; the mean iteration time is
//! printed. That keeps `cargo bench` useful for relative comparisons while
//! staying dependency-free. `cargo bench --no-run` compiles everything
//! without executing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark harness handle passed to every bench function.
#[derive(Clone, Copy, Debug)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            warm_up: Duration::from_millis(50),
            measurement: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the warm-up budget per benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, duration: Duration) -> Self {
        self.warm_up = duration;
        self
    }

    /// Sets the measurement budget per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, duration: Duration) -> Self {
        self.measurement = duration;
        self
    }

    /// Accepted for API compatibility; this harness sizes iteration counts
    /// from the measurement budget instead of a fixed sample count.
    #[must_use]
    pub fn sample_size(self, _samples: usize) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup { crit: self, name }
    }

    /// Accepts (and ignores) criterion CLI configuration; the real crate
    /// parses `--bench`, filters, and so on.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, *self, f);
        self
    }
}

/// A named collection of benchmarks sharing a prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    crit: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the measurement budget for the rest of this group.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.crit.measurement = duration;
        self
    }

    /// Accepted for API compatibility; see [`Criterion::sample_size`].
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        run_one(&format!("{}/{}", self.name, id), *self.crit, f);
        self
    }

    /// Runs one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into_benchmark_id();
        run_one(&format!("{}/{}", self.name, id), *self.crit, |b| {
            f(b, input);
        });
        self
    }

    /// Ends the group. (The real crate finalises reports here.)
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    rendered: String,
}

impl BenchmarkId {
    /// An id from a function name plus a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            rendered: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id from a parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            rendered: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.rendered)
    }
}

/// Conversion into [`BenchmarkId`], so `bench_function` accepts both ids
/// and plain strings.
pub trait IntoBenchmarkId {
    /// Performs the conversion.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            rendered: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { rendered: self }
    }
}

/// Times closures for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    iters_done: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, discarding its output.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also calibrates how many iterations fit the budget.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos() / u128::from(warm_iters.max(1));
        let target = (self.measurement.as_nanos() / per_iter.max(1)).clamp(1, 1 << 24) as u64;

        let start = Instant::now();
        for _ in 0..target {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters_done = target;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, config: Criterion, mut f: F) {
    let mut b = Bencher {
        warm_up: config.warm_up,
        measurement: config.measurement,
        iters_done: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    if b.iters_done == 0 {
        eprintln!("  {label}: no iterations recorded");
        return;
    }
    let mean = b.elapsed.as_nanos() as f64 / b.iters_done as f64;
    eprintln!("  {label}: {} ({} iters)", format_ns(mean), b.iters_done);
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns/iter")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs/iter", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms/iter", ns / 1_000_000.0)
    } else {
        format!("{:.3} s/iter", ns / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro —
/// both the positional form and the `name =` / `config =` / `targets =`
/// form.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $group:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        fn $group() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($group:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $group;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_render() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("n=4").to_string(), "n=4");
    }

    #[test]
    fn format_ns_picks_units() {
        assert!(format_ns(12.0).ends_with("ns/iter"));
        assert!(format_ns(12_000.0).ends_with("µs/iter"));
        assert!(format_ns(12_000_000.0).ends_with("ms/iter"));
        assert!(format_ns(2_000_000_000.0).ends_with("s/iter"));
    }
}
