//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! This workspace builds without access to crates.io, so the subset of the
//! proptest API its test suites use is reimplemented here: the
//! [`Strategy`] trait (with [`Strategy::prop_map`],
//! [`Strategy::prop_flat_map`] and [`Strategy::prop_shuffle`]), strategies
//! for integer ranges, tuples, [`Just`], [`bool::ANY`] and
//! [`collection::vec`], plus the [`proptest!`] test macro with
//! [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`].
//!
//! Differences from the real crate, deliberate for offline determinism:
//!
//! * **no shrinking** — a failing case reports the case seed instead of a
//!   minimal input;
//! * each test's random stream is seeded from the test name, so runs are
//!   fully deterministic;
//! * rejected cases ([`prop_assume!`]) are skipped, not retried.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform};

/// The RNG handed to strategies by the [`proptest!`] runner.
pub type TestRng = StdRng;

/// A recipe for generating values of a given type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy applying `f` to every generated value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// A strategy generating a value, then generating from the strategy
    /// `f` builds out of it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }

    /// A strategy producing random permutations of the generated
    /// collection.
    fn prop_shuffle(self) -> Shuffle<Self>
    where
        Self: Sized,
        Self::Value: Shuffleable,
    {
        Shuffle { base: self }
    }
}

/// Collections [`Strategy::prop_shuffle`] can permute.
pub trait Shuffleable {
    /// Permutes the collection in place (Fisher–Yates).
    fn shuffle(&mut self, rng: &mut TestRng);
}

impl<T> Shuffleable for Vec<T> {
    fn shuffle(&mut self, rng: &mut TestRng) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range_inclusive(0..=i);
            self.swap(i, j);
        }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone, Debug)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_shuffle`].
#[derive(Clone, Debug)]
pub struct Shuffle<S> {
    base: S,
}

impl<S: Strategy> Strategy for Shuffle<S>
where
    S::Value: Shuffleable,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let mut v = self.base.generate(rng);
        v.shuffle(rng);
        v
    }
}

/// A strategy that always yields a clone of its payload.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<T: SampleUniform + Clone> Strategy for std::ops::Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: SampleUniform + Clone> Strategy for std::ops::RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range_inclusive(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// The strategy yielding fair-coin booleans.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.gen_bool(0.5)
        }
    }

    /// A fair-coin boolean.
    pub const ANY: Any = Any;
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// A strategy for `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S, L>(element: S, size: L) -> VecStrategy<S, L>
    where
        S: Strategy,
        L: Strategy<Value = usize>,
    {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S, L> {
        element: S,
        size: L,
    }

    impl<S: Strategy, L: Strategy<Value = usize>> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Configuration for a [`proptest!`] block.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// How many cases each test runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Test-case outcomes used by the assertion macros.
pub mod test_runner {
    /// Why a single generated case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case was rejected by [`prop_assume!`](crate::prop_assume);
        /// it is skipped, not a failure.
        Reject(String),
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// A failed-assertion error.
        #[must_use]
        pub fn fail(message: String) -> Self {
            TestCaseError::Fail(message)
        }

        /// A rejected-case marker.
        #[must_use]
        pub fn reject(message: String) -> Self {
            TestCaseError::Reject(message)
        }
    }
}

/// Runs one test's cases. Used by the [`proptest!`] expansion; not public
/// API in the real crate, but harmless here.
pub fn run_cases<V>(
    test_name: &str,
    config: &ProptestConfig,
    strategy: &impl Strategy<Value = V>,
    mut body: impl FnMut(V) -> Result<(), test_runner::TestCaseError>,
) {
    use rand::SeedableRng;
    // Deterministic per-test base seed: FNV-1a over the test name.
    let mut base = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        base ^= u64::from(b);
        base = base.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut rejected = 0u32;
    for case in 0..config.cases {
        let mut rng = TestRng::seed_from_u64(base.wrapping_add(u64::from(case)));
        let value = strategy.generate(&mut rng);
        match body(value) {
            Ok(()) => {}
            Err(test_runner::TestCaseError::Reject(_)) => rejected += 1,
            Err(test_runner::TestCaseError::Fail(msg)) => panic!(
                "proptest case failed: {msg}\n\
                 (test `{test_name}`, case {case}, case seed {seed:#x})",
                seed = base.wrapping_add(u64::from(case)),
            ),
        }
    }
    assert!(
        rejected < config.cases,
        "proptest `{test_name}`: every case was rejected"
    );
}

/// Defines property tests: each `fn` runs its body over many generated
/// inputs. See the crate docs for the differences from real proptest.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { config = $cfg; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( config = $cfg:expr; ) => {};
    (
        config = $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let strategy = ( $($strat,)+ );
            $crate::run_cases(
                stringify!($name),
                &config,
                &strategy,
                |( $($pat,)+ )| {
                    $body
                    Ok(())
                },
            );
        }
        $crate::__proptest_fns! { config = $cfg; $($rest)* }
    };
}

/// Like `assert!`, but reports the failure through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Like `assert_eq!`, but reports the failure through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Skips the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;
    use rand::SeedableRng;

    #[test]
    fn ranges_tuples_and_just_generate_in_bounds() {
        let mut rng = TestRng::seed_from_u64(1);
        let strat = (1usize..=10, Just(7u8), 0u128..5);
        for _ in 0..200 {
            let (a, b, c) = Strategy::generate(&strat, &mut rng);
            assert!((1..=10).contains(&a));
            assert_eq!(b, 7);
            assert!(c < 5);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = TestRng::seed_from_u64(2);
        let strat = Just((0u32..8).collect::<Vec<u32>>()).prop_shuffle();
        for _ in 0..50 {
            let mut v = strat.generate(&mut rng);
            v.sort_unstable();
            assert_eq!(v, (0..8).collect::<Vec<u32>>());
        }
    }

    #[test]
    fn flat_map_threads_dependent_values() {
        let mut rng = TestRng::seed_from_u64(3);
        let strat = (1usize..=20).prop_flat_map(|n| (Just(n), 0usize..n));
        for _ in 0..200 {
            let (n, k) = strat.generate(&mut rng);
            assert!(k < n);
        }
    }

    #[test]
    fn collection_vec_respects_size_strategy() {
        let mut rng = TestRng::seed_from_u64(4);
        let strat = collection::vec(0u32..3, 2..6usize);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 3));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_binds_patterns((a, b) in (0u64..100, 0u64..100), flip in crate::bool::ANY) {
            prop_assert!(a < 100 && b < 100);
            if flip {
                prop_assert_eq!(a + b, b + a);
            }
        }

        #[test]
        fn assume_skips_cases(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert!(x != 3);
        }
    }
}
