//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! This workspace builds in environments with no access to crates.io, so the
//! subset of the rand 0.8 API the code actually uses is reimplemented here:
//!
//! * [`RngCore`] — the object-safe core trait (`next_u32` / `next_u64`);
//! * [`Rng`] — the extension trait with [`Rng::gen_bool`] and
//!   [`Rng::gen_range`], blanket-implemented for every [`RngCore`];
//! * [`SeedableRng`] with [`SeedableRng::seed_from_u64`];
//! * [`rngs::StdRng`] — a deterministic, seedable PRNG
//!   (xoshiro256++ seeded through SplitMix64).
//!
//! The bit streams are **not** compatible with the real rand crate; they are
//! deterministic per seed, which is all the simulators and tests rely on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// The core of a random number generator: a source of uniform bits.
///
/// Object-safe, so executors can take `&mut dyn RngCore`.
pub trait RngCore {
    /// The next 32 uniform random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 uniform random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniform random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Convenience methods on any [`RngCore`].
pub trait Rng: RngCore {
    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        // 53 uniform mantissa bits, the standard float-in-[0,1) recipe.
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// A uniform sample from `range` (which must be non-empty).
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// A uniform sample from an inclusive `range`.
    fn gen_range_inclusive<T: SampleUniform>(&mut self, range: std::ops::RangeInclusive<T>) -> T {
        T::sample_range_inclusive(self, range)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Sized {
    /// A uniform sample from the half-open `range`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;

    /// A uniform sample from the inclusive `range`.
    fn sample_range_inclusive<R: RngCore + ?Sized>(
        rng: &mut R,
        range: std::ops::RangeInclusive<Self>,
    ) -> Self;
}

/// Draws uniformly from `[0, span]` (inclusive), `span > 0`, without modulo
/// bias, or returns 0 for `span == 0`.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    if span == u128::MAX {
        return ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
    }
    let n = span + 1;
    let zone = u128::MAX - (u128::MAX % n);
    loop {
        let raw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        if raw < zone {
            return raw % n;
        }
    }
}

macro_rules! impl_sample_uniform {
    ($($t:ty => $widen:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end as $widen).wrapping_sub(range.start as $widen) as u128 - 1;
                range.start.wrapping_add(uniform_below(rng, span) as Self)
            }

            fn sample_range_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                range: std::ops::RangeInclusive<Self>,
            ) -> Self {
                let (start, end) = (*range.start(), *range.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as $widen).wrapping_sub(start as $widen) as u128;
                start.wrapping_add(uniform_below(rng, span) as Self)
            }
        }
    )*};
}

impl_sample_uniform!(
    u8 => u128, u16 => u128, u32 => u128, u64 => u128, u128 => u128, usize => u128,
    i8 => i128, i16 => i128, i32 => i128, i64 => i128, i128 => i128, isize => i128
);

/// A generator seedable from fixed state.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanded via SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256++.
    ///
    /// Statistically strong and fast; **not** bit-compatible with the real
    /// rand crate's `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // An all-zero state would be a fixed point of xoshiro.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 7];
        for _ in 0..500 {
            let v = rng.gen_range(0..7usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit: {seen:?}");
        for _ in 0..200 {
            let v = rng.gen_range(10i32..13);
            assert!((10..13).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn dyn_rng_core_is_usable() {
        let mut rng = StdRng::seed_from_u64(3);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let _ = dyn_rng.next_u64();
        // And the extension methods work through a &mut dyn reference.
        let _ = dyn_rng.gen_bool(0.5);
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
