//! Property-based tests for the classical bit-string arithmetic, checking
//! the algebraic identities of Appendix A of the paper against `u128`/`i128`
//! integer arithmetic.

use std::cmp::Ordering;

use mbu_bitstring::{maj, BitString};
use proptest::prelude::*;

/// A width in a range where u128 reference arithmetic is exact for sums.
fn widths() -> impl Strategy<Value = usize> {
    1usize..=100
}

fn value_pair() -> impl Strategy<Value = (usize, u128, u128)> {
    widths().prop_flat_map(|n| {
        let max = if n >= 128 {
            u128::MAX
        } else {
            (1u128 << n) - 1
        };
        (Just(n), 0..=max, 0..=max)
    })
}

proptest! {
    #[test]
    fn add_matches_u128((n, x, y) in value_pair()) {
        let bx = BitString::from_u128(x, n);
        let by = BitString::from_u128(y, n);
        prop_assert_eq!(bx.add(&by).to_u128(), x + y);
    }

    #[test]
    fn add_is_commutative((n, x, y) in value_pair()) {
        let bx = BitString::from_u128(x, n);
        let by = BitString::from_u128(y, n);
        prop_assert_eq!(bx.add(&by), by.add(&bx));
    }

    #[test]
    fn sub_top_bit_is_comparison((n, x, y) in value_pair()) {
        // Proposition A.3.
        let bx = BitString::from_u128(x, n);
        let by = BitString::from_u128(y, n);
        prop_assert_eq!(bx.sub(&by).bit(n), x < y);
    }

    #[test]
    fn sub_equals_twos_complement_add((n, x, y) in value_pair()) {
        // Proposition A.1: x − y = x + (2's complement of y), mod 2^n.
        let bx = BitString::from_u128(x, n);
        let by = BitString::from_u128(y, n);
        prop_assert_eq!(bx.wrapping_sub(&by), bx.wrapping_add(&by.twos_complement()));
    }

    #[test]
    fn twos_complement_is_involutive((n, x, _) in value_pair()) {
        let bx = BitString::from_u128(x, n);
        prop_assert_eq!(bx.twos_complement().twos_complement(), bx);
    }

    #[test]
    fn carries_follow_majority_recursion((n, x, y) in value_pair()) {
        let bx = BitString::from_u128(x, n);
        let by = BitString::from_u128(y, n);
        let c = bx.carry_bits(&by);
        prop_assert!(!c[0]);
        for i in 0..n {
            prop_assert_eq!(c[i + 1], maj(bx.bit(i), by.bit(i), c[i]));
        }
    }

    #[test]
    fn cmp_value_matches_integers((n, x, y) in value_pair()) {
        let bx = BitString::from_u128(x, n);
        let by = BitString::from_u128(y, n);
        prop_assert_eq!(bx.cmp_value(&by), x.cmp(&y));
    }

    #[test]
    fn add_mod_matches_integers((n, x, y) in value_pair()) {
        let p = x.max(y) + 1; // guarantees x, y < p
        if n >= 128 || p < (1u128 << n) {
            let bx = BitString::from_u128(x, n);
            let by = BitString::from_u128(y, n);
            let bp = BitString::from_u128(p, n);
            prop_assert_eq!(bx.add_mod(&by, &bp).to_u128(), (x + y) % p);
        }
    }

    #[test]
    fn signed_roundtrip(v in -(1i128 << 62)..(1i128 << 62)) {
        prop_assert_eq!(BitString::from_i128(v, 64).to_i128(), v);
    }

    #[test]
    fn display_parse_roundtrip((n, x, _) in value_pair()) {
        let bx = BitString::from_u128(x, n);
        let parsed: BitString = bx.to_string().parse().unwrap();
        prop_assert_eq!(parsed, bx);
    }

    #[test]
    fn hamming_weight_matches_count_ones((n, x, _) in value_pair()) {
        let bx = BitString::from_u128(x, n);
        prop_assert_eq!(bx.hamming_weight(), x.count_ones() as usize);
    }

    #[test]
    fn resized_preserves_value_when_growing((n, x, _) in value_pair()) {
        let bx = BitString::from_u128(x, n);
        let grown = bx.resized(n + 13);
        prop_assert_eq!(grown.to_u128(), x);
        prop_assert_eq!(grown.cmp_value(&bx), Ordering::Equal);
    }
}
