//! The [`BitString`] type: a fixed-width little-endian string of bits.

use std::cmp::Ordering;
use std::error::Error;
use std::fmt;
use std::str::FromStr;

use crate::maj;

/// A fixed-width bit string `x = x_{n-1} … x_1 x_0` (bit 0 least significant).
///
/// `BitString` is the classical reference model for the quantum registers of
/// the paper: a width-`n` string simultaneously encodes an unsigned integer
/// in `{0, …, 2^n − 1}` (Remark A.2) and a signed integer in
/// `{−2^{n−1}, …, 2^{n−1} − 1}` via 2's complement (Remark A.4).
///
/// Widths are arbitrary (not limited to 128 bits), so the same type backs
/// resource-count sweeps at cryptographic sizes (`n = 256`) and exhaustive
/// correctness tests at small `n`.
///
/// # Examples
///
/// ```
/// use mbu_bitstring::BitString;
///
/// let x = BitString::from_u128(0b1010, 4);
/// assert_eq!(x.bit(1), true);
/// assert_eq!(x.bit(0), false);
/// assert_eq!(x.to_string(), "1010");
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitString {
    /// Little-endian: `bits[i]` is the coefficient of 2^i.
    bits: Vec<bool>,
}

impl BitString {
    /// Creates the all-zero string of the given width.
    ///
    /// # Examples
    ///
    /// ```
    /// use mbu_bitstring::BitString;
    ///
    /// assert_eq!(BitString::zeros(3).to_u128(), 0);
    /// ```
    #[must_use]
    pub fn zeros(width: usize) -> Self {
        Self {
            bits: vec![false; width],
        }
    }

    /// Creates the all-one string of the given width.
    ///
    /// # Examples
    ///
    /// ```
    /// use mbu_bitstring::BitString;
    ///
    /// assert_eq!(BitString::ones(4).to_u128(), 15);
    /// ```
    #[must_use]
    pub fn ones(width: usize) -> Self {
        Self {
            bits: vec![true; width],
        }
    }

    /// Encodes `value` as a width-`width` bit string (Remark A.2).
    ///
    /// # Panics
    ///
    /// Panics if `value` does not fit in `width` bits.
    ///
    /// # Examples
    ///
    /// ```
    /// use mbu_bitstring::BitString;
    ///
    /// let x = BitString::from_u128(5, 4);
    /// assert_eq!(x.to_u128(), 5);
    /// ```
    #[must_use]
    pub fn from_u128(value: u128, width: usize) -> Self {
        assert!(
            width >= 128 || value < (1u128 << width),
            "value {value} does not fit in {width} bits"
        );
        let bits = (0..width)
            .map(|i| i < 128 && (value >> i) & 1 == 1)
            .collect();
        Self { bits }
    }

    /// Encodes the signed integer `value` in 2's complement (Remark A.4).
    ///
    /// # Panics
    ///
    /// Panics if `value` is outside `[−2^{width−1}, 2^{width−1})`.
    ///
    /// # Examples
    ///
    /// ```
    /// use mbu_bitstring::BitString;
    ///
    /// let x = BitString::from_i128(-3, 4);
    /// assert_eq!(x.to_string(), "1101");
    /// assert_eq!(x.to_i128(), -3);
    /// ```
    #[must_use]
    pub fn from_i128(value: i128, width: usize) -> Self {
        assert!(
            (1..=128).contains(&width),
            "signed width must be in 1..=128"
        );
        let lo = -(1i128 << (width - 1));
        let hi = 1i128 << (width - 1);
        assert!(
            value >= lo && value < hi,
            "value {value} does not fit in {width} signed bits"
        );
        let unsigned = (value as u128) & mask(width);
        Self::from_u128(unsigned, width)
    }

    /// Builds a bit string from little-endian bits.
    ///
    /// # Examples
    ///
    /// ```
    /// use mbu_bitstring::BitString;
    ///
    /// let x = BitString::from_bits(vec![true, false, true]); // 0b101
    /// assert_eq!(x.to_u128(), 5);
    /// ```
    #[must_use]
    pub fn from_bits(bits: Vec<bool>) -> Self {
        Self { bits }
    }

    /// The number of bits `n` in the string.
    #[must_use]
    pub fn width(&self) -> usize {
        self.bits.len()
    }

    /// Returns bit `i` (coefficient of 2^i).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.width()`.
    #[must_use]
    pub fn bit(&self, i: usize) -> bool {
        self.bits[i]
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.width()`.
    pub fn set_bit(&mut self, i: usize, value: bool) {
        self.bits[i] = value;
    }

    /// Iterates over the bits, least significant first.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        self.bits.iter().copied()
    }

    /// The bits as a little-endian slice.
    #[must_use]
    pub fn as_bits(&self) -> &[bool] {
        &self.bits
    }

    /// Decodes the string as an unsigned integer (Remark A.2).
    ///
    /// # Panics
    ///
    /// Panics if a set bit lies at position 128 or above.
    #[must_use]
    pub fn to_u128(&self) -> u128 {
        let mut value = 0u128;
        for (i, &b) in self.bits.iter().enumerate() {
            if b {
                assert!(i < 128, "bit string value does not fit in u128");
                value |= 1 << i;
            }
        }
        value
    }

    /// Decodes the string as a 2's-complement signed integer (Remark A.4).
    ///
    /// # Panics
    ///
    /// Panics if the width exceeds 128 bits or is zero.
    #[must_use]
    pub fn to_i128(&self) -> i128 {
        let n = self.width();
        assert!((1..=128).contains(&n), "signed width must be in 1..=128");
        let unsigned = self.to_u128();
        if self.bits[n - 1] && n < 128 {
            (unsigned as i128) - (1i128 << n)
        } else {
            unsigned as i128
        }
    }

    /// Hamming weight of the string, written `|x|` in the paper.
    ///
    /// # Examples
    ///
    /// ```
    /// use mbu_bitstring::BitString;
    ///
    /// assert_eq!(BitString::from_u128(0b1011, 4).hamming_weight(), 3);
    /// ```
    #[must_use]
    pub fn hamming_weight(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }

    /// Returns a copy truncated or zero-extended to `width` bits.
    #[must_use]
    pub fn resized(&self, width: usize) -> Self {
        let mut bits = self.bits.clone();
        bits.resize(width, false);
        Self { bits }
    }

    /// The carry sequence `c_0, …, c_n` of `self + other` (Definition 1.2).
    ///
    /// `c_0 = 0` and `c_{i+1} = maj(x_i, y_i, c_i)`; the returned vector has
    /// `n + 1` entries where `n` is the common width.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    #[must_use]
    pub fn carry_bits(&self, other: &Self) -> Vec<bool> {
        assert_eq!(self.width(), other.width(), "carry_bits: width mismatch");
        let n = self.width();
        let mut carries = Vec::with_capacity(n + 1);
        carries.push(false);
        for i in 0..n {
            let c = *carries.last().expect("seeded with c_0");
            carries.push(maj(self.bits[i], other.bits[i], c));
        }
        carries
    }

    /// Bit-string addition (Definition 1.2): returns the `(n+1)`-bit sum.
    ///
    /// The extra most-significant bit holds the final carry, so the result
    /// encodes `x + y` exactly as an unsigned integer. Interpreted in 2's
    /// complement the same circuit adds signed integers (Proposition A.6).
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    ///
    /// # Examples
    ///
    /// ```
    /// use mbu_bitstring::BitString;
    ///
    /// let x = BitString::from_u128(13, 4);
    /// let y = BitString::from_u128(9, 4);
    /// assert_eq!(x.add(&y).to_u128(), 22);
    /// ```
    #[must_use]
    pub fn add(&self, other: &Self) -> Self {
        let n = self.width();
        let carries = self.carry_bits(other);
        let mut bits = Vec::with_capacity(n + 1);
        for (i, &c) in carries.iter().take(n).enumerate() {
            bits.push(self.bits[i] ^ other.bits[i] ^ c);
        }
        bits.push(carries[n]);
        Self { bits }
    }

    /// Addition modulo 2^n: the `n`-bit sum, discarding the final carry.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    #[must_use]
    pub fn wrapping_add(&self, other: &Self) -> Self {
        let mut sum = self.add(other);
        sum.bits.truncate(self.width());
        sum
    }

    /// 1's complement: flips every bit (Definition 1.3).
    ///
    /// # Examples
    ///
    /// ```
    /// use mbu_bitstring::BitString;
    ///
    /// assert_eq!(BitString::from_u128(0b1010, 4).ones_complement().to_u128(), 0b0101);
    /// ```
    #[must_use]
    pub fn ones_complement(&self) -> Self {
        Self {
            bits: self.bits.iter().map(|&b| !b).collect(),
        }
    }

    /// 2's complement: `x̄ + 1` modulo 2^n (Definition 1.4).
    ///
    /// # Examples
    ///
    /// ```
    /// use mbu_bitstring::BitString;
    ///
    /// // −5 mod 16 = 11
    /// assert_eq!(BitString::from_u128(5, 4).twos_complement().to_u128(), 11);
    /// ```
    #[must_use]
    pub fn twos_complement(&self) -> Self {
        let mut one = Self::zeros(self.width());
        if self.width() > 0 {
            one.set_bit(0, true);
        }
        self.ones_complement().wrapping_add(&one)
    }

    /// The borrow sequence `b_0, …, b_n` of `self − other` (Definition 1.5).
    ///
    /// `b_0 = 0` and `b_{i+1} = maj(x_i ⊕ 1, y_i, b_i)`; the final borrow
    /// `b_n` is 1 exactly when `x < y` (Proposition A.3).
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    #[must_use]
    pub fn borrow_bits(&self, other: &Self) -> Vec<bool> {
        assert_eq!(self.width(), other.width(), "borrow_bits: width mismatch");
        let n = self.width();
        let mut borrows = Vec::with_capacity(n + 1);
        borrows.push(false);
        for i in 0..n {
            let b = *borrows.last().expect("seeded with b_0");
            borrows.push(maj(!self.bits[i], other.bits[i], b));
        }
        borrows
    }

    /// Bit-string subtraction (Definition 1.5): the `(n+1)`-bit difference.
    ///
    /// Bit `i < n` is `x_i ⊕ y_i ⊕ b_i`; the most significant bit is the
    /// final borrow, i.e. the comparison `1[x < y]`. The result equals the
    /// signed integer `x − y` in 2's complement on `n + 1` bits
    /// (Proposition A.5).
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    ///
    /// # Examples
    ///
    /// ```
    /// use mbu_bitstring::BitString;
    ///
    /// let x = BitString::from_u128(3, 4);
    /// let y = BitString::from_u128(9, 4);
    /// let d = x.sub(&y);
    /// assert!(d.bit(4), "final borrow set because 3 < 9");
    /// assert_eq!(d.to_i128(), -6);
    /// ```
    #[must_use]
    pub fn sub(&self, other: &Self) -> Self {
        let n = self.width();
        let borrows = self.borrow_bits(other);
        let mut bits = Vec::with_capacity(n + 1);
        for (i, &bw) in borrows.iter().take(n).enumerate() {
            bits.push(self.bits[i] ^ other.bits[i] ^ bw);
        }
        bits.push(borrows[n]);
        Self { bits }
    }

    /// Subtraction modulo 2^n: the `n`-bit difference, discarding the borrow.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    #[must_use]
    pub fn wrapping_sub(&self, other: &Self) -> Self {
        let mut diff = self.sub(other);
        diff.bits.truncate(self.width());
        diff
    }

    /// Compares the unsigned integer values of two strings of any widths.
    #[must_use]
    pub fn cmp_value(&self, other: &Self) -> Ordering {
        let width = self.width().max(other.width());
        for i in (0..width).rev() {
            let a = i < self.width() && self.bits[i];
            let b = i < other.width() && other.bits[i];
            match (a, b) {
                (true, false) => return Ordering::Greater,
                (false, true) => return Ordering::Less,
                _ => {}
            }
        }
        Ordering::Equal
    }

    /// Reference modular addition: `(x + y) mod p` as an `n`-bit string.
    ///
    /// This is the semantics of the paper's `MODADD_p` gate (Definition 3.1).
    ///
    /// # Panics
    ///
    /// Panics if widths differ or the precondition `x, y < p` is violated.
    ///
    /// # Examples
    ///
    /// ```
    /// use mbu_bitstring::BitString;
    ///
    /// let x = BitString::from_u128(5, 3);
    /// let y = BitString::from_u128(6, 3);
    /// let p = BitString::from_u128(7, 3);
    /// assert_eq!(x.add_mod(&y, &p).to_u128(), 4);
    /// ```
    #[must_use]
    pub fn add_mod(&self, other: &Self, modulus: &Self) -> Self {
        let n = self.width();
        assert_eq!(other.width(), n, "add_mod: width mismatch");
        assert_eq!(modulus.width(), n, "add_mod: modulus width mismatch");
        assert!(
            self.cmp_value(modulus) == Ordering::Less && other.cmp_value(modulus) == Ordering::Less,
            "add_mod requires x, y < p"
        );
        let sum = self.add(other); // n + 1 bits, exact
        let p_ext = modulus.resized(n + 1);
        if sum.cmp_value(&p_ext) == Ordering::Less {
            sum.resized(n)
        } else {
            sum.sub(&p_ext).resized(n)
        }
    }
}

fn mask(width: usize) -> u128 {
    if width >= 128 {
        u128::MAX
    } else {
        (1u128 << width) - 1
    }
}

impl fmt::Debug for BitString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitString({self})")
    }
}

impl fmt::Display for BitString {
    /// Formats most-significant bit first, matching the paper's
    /// `x_{n-1} … x_0` convention. The empty string renders as `ε`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.bits.is_empty() {
            return write!(f, "ε");
        }
        for &b in self.bits.iter().rev() {
            write!(f, "{}", if b { '1' } else { '0' })?;
        }
        Ok(())
    }
}

impl fmt::Binary for BitString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Error returned when parsing a [`BitString`] from text fails.
///
/// # Examples
///
/// ```
/// use mbu_bitstring::BitString;
///
/// let err = "10x1".parse::<BitString>().unwrap_err();
/// assert!(err.to_string().contains("invalid character"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBitStringError {
    offending: char,
}

impl fmt::Display for ParseBitStringError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid character {:?} in bit string (expected '0' or '1')",
            self.offending
        )
    }
}

impl Error for ParseBitStringError {}

impl FromStr for BitString {
    type Err = ParseBitStringError;

    /// Parses a most-significant-bit-first string of `0`s and `1`s.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut bits = Vec::with_capacity(s.len());
        for ch in s.chars().rev() {
            match ch {
                '0' => bits.push(false),
                '1' => bits.push(true),
                offending => return Err(ParseBitStringError { offending }),
            }
        }
        Ok(Self { bits })
    }
}

impl From<BitString> for Vec<bool> {
    fn from(value: BitString) -> Self {
        value.bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_u128() {
        for v in [0u128, 1, 5, 255, 256, (1 << 40) - 1] {
            let width = 41;
            assert_eq!(BitString::from_u128(v, width).to_u128(), v);
        }
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn from_u128_overflow_panics() {
        let _ = BitString::from_u128(16, 4);
    }

    #[test]
    fn roundtrip_signed() {
        for v in -8i128..8 {
            assert_eq!(BitString::from_i128(v, 4).to_i128(), v);
        }
    }

    #[test]
    fn add_matches_integer_addition_exhaustive() {
        let n = 5;
        for x in 0u128..(1 << n) {
            for y in 0u128..(1 << n) {
                let bx = BitString::from_u128(x, n as usize);
                let by = BitString::from_u128(y, n as usize);
                let sum = bx.add(&by);
                assert_eq!(sum.width(), n as usize + 1);
                assert_eq!(sum.to_u128(), x + y, "{x} + {y}");
            }
        }
    }

    #[test]
    fn sub_matches_signed_subtraction_exhaustive() {
        // Proposition A.5: x − y equals the signed value (x − y) in 2's
        // complement on n+1 bits.
        let n = 5;
        for x in 0i128..(1 << n) {
            for y in 0i128..(1 << n) {
                let bx = BitString::from_u128(x as u128, n as usize);
                let by = BitString::from_u128(y as u128, n as usize);
                let diff = bx.sub(&by);
                assert_eq!(diff.to_i128(), x - y, "{x} - {y}");
                // Proposition A.3: top bit is the comparison x < y.
                assert_eq!(diff.bit(n as usize), x < y);
            }
        }
    }

    #[test]
    fn subtraction_via_twos_complement() {
        // Proposition A.1 (mod 2^n form): x − y ≡ x + ȳ + 1.
        let n = 6usize;
        for x in 0u128..(1 << n) {
            for y in [0u128, 1, 17, 63, 32] {
                let bx = BitString::from_u128(x, n);
                let by = BitString::from_u128(y, n);
                let direct = bx.wrapping_sub(&by);
                let via_complement = bx.wrapping_add(&by.twos_complement());
                assert_eq!(direct, via_complement, "{x} - {y}");
            }
        }
    }

    #[test]
    fn signed_addition_exhaustive() {
        // Proposition A.6: signed integers add correctly in 2's complement.
        let n = 4usize;
        for x in -8i128..8 {
            for y in -8i128..8 {
                let bx = BitString::from_i128(x, n);
                let by = BitString::from_i128(y, n);
                let sum = bx.wrapping_add(&by);
                let expected = (x + y).rem_euclid(16);
                assert_eq!(sum.to_u128() as i128, expected, "{x} + {y}");
            }
        }
    }

    #[test]
    fn carries_satisfy_recursion() {
        let x = BitString::from_u128(0b1011, 4);
        let y = BitString::from_u128(0b0110, 4);
        let c = x.carry_bits(&y);
        assert_eq!(c.len(), 5);
        assert!(!c[0]);
        for i in 0..4 {
            assert_eq!(c[i + 1], maj(x.bit(i), y.bit(i), c[i]));
        }
    }

    #[test]
    fn borrows_detect_comparison() {
        for (x, y) in [(3u128, 9u128), (9, 3), (7, 7), (0, 15), (15, 0)] {
            let bx = BitString::from_u128(x, 4);
            let by = BitString::from_u128(y, 4);
            assert_eq!(bx.borrow_bits(&by)[4], x < y, "{x} < {y}");
        }
    }

    #[test]
    fn add_mod_exhaustive_small() {
        for n in 1usize..=4 {
            for p in 1u128..(1 << n) {
                for x in 0..p {
                    for y in 0..p {
                        let bx = BitString::from_u128(x, n);
                        let by = BitString::from_u128(y, n);
                        let bp = BitString::from_u128(p, n);
                        assert_eq!(
                            bx.add_mod(&by, &bp).to_u128(),
                            (x + y) % p,
                            "({x} + {y}) mod {p}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn add_mod_wide_values() {
        // 200-bit arithmetic exercises the beyond-u128 path.
        let n = 200usize;
        let p = BitString::from_bits((0..n).map(|i| i % 3 != 0).collect());
        let mut x = p.clone();
        x.set_bit(n - 1, false); // ensure x < p
        let y = BitString::zeros(n);
        assert_eq!(x.add_mod(&y, &p), x);
    }

    #[test]
    fn display_and_parse_roundtrip() {
        let x = BitString::from_u128(0b10110, 5);
        assert_eq!(x.to_string(), "10110");
        let parsed: BitString = "10110".parse().unwrap();
        assert_eq!(parsed, x);
        assert_eq!(format!("{x:b}"), "10110");
    }

    #[test]
    fn complement_identities() {
        // x + x̄ = 2^n − 1 (Remark A.2).
        let n = 7usize;
        for x in [0u128, 1, 63, 100, 127] {
            let bx = BitString::from_u128(x, n);
            let sum = bx.wrapping_add(&bx.ones_complement());
            assert_eq!(sum.to_u128(), (1 << n) - 1);
        }
    }

    #[test]
    fn cmp_value_across_widths() {
        let a = BitString::from_u128(5, 3);
        let b = BitString::from_u128(5, 8);
        assert_eq!(a.cmp_value(&b), Ordering::Equal);
        let c = BitString::from_u128(9, 8);
        assert_eq!(a.cmp_value(&c), Ordering::Less);
        assert_eq!(c.cmp_value(&a), Ordering::Greater);
    }
}
