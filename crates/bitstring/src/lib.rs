//! Classical bit-string arithmetic.
//!
//! This crate is the *reference model* for the quantum arithmetic circuits in
//! [`mbu-arith`]: every circuit is tested against the operations defined
//! here. It implements the bit-string operations of §1.3 and Appendix A of
//! *"Measurement-based uncomputation of quantum circuits for modular
//! arithmetic"* (Luongo, Miti, Narasimhachar, Sireesh, DAC 2025):
//!
//! * bit-string addition with its carry sequence (Definition 1.2),
//! * 1's and 2's complement (Definitions 1.3, 1.4),
//! * bit-string subtraction with its borrow sequence (Definition 1.5),
//! * the majority function `maj`,
//! * unsigned and 2's-complement signed integer encodings (Remarks A.2, A.4),
//! * Hamming weight `|a|` (used throughout the paper's resource formulas).
//!
//! Bit strings are little-endian: bit `0` is the least significant bit, the
//! same convention the paper uses for `x = x_{n-1} … x_0`.
//!
//! # Examples
//!
//! ```
//! use mbu_bitstring::BitString;
//!
//! let x = BitString::from_u128(11, 4);
//! let y = BitString::from_u128(7, 4);
//! let s = x.add(&y); // 5-bit result, carries the overflow
//! assert_eq!(s.to_u128(), 18);
//! assert_eq!(s.width(), 5);
//! ```
//!
//! [`mbu-arith`]: https://docs.rs/mbu-arith

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod string;

pub use string::{BitString, ParseBitStringError};

/// The majority function of three bits (Equation (5) of the paper).
///
/// Returns `true` whenever at least two of the three inputs are `true`:
/// `maj(a, b, c) = ab ⊕ ac ⊕ bc`.
///
/// # Examples
///
/// ```
/// use mbu_bitstring::maj;
///
/// assert!(!maj(false, false, true));
/// assert!(maj(true, false, true));
/// assert!(maj(true, true, true));
/// ```
#[inline]
#[must_use]
pub fn maj(a: bool, b: bool, c: bool) -> bool {
    (a & b) ^ (a & c) ^ (b & c)
}

/// Hamming weight of `a`'s binary representation, written `|a|` in the paper.
///
/// The paper's resource formulas (e.g. Table 1's `2|p| + 1` X-gate counts)
/// are parameterised on the Hamming weight of the classical constants.
///
/// # Examples
///
/// ```
/// use mbu_bitstring::hamming_weight;
///
/// assert_eq!(hamming_weight(0b1011), 3);
/// assert_eq!(hamming_weight(0), 0);
/// ```
#[inline]
#[must_use]
pub fn hamming_weight(a: u128) -> u32 {
    a.count_ones()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maj_truth_table() {
        // Exhaustive truth table: true iff at least two inputs are true.
        for bits in 0u8..8 {
            let a = bits & 1 != 0;
            let b = bits & 2 != 0;
            let c = bits & 4 != 0;
            let expected = (u8::from(a) + u8::from(b) + u8::from(c)) >= 2;
            assert_eq!(maj(a, b, c), expected, "maj({a}, {b}, {c})");
        }
    }

    #[test]
    fn hamming_weight_matches_count_ones() {
        assert_eq!(hamming_weight(u128::MAX), 128);
        assert_eq!(hamming_weight(1 << 100), 1);
    }
}
