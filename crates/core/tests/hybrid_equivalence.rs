//! Cross-backend equivalence on the paper's modular adders: the lossless
//! dense↔sparse conversions round-trip bit-for-bit under every kernel
//! configuration, and the `MBU_BACKEND=auto` hybrid planner matches the
//! forced sparse backend bit-for-bit — amplitudes, executed records,
//! classical bits and RNG stream position — on random MBU modadd
//! instances, switching representations mid-run while it does so.
//!
//! The one identity deliberately *not* asserted on the adders is forced
//! dense versus anything else at stream level: the MBU constructions
//! reset measured ancillas, and a reset of a definite qubit consumes an
//! RNG draw on the dense engine but none on the sparse map (or the
//! hybrid, whose draw policy is pinned to the sparse one). Dense joins
//! the bitwise pack on reset-free circuits — see
//! [`auto_matches_both_forced_backends_on_a_reset_free_circuit`].

use mbu_arith::{adders::draper, modular, Uncompute};
use mbu_circuit::{Angle, Basis, CircuitBuilder, CompiledCircuit, PassConfig};
use mbu_sim::{
    dense_to_sparse, sparse_to_dense, Complex, HybridState, KernelMode, Simulator, SparseVector,
    StateVector,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// The compact adder specs (every circuit stays well under the dense
/// width cap at n = 3), always with measurement-based uncomputation so
/// the circuits actually measure mid-run.
fn arb_mbu_spec() -> impl Strategy<Value = modular::ModAddSpec> {
    (0usize..3).prop_map(|i| match i {
        0 => modular::ModAddSpec::cdkpm(Uncompute::Mbu),
        1 => modular::ModAddSpec::gidney(Uncompute::Mbu),
        _ => modular::ModAddSpec::gidney_cdkpm(Uncompute::Mbu),
    })
}

/// A random small modadd instance: `(spec, p, x, y)` with `x, y < p`.
fn arb_instance() -> impl Strategy<Value = (modular::ModAddSpec, u128, u128, u128)> {
    (arb_mbu_spec(), 0usize..3, 0u128..49).prop_map(|(spec, pi, xy)| {
        let p = [3u128, 5, 7][pi];
        (spec, p, (xy % 7) % p, (xy / 7) % p)
    })
}

/// Compiles with the given fusion window and everything else at the
/// (deterministic) defaults — reclamation analysis on, phase folding off.
fn compile(circuit: &mbu_circuit::Circuit, fuse: bool) -> CompiledCircuit {
    let config = PassConfig {
        fuse_max_qubits: if fuse { 3 } else { 0 },
        ..PassConfig::default()
    };
    CompiledCircuit::with_config(circuit, &config).unwrap()
}

/// Bitwise equality on the nonzero support; exact zeros compare as values
/// (`±0.0` are the same state — the sparse map cannot carry a zero entry
/// at all, let alone its sign, while dense diagonal sweeps are free to
/// leave `-0.0` behind on unoccupied indices).
fn assert_amps_bitwise(a: &[Complex], b: &[Complex], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        if x.re == 0.0 && x.im == 0.0 && y.re == 0.0 && y.im == 0.0 {
            continue;
        }
        assert_eq!(x.re.to_bits(), y.re.to_bits(), "{what}: re of amp {i}");
        assert_eq!(x.im.to_bits(), y.im.to_bits(), "{what}: im of amp {i}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Dense↔sparse round trips are bitwise lossless across
    /// KernelMode × fusion × reclamation, and both exact backends land on
    /// the correct modular sum whatever their trajectories drew.
    #[test]
    fn dense_sparse_round_trip_is_bitwise_across_configs(
        (spec, p, x, y) in arb_instance(),
        seed in 0u64..u64::MAX,
        scan in 0usize..2,
        fuse in 0usize..2,
        reclaim in 0usize..2,
    ) {
        let (scan, fuse, reclaim) = (scan == 1, fuse == 1, reclaim == 1);
        let layout = modular::modadd_circuit(&spec, 3, p).unwrap();
        let q = layout.circuit.num_qubits();
        prop_assume!(q <= 16);
        let compiled = compile(&layout.circuit, fuse);
        let mode = if scan { KernelMode::Scan } else { KernelMode::Stride };

        let mut dense = StateVector::zeros(q).unwrap()
            .with_kernel_mode(mode)
            .with_reclamation(reclaim);
        let mut sparse = SparseVector::zeros(q).unwrap();
        for sim in [&mut dense as &mut dyn Simulator, &mut sparse] {
            sim.set_value(layout.x.qubits(), x).unwrap();
            sim.set_value(layout.y.qubits(), y).unwrap();
        }
        let mut rng_d = StdRng::seed_from_u64(seed);
        let mut rng_s = StdRng::seed_from_u64(seed);
        dense.run_compiled(&compiled, &mut rng_d).unwrap();
        Simulator::run_compiled(&mut sparse, &compiled, &mut rng_s).unwrap();

        // Whatever each trajectory measured, the arithmetic is exact.
        prop_assert_eq!(dense.value(layout.y.qubits()).unwrap(), (x + y) % p);
        prop_assert_eq!(Simulator::value(&sparse, layout.y.qubits()).unwrap(), (x + y) % p);

        // Round trips are bitwise lossless in both directions, whatever
        // configuration produced the states.
        let d_amps = dense.amplitudes();
        let rt_dense = sparse_to_dense(&dense_to_sparse(&dense)).unwrap();
        assert_amps_bitwise(&rt_dense.amplitudes(), &d_amps, "dense round trip");
        let s_dense = sparse_to_dense(&sparse).unwrap();
        let rt_sparse = dense_to_sparse(&s_dense);
        prop_assert_eq!(rt_sparse.occupied(), sparse.occupied());
        assert_amps_bitwise(
            &sparse_to_dense(&rt_sparse).unwrap().amplitudes(),
            &s_dense.amplitudes(),
            "sparse round trip",
        );
    }

    /// The auto backend, with thresholds tightened so it actually switches
    /// representations mid-run, matches the forced sparse backend
    /// bit-for-bit on random MBU modadds: record, classical bits, RNG
    /// position and every amplitude.
    #[test]
    fn auto_backend_matches_forced_sparse_bit_for_bit(
        (spec, p, x, y) in arb_instance(),
        seed in 0u64..u64::MAX,
        fuse in 0usize..2,
    ) {
        let layout = modular::modadd_circuit(&spec, 3, p).unwrap();
        let q = layout.circuit.num_qubits();
        prop_assume!(q <= 16);
        let compiled = compile(&layout.circuit, fuse == 1);

        let mut auto = HybridState::zeros(q).unwrap().with_thresholds(24, 1);
        let mut sparse = SparseVector::zeros(q).unwrap();
        for sim in [&mut auto as &mut dyn Simulator, &mut sparse] {
            sim.set_value(layout.x.qubits(), x).unwrap();
            sim.set_value(layout.y.qubits(), y).unwrap();
        }
        let mut rng_a = StdRng::seed_from_u64(seed);
        let mut rng_s = StdRng::seed_from_u64(seed);
        let ex_a = Simulator::run_compiled(&mut auto, &compiled, &mut rng_a).unwrap();
        let ex_s = Simulator::run_compiled(&mut sparse, &compiled, &mut rng_s).unwrap();

        prop_assert_eq!(&ex_a, &ex_s);
        prop_assert_eq!(rng_a.next_u64(), rng_s.next_u64());
        assert_amps_bitwise(
            &auto.amplitudes().unwrap(),
            &sparse_to_dense(&sparse).unwrap().amplitudes(),
            "auto vs sparse",
        );
        prop_assert_eq!(
            Simulator::value(&auto, layout.y.qubits()).unwrap(),
            (x + y) % p
        );
        // With the threshold this tight the planner genuinely switched at
        // least once — the identities above cover real mid-run hops, not
        // a planner that stayed sparse throughout.
        prop_assert!(auto.last_run_switches().unwrap() >= 1);
    }
}

/// A random diagonal-heavy gate soup on `n` qubits: the mixed workload
/// the three-way planner sees inside QFT arithmetic — `H` fan-out,
/// dyadic rotations at every arity, permutation moves and mid-circuit
/// measurements, with a guaranteed diagonal gate in the opening segment
/// so the phase hop always has something to bite on.
fn diag_soup_circuit(n: usize, ops: &[(u8, u32, u32, u32)]) -> mbu_circuit::Circuit {
    let mut b = CircuitBuilder::new();
    let r = b.qreg("q", n);
    b.cphase(r[0], r[1], Angle::turn_over_power_of_two(2));
    for (i, &(kind, a, c, k)) in ops.iter().enumerate() {
        let (qa, qc) = (r[a as usize % n], r[c as usize % n]);
        let theta = Angle::turn_over_power_of_two(1 + k % 6);
        match kind % 7 {
            0 => b.h(qa),
            1 => b.x(qa),
            2 => b.phase(qa, theta),
            3 if qa != qc => b.cphase(qa, qc, theta),
            3 => b.phase(qa, theta),
            4 if qa != qc => b.cx(qa, qc),
            4 => b.x(qa),
            5 if qa != qc => b.swap(qa, qc),
            5 => b.h(qa),
            _ => {
                let qt = r[(a as usize + c as usize + 1) % n];
                if qa != qc && qc != qt && qa != qt {
                    b.ccphase(qa, qc, qt, theta);
                } else {
                    b.phase(qa, theta);
                }
            }
        }
        if i % 9 == 8 {
            let _ = b.measure(qa, Basis::Z);
        }
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random Draper wrapping adders — pure QFT arithmetic, the
    /// diagonal-heavy shape the phase arm exists for. With the dense cap
    /// pinned below the register width and the phase arm forced on, the
    /// planner hops into the phase tandem for the whole adder; records,
    /// RNG stream and every amplitude still match the forced sparse run
    /// bit for bit.
    #[test]
    fn auto_phase_arm_matches_forced_sparse_on_draper_adders(
        n in 2usize..=4,
        xk in 0u128..16,
        yk in 0u128..16,
        superpose in proptest::bool::ANY,
        seed in 0u64..u64::MAX,
    ) {
        let (x, y) = (xk % (1 << n), yk % (1 << n));
        let mut b = CircuitBuilder::new();
        let xr = b.qreg("x", n);
        let yr = b.qreg("y", n);
        if superpose {
            b.h(xr[0]);
        }
        draper::wrapping_add(&mut b, xr.qubits(), yr.qubits()).unwrap();
        if superpose {
            // Collapse the fanned control again: a measurement *after*
            // the diagonal wall, so the draw happens off the tandem exit.
            let _ = b.measure(xr[0], Basis::Z);
        }
        let circuit = b.finish();
        let q = circuit.num_qubits();
        let compiled = CompiledCircuit::compile(&circuit).unwrap();

        let mut auto = HybridState::zeros(q).unwrap()
            .with_thresholds(2, 1)
            .with_phase(true, 1);
        let mut sparse = SparseVector::zeros(q).unwrap();
        for sim in [&mut auto as &mut dyn Simulator, &mut sparse] {
            sim.set_value(xr.qubits(), x).unwrap();
            sim.set_value(yr.qubits(), y).unwrap();
        }
        let mut rng_a = StdRng::seed_from_u64(seed);
        let mut rng_s = StdRng::seed_from_u64(seed);
        let ex_a = Simulator::run_compiled(&mut auto, &compiled, &mut rng_a).unwrap();
        let ex_s = Simulator::run_compiled(&mut sparse, &compiled, &mut rng_s).unwrap();

        prop_assert_eq!(&ex_a, &ex_s);
        prop_assert_eq!(rng_a.next_u64(), rng_s.next_u64());
        assert_amps_bitwise(
            &auto.amplitudes().unwrap(),
            &sparse_to_dense(&sparse).unwrap().amplitudes(),
            "auto+phase vs sparse (draper)",
        );
        if !superpose {
            prop_assert_eq!(
                Simulator::value(&auto, yr.qubits()).unwrap(),
                (x + y) % (1 << n)
            );
        }
        // The cap sits below the register width and the opening segment
        // is wall-to-wall rotations: the planner must have hopped into
        // (and back out of) the phase tandem, not sat sparse throughout.
        prop_assert!(auto.last_run_switches().unwrap() >= 1);
    }

    /// Random diagonal-heavy gate soups with mid-circuit measurements:
    /// the adversarial mixed workload for the three-way planner. The
    /// tandem's authoritative-map design makes this an exact bit-identity
    /// — amplitudes, records, counts and RNG position — however the soup
    /// interleaves fan-out, rotations and collapses.
    #[test]
    fn auto_phase_arm_matches_forced_sparse_on_diagonal_mixes(
        ops in proptest::collection::vec(
            (0u8..7, 0u32..5, 0u32..5, 0u32..6), 10..40),
        seed in 0u64..u64::MAX,
    ) {
        let n = 5usize;
        let circuit = diag_soup_circuit(n, &ops);
        let compiled = CompiledCircuit::compile(&circuit).unwrap();

        // Sparsity 0: every segment "outgrows", so the hop decision is
        // purely the diagonal-count rule — phase hops forced mid-run.
        let mut auto = HybridState::zeros(n).unwrap()
            .with_thresholds(2, 0)
            .with_phase(true, 1);
        let mut sparse = SparseVector::zeros(n).unwrap();
        let mut rng_a = StdRng::seed_from_u64(seed);
        let mut rng_s = StdRng::seed_from_u64(seed);
        let ex_a = Simulator::run_compiled(&mut auto, &compiled, &mut rng_a).unwrap();
        let ex_s = Simulator::run_compiled(&mut sparse, &compiled, &mut rng_s).unwrap();

        prop_assert_eq!(&ex_a, &ex_s);
        prop_assert_eq!(rng_a.next_u64(), rng_s.next_u64());
        assert_amps_bitwise(
            &auto.amplitudes().unwrap(),
            &sparse_to_dense(&sparse).unwrap().amplitudes(),
            "auto+phase vs sparse (soup)",
        );
        // The opening segment always carries a rotation, so the planner
        // hopped at least once on every generated soup.
        prop_assert!(auto.last_run_switches().unwrap() >= 1);
    }
}

/// On a reset-free MBU circuit whose every measurement is genuinely
/// random (H-preceded, `p₁ = ½`), all three exact engines — forced
/// dense, forced sparse, and the switching auto backend — agree bit for
/// bit on records, RNG position and amplitudes.
#[test]
fn auto_matches_both_forced_backends_on_a_reset_free_circuit() {
    // Gidney's logical AND on superposed inputs with measurement-based
    // uncomputation: H both inputs, compute the AND, MBU-uncompute it.
    let mut b = CircuitBuilder::new();
    let q = b.qreg("q", 3);
    b.h(q[0]);
    b.h(q[1]);
    b.ccx(q[0], q[1], q[2]);
    b.h(q[2]);
    let m = b.measure(q[2], Basis::Z);
    let (_, fix) = b.record(|bb| {
        bb.cz(q[0], q[1]);
        bb.x(q[2]);
    });
    b.emit_conditional(m, &fix);
    let circuit = b.finish();
    let compiled = CompiledCircuit::with_config(&circuit, &PassConfig::default()).unwrap();

    for seed in 0..32u64 {
        let mut auto = HybridState::zeros(3).unwrap().with_thresholds(24, 1);
        let mut dense = StateVector::zeros(3).unwrap().with_reclamation(false);
        let mut sparse = SparseVector::zeros(3).unwrap();
        let mut rng_a = StdRng::seed_from_u64(seed);
        let mut rng_d = StdRng::seed_from_u64(seed);
        let mut rng_s = StdRng::seed_from_u64(seed);
        let ex_a = Simulator::run_compiled(&mut auto, &compiled, &mut rng_a).unwrap();
        let ex_d = dense.run_compiled(&compiled, &mut rng_d).unwrap();
        let ex_s = Simulator::run_compiled(&mut sparse, &compiled, &mut rng_s).unwrap();
        assert_eq!(ex_a, ex_d, "seed {seed}");
        assert_eq!(ex_a, ex_s, "seed {seed}");
        let pos = rng_a.next_u64();
        assert_eq!(pos, rng_d.next_u64(), "seed {seed}: dense RNG position");
        assert_eq!(pos, rng_s.next_u64(), "seed {seed}: sparse RNG position");
        let a_amps = auto.amplitudes().unwrap();
        assert_amps_bitwise(&a_amps, &dense.amplitudes(), "auto vs dense");
        assert_amps_bitwise(
            &a_amps,
            &sparse_to_dense(&sparse).unwrap().amplitudes(),
            "auto vs sparse",
        );
        assert!(
            auto.last_run_switches().unwrap() >= 1,
            "seed {seed}: the H fan-out must have promoted"
        );
    }
}

/// The mixed workload of the acceptance criteria in one deterministic
/// test: a sparse-only wide MBU adder (no dense representation can
/// exist) and a narrow adder under tight thresholds where the planner
/// hops, both agreeing with the forced sparse run bit for bit.
#[test]
fn auto_covers_the_mixed_workload_shapes() {
    // Wide register: only the sparse representation can exist; the auto
    // backend must refuse to promote and still compute the right sum.
    let spec = modular::ModAddSpec::gidney_cdkpm(Uncompute::Mbu);
    let wide = modular::modadd_circuit(&spec, 64, (1u128 << 64) - 59).unwrap();
    let qw = wide.circuit.num_qubits();
    let compiled = CompiledCircuit::with_config(&wide.circuit, &PassConfig::default()).unwrap();
    let mut auto = HybridState::zeros(qw).unwrap();
    let x = (1u128 << 63) + 12345;
    let y = (1u128 << 62) + 999;
    Simulator::set_value(&mut auto, wide.x.qubits(), x).unwrap();
    Simulator::set_value(&mut auto, wide.y.qubits(), y).unwrap();
    let mut rng = StdRng::seed_from_u64(41);
    Simulator::run_compiled(&mut auto, &compiled, &mut rng).unwrap();
    assert_eq!(
        Simulator::value(&auto, wide.y.qubits()).unwrap(),
        (x + y) % ((1u128 << 64) - 59)
    );
    assert_eq!(auto.last_run_switches(), Some(0), "no dense phase exists");

    // Narrow register with tight thresholds: the planner hops and the
    // result still matches the forced sparse run bit for bit.
    let narrow = modular::modadd_circuit(&spec, 4, 13).unwrap();
    let qn = narrow.circuit.num_qubits();
    let compiled = CompiledCircuit::with_config(&narrow.circuit, &PassConfig::default()).unwrap();
    let mut auto = HybridState::zeros(qn).unwrap().with_thresholds(24, 1);
    let mut sparse = SparseVector::zeros(qn).unwrap();
    for sim in [&mut auto as &mut dyn Simulator, &mut sparse] {
        sim.set_value(narrow.x.qubits(), 9).unwrap();
        sim.set_value(narrow.y.qubits(), 11).unwrap();
    }
    let mut rng_a = StdRng::seed_from_u64(5);
    let mut rng_s = StdRng::seed_from_u64(5);
    let ex_a = Simulator::run_compiled(&mut auto, &compiled, &mut rng_a).unwrap();
    let ex_s = Simulator::run_compiled(&mut sparse, &compiled, &mut rng_s).unwrap();
    assert_eq!(ex_a, ex_s);
    assert!(auto.last_run_switches().unwrap() >= 1, "planner hopped");
    assert_eq!(
        Simulator::value(&auto, narrow.y.qubits()).unwrap(),
        (9 + 11) % 13
    );
}
