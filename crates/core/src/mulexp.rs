//! Modular multiplication and exponentiation built from (controlled)
//! modular constant adders — the application the paper's introduction
//! motivates and its conclusion leaves as future work.
//!
//! The constructions are the standard Beauregard/VBE ladder:
//!
//! * [`modmul_const_accum`]: `|x⟩|acc⟩ ↦ |x⟩|acc + a·x mod p⟩` as `n`
//!   controlled modular constant additions (constant `a·2^i mod p`
//!   controlled on `x_i`);
//! * [`modmul_const_inplace`]: `|x⟩ ↦ |a·x mod p⟩` by
//!   accumulate–swap–un-accumulate with `a^{-1} mod p` (subtraction is
//!   addition of the negated constant, so no circuit adjoints are needed —
//!   MBU-friendly);
//! * [`controlled_modmul_const_inplace`] and [`modexp`]: the controlled
//!   ladder of Shor's algorithm, `|e⟩|1⟩ ↦ |e⟩|g^e mod p⟩`.
//!
//! Every layer inherits the [`Uncompute`](crate::Uncompute) choice of its
//! [`ModAddSpec`], so the paper's MBU savings propagate multiplicatively
//! into cryptanalysis-scale circuits.

use mbu_bitstring::BitString;
use mbu_circuit::{Basis, Circuit, CircuitBuilder, QubitId, Register};

use crate::modular::{self, ModAddSpec};
use crate::util::{const_bits, expect_width, nonempty};
use crate::ArithError;

/// `a·b mod p` without overflow for `p < 2^64`.
///
/// # Panics
///
/// Panics if `p` is zero or `p ≥ 2^64`.
#[must_use]
pub fn mod_mul(a: u128, b: u128, p: u128) -> u128 {
    assert!(p > 0 && p < (1u128 << 64), "modulus must be in (0, 2^64)");
    (a % p) * (b % p) % p
}

/// `g^e mod p` by square and multiply, for `p < 2^64`.
///
/// # Panics
///
/// Panics if `p` is zero or `p ≥ 2^64`.
#[must_use]
pub fn mod_pow(g: u128, mut e: u128, p: u128) -> u128 {
    let mut base = g % p;
    let mut acc = 1 % p;
    while e > 0 {
        if e & 1 == 1 {
            acc = mod_mul(acc, base, p);
        }
        base = mod_mul(base, base, p);
        e >>= 1;
    }
    acc
}

/// The multiplicative inverse of `a` modulo `p` (extended Euclid).
///
/// # Errors
///
/// Returns [`ArithError::NotInvertible`] when `gcd(a, p) ≠ 1`.
///
/// # Panics
///
/// Panics if `p` is zero or `p ≥ 2^63`.
pub fn mod_inverse(a: u128, p: u128) -> Result<u128, ArithError> {
    assert!(p > 0 && p < (1u128 << 63), "modulus must be in (0, 2^63)");
    let (mut old_r, mut r) = (a as i128 % p as i128, p as i128);
    let (mut old_s, mut s) = (1i128, 0i128);
    while r != 0 {
        let q = old_r / r;
        (old_r, r) = (r, old_r - q * r);
        (old_s, s) = (s, old_s - q * s);
    }
    if old_r != 1 {
        return Err(ArithError::NotInvertible {
            value: a,
            modulus: p,
        });
    }
    Ok(old_s.rem_euclid(p as i128) as u128)
}

/// Emits `|x⟩_n |acc⟩_{n+1} ↦ |x⟩_n |(acc + a·x) mod p⟩_{n+1}` for a
/// classical `a`, assuming `acc < p`.
///
/// One controlled modular constant addition (constant `a·2^i mod p`) per
/// bit of `x`.
///
/// # Errors
///
/// Returns [`ArithError`] on width mismatches or invalid constants.
pub fn modmul_const_accum(
    b: &mut CircuitBuilder,
    spec: &ModAddSpec,
    x: &[QubitId],
    acc: &[QubitId],
    a: u128,
    p: u128,
) -> Result<(), ArithError> {
    let n = nonempty("modular multiply-accumulate", x)?;
    expect_width("modular multiply-accumulate target", acc, n + 1)?;
    if p == 0 || (n < 128 && p > (1u128 << n)) {
        return Err(ArithError::ConstantOutOfRange {
            context: "modular multiply-accumulate",
            constraint: "modulus must satisfy 0 < p ≤ 2^n",
        });
    }
    let p_bits = const_bits("modular multiply-accumulate", p, n)?;
    let mut shifted = a % p;
    for &x_bit in x.iter().take(n) {
        let c_bits = BitString::from_u128(shifted, n);
        modular::controlled_modadd_const(b, spec, x_bit, &c_bits, acc, &p_bits)?;
        shifted = shifted * 2 % p;
    }
    Ok(())
}

/// Emits the in-place modular multiplication
/// `|x⟩_{n+1} ↦ |a·x mod p⟩_{n+1}` for `gcd(a, p) = 1` and `x < p`
/// (top qubit `|0⟩`).
///
/// Accumulates `a·x` into a borrowed register, swaps it with `x`, then
/// clears the borrowed register by accumulating `−a^{-1}` times the new
/// value — subtraction realised as addition of `p − c`, so the whole
/// circuit runs forward and stays MBU-compatible.
///
/// # Errors
///
/// Returns [`ArithError::NotInvertible`] when `gcd(a, p) ≠ 1`, or width
/// errors.
pub fn modmul_const_inplace(
    b: &mut CircuitBuilder,
    spec: &ModAddSpec,
    x: &[QubitId],
    a: u128,
    p: u128,
) -> Result<(), ArithError> {
    let m = nonempty("in-place modular multiplication", x)?;
    if m < 2 {
        return Err(ArithError::EmptyRegister {
            context: "in-place modular multiplication",
        });
    }
    let n = m - 1;
    let a_inv = mod_inverse(a % p, p)?;
    let acc = b.ancilla_reg(n + 1);
    let x_lo = &x[..n];
    // acc ← a·x.
    modmul_const_accum(b, spec, x_lo, acc.qubits(), a, p)?;
    // x ↔ acc (top qubits are both |0⟩).
    for i in 0..n {
        b.swap(x[i], acc[i]);
    }
    // acc ← acc − a⁻¹·x = 0, as addition of the negated constants.
    let neg_a_inv = (p - a_inv % p) % p;
    modmul_const_accum(b, spec, x_lo, acc.qubits(), neg_a_inv, p)?;
    b.release_ancilla_reg(acc);
    Ok(())
}

/// Emits the controlled in-place modular multiplication
/// `|c⟩|x⟩_{n+1} ↦ |c⟩|(a^c · x) mod p⟩_{n+1}` — the `C-U_a` of Shor's
/// algorithm.
///
/// Each controlled-controlled modular addition is realised with a
/// temporary logical AND of `(control, x_i)` that is uncomputed by
/// measurement; the register swap becomes a Fredkin ladder.
///
/// # Errors
///
/// Returns [`ArithError::NotInvertible`] when `gcd(a, p) ≠ 1`, or width
/// errors.
pub fn controlled_modmul_const_inplace(
    b: &mut CircuitBuilder,
    spec: &ModAddSpec,
    control: QubitId,
    x: &[QubitId],
    a: u128,
    p: u128,
) -> Result<(), ArithError> {
    let m = nonempty("controlled in-place modular multiplication", x)?;
    if m < 2 {
        return Err(ArithError::EmptyRegister {
            context: "controlled in-place modular multiplication",
        });
    }
    let n = m - 1;
    let a_inv = mod_inverse(a % p, p)?;
    let p_bits = const_bits("controlled in-place modular multiplication", p, n)?;
    let acc = b.ancilla_reg(n + 1);
    let x_lo = &x[..n];

    let ladder = |b: &mut CircuitBuilder, mult: u128| -> Result<(), ArithError> {
        let mut shifted = mult % p;
        let and_bit = b.ancilla();
        for &x_bit in x_lo {
            let c_bits = BitString::from_u128(shifted, n);
            // and_bit ← control · x_i (temporary logical AND).
            b.ccx(control, x_bit, and_bit);
            modular::controlled_modadd_const(b, spec, and_bit, &c_bits, acc.qubits(), &p_bits)?;
            // Measurement-based uncompute of the AND.
            b.h(and_bit);
            let outcome = b.measure(and_bit, Basis::Z);
            let (_, fix) = b.record(|b| b.cz(control, x_bit));
            b.emit_conditional(outcome, &fix);
            b.reset(and_bit);
            shifted = shifted * 2 % p;
        }
        b.release_ancilla(and_bit);
        Ok(())
    };

    // acc ← control · a·x.
    ladder(b, a)?;
    // Controlled swap x ↔ acc.
    for i in 0..n {
        b.cx(acc[i], x_lo[i]);
        b.ccx(control, x_lo[i], acc[i]);
        b.cx(acc[i], x_lo[i]);
    }
    // acc ← acc − control · a⁻¹·x = 0.
    ladder(b, (p - a_inv % p) % p)?;
    b.release_ancilla_reg(acc);
    Ok(())
}

/// Emits the modular exponentiation ladder
/// `|e⟩_k |w⟩_{n+1} ↦ |e⟩_k |w · g^e mod p⟩_{n+1}` for `gcd(g, p) = 1`
/// (Shor's workload; start `w = 1`).
///
/// # Errors
///
/// Returns [`ArithError::NotInvertible`] when `gcd(g, p) ≠ 1`, or width
/// errors.
pub fn modexp(
    b: &mut CircuitBuilder,
    spec: &ModAddSpec,
    exponent: &[QubitId],
    work: &[QubitId],
    g: u128,
    p: u128,
) -> Result<(), ArithError> {
    nonempty("modular exponentiation exponent", exponent)?;
    let mut factor = g % p;
    for &e_bit in exponent {
        controlled_modmul_const_inplace(b, spec, e_bit, work, factor, p)?;
        factor = mod_mul(factor, factor, p);
    }
    Ok(())
}

/// A modular-exponentiation circuit plus its registers.
#[derive(Clone, Debug)]
pub struct ModExp {
    /// The full circuit.
    pub circuit: Circuit,
    /// The exponent register (k qubits).
    pub exponent: Register,
    /// The work register (n+1 qubits; prepare `|1⟩`, read `g^e mod p`).
    pub work: Register,
}

/// Builds a standalone modular-exponentiation circuit with a `k`-qubit
/// exponent and an `n`-bit modulus.
///
/// # Errors
///
/// Returns [`ArithError`] for invalid `g`, `p` or sizes.
///
/// # Examples
///
/// ```
/// use mbu_arith::{modular::ModAddSpec, mulexp, Uncompute};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let spec = ModAddSpec::cdkpm(Uncompute::Mbu);
/// let layout = mulexp::modexp_circuit(&spec, 2, 4, 2, 15)?;
/// assert!(layout.circuit.counts().toffoli > 0);
/// # Ok(())
/// # }
/// ```
pub fn modexp_circuit(
    spec: &ModAddSpec,
    k: usize,
    n: usize,
    g: u128,
    p: u128,
) -> Result<ModExp, ArithError> {
    let mut b = CircuitBuilder::new();
    let exponent = b.qreg("e", k);
    let work = b.qreg("w", n + 1);
    modexp(&mut b, spec, exponent.qubits(), work.qubits(), g, p)?;
    Ok(ModExp {
        circuit: b.finish(),
        exponent,
        work,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Uncompute;
    use mbu_sim::BasisTracker;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run(circuit: &Circuit, inputs: &[(&[QubitId], u128)], out: &[QubitId], seed: u64) -> u128 {
        circuit.validate().unwrap();
        let mut sim = BasisTracker::zeros(circuit.num_qubits());
        for (reg, v) in inputs {
            sim.set_value(reg, *v).unwrap();
        }
        let mut rng = StdRng::seed_from_u64(seed);
        sim.run(circuit, &mut rng).unwrap();
        assert!(sim.global_phase().is_zero());
        sim.value(out).unwrap()
    }

    #[test]
    fn classical_helpers() {
        assert_eq!(mod_mul(6, 7, 13), 3);
        assert_eq!(mod_pow(2, 10, 1000), 24);
        assert_eq!(mod_pow(7, 0, 13), 1);
        assert_eq!(mod_inverse(3, 7).unwrap(), 5);
        assert!(matches!(
            mod_inverse(6, 9),
            Err(ArithError::NotInvertible { .. })
        ));
    }

    #[test]
    fn accumulate_matches_reference() {
        let n = 3usize;
        let p = 7u128;
        let spec = ModAddSpec::cdkpm(Uncompute::Mbu);
        for a in [1u128, 3, 5] {
            for x in 0..p {
                for acc0 in [0u128, 4] {
                    let mut b = CircuitBuilder::new();
                    let xr = b.qreg("x", n);
                    let ar = b.qreg("acc", n + 1);
                    modmul_const_accum(&mut b, &spec, xr.qubits(), ar.qubits(), a, p).unwrap();
                    let c = b.finish();
                    let got = run(
                        &c,
                        &[(xr.qubits(), x), (ar.qubits(), acc0)],
                        ar.qubits(),
                        (a * 7 + x) as u64,
                    );
                    assert_eq!(got, (acc0 + a * x) % p, "{acc0} + {a}*{x} mod {p}");
                }
            }
        }
    }

    #[test]
    fn inplace_multiplication_exhaustive() {
        let n = 3usize;
        let p = 7u128;
        let spec = ModAddSpec::cdkpm(Uncompute::Mbu);
        for a in [1u128, 2, 3, 4, 5, 6] {
            for x in 0..p {
                let mut b = CircuitBuilder::new();
                let xr = b.qreg("x", n + 1);
                modmul_const_inplace(&mut b, &spec, xr.qubits(), a, p).unwrap();
                let c = b.finish();
                let got = run(&c, &[(xr.qubits(), x)], xr.qubits(), (a * 13 + x) as u64);
                assert_eq!(got, a * x % p, "{a}*{x} mod {p}");
            }
        }
    }

    #[test]
    fn inplace_multiplication_restores_ancillas() {
        let n = 4usize;
        let p = 13u128;
        let spec = ModAddSpec::gidney_cdkpm(Uncompute::Mbu);
        let mut b = CircuitBuilder::new();
        let xr = b.qreg("x", n + 1);
        modmul_const_inplace(&mut b, &spec, xr.qubits(), 5, p).unwrap();
        let c = b.finish();
        for seed in 0..4 {
            let mut sim = BasisTracker::zeros(c.num_qubits());
            sim.set_value(xr.qubits(), 9).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            sim.run(&c, &mut rng).unwrap();
            assert_eq!(sim.value(xr.qubits()).unwrap(), 5 * 9 % p);
            // Every non-data qubit must be back to |0⟩.
            for q in (xr.len() as u32..c.num_qubits() as u32).map(mbu_circuit::QubitId) {
                assert!(!sim.bit(q).unwrap(), "ancilla {q} dirty");
            }
        }
    }

    #[test]
    fn controlled_inplace_multiplication_truth_table() {
        let n = 3usize;
        let p = 7u128;
        let spec = ModAddSpec::cdkpm(Uncompute::Mbu);
        for ctrl in [0u128, 1] {
            for a in [2u128, 5] {
                for x in [1u128, 3, 6] {
                    let mut b = CircuitBuilder::new();
                    let c = b.qubit();
                    let xr = b.qreg("x", n + 1);
                    controlled_modmul_const_inplace(&mut b, &spec, c, xr.qubits(), a, p).unwrap();
                    let circ = b.finish();
                    let got = run(
                        &circ,
                        &[(&[c], ctrl), (xr.qubits(), x)],
                        xr.qubits(),
                        (a * 17 + x + ctrl) as u64,
                    );
                    let expected = if ctrl == 1 { a * x % p } else { x };
                    assert_eq!(got, expected, "c={ctrl} {a}*{x} mod {p}");
                }
            }
        }
    }

    #[test]
    fn modexp_matches_mod_pow() {
        let n = 3usize;
        let p = 7u128;
        let g = 3u128;
        let k = 3usize;
        let spec = ModAddSpec::cdkpm(Uncompute::Mbu);
        for e in 0..(1u128 << k) {
            let layout = modexp_circuit(&spec, k, n, g, p).unwrap();
            let got = run(
                &layout.circuit,
                &[(layout.exponent.qubits(), e), (layout.work.qubits(), 1)],
                layout.work.qubits(),
                e as u64,
            );
            assert_eq!(got, mod_pow(g, e, p), "{g}^{e} mod {p}");
        }
    }

    #[test]
    fn mbu_savings_propagate_to_modexp() {
        let n = 6usize;
        let p = 61u128;
        let plain = modexp_circuit(&ModAddSpec::cdkpm(Uncompute::Unitary), 4, n, 2, p)
            .unwrap()
            .circuit
            .expected_counts()
            .toffoli;
        let with_mbu = modexp_circuit(&ModAddSpec::cdkpm(Uncompute::Mbu), 4, n, 2, p)
            .unwrap()
            .circuit
            .expected_counts()
            .toffoli;
        let saving = 1.0 - with_mbu / plain;
        assert!(saving > 0.05, "saving {saving}");
    }
}
