//! Quantum modular addition (§3) and its MBU-optimised variants (§4).
//!
//! The VBE architecture (Prop 3.2) assembles a modular adder from four
//! subroutine slots:
//!
//! 1. `QADD` — plain addition of the addend into the target;
//! 2. `QCOMP(p)` — compare the sum against the modulus, flag `sum ≥ p`;
//! 3. `C-QSUB(p)` — subtract `p` under that flag;
//! 4. `Q′COMP` — uncompute the flag by comparing the reduced sum with the
//!    addend.
//!
//! Each slot independently picks an adder family through [`ModAddSpec`],
//! reproducing every row of the paper's Table 1 (including the
//! Gidney+CDKPM hybrid of Thm 3.6); setting [`Uncompute::Mbu`] replaces
//! step 4 with the measurement-based protocol of Lemma 4.1, halving its
//! expected cost (Thms 4.2–4.5).
//!
//! The module also provides controlled modular addition (Props 3.9–3.11 /
//! Thms 4.7–4.9), modular addition by a constant in the VBE (Thm 3.14 /
//! 4.10) and Takahashi (Prop 3.15 / Thm 4.11) architectures, and controlled
//! modular addition by a constant (Prop 3.18 / Thm 4.12). The QFT-based
//! Beauregard circuits live in [`beauregard`].

pub mod beauregard;

use mbu_bitstring::BitString;
use mbu_circuit::{Circuit, CircuitBuilder, QubitId, Register};

use crate::util::{const_bits, expect_width, nonempty};
use crate::{adders, compare, mbu, AdderKind, ArithError, Uncompute};

/// Which adder family backs each slot of the VBE modular-adder
/// architecture, and how the comparison flag is uncomputed.
///
/// # Examples
///
/// ```
/// use mbu_arith::{modular::ModAddSpec, AdderKind, Uncompute};
///
/// // Theorem 3.6: Gidney for the wide adds, CDKPM for the constant work.
/// let spec = ModAddSpec::gidney_cdkpm(Uncompute::Mbu);
/// assert_eq!(spec.adder, AdderKind::Gidney);
/// assert_eq!(spec.sub_p, AdderKind::Cdkpm);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ModAddSpec {
    /// Slot 1: the plain (or controlled) adder.
    pub adder: AdderKind,
    /// Slot 2: the constant comparator against `p`.
    pub comp_p: AdderKind,
    /// Slot 3: the controlled subtraction of `p`.
    pub sub_p: AdderKind,
    /// Slot 4: the flag-uncomputing comparator.
    pub comp_back: AdderKind,
    /// Use the two-adder comparator of Prop 2.25 for slot 4 instead of a
    /// half-subtractor comparator — the "(5 adder) VBE" row of Table 1.
    pub full_final_comparator: bool,
    /// Unitary uncomputation (§3) or MBU (§4).
    pub uncompute: Uncompute,
}

impl ModAddSpec {
    /// Every slot uses `kind`, with a half-subtractor final comparator.
    #[must_use]
    pub fn uniform(kind: AdderKind, uncompute: Uncompute) -> Self {
        Self {
            adder: kind,
            comp_p: kind,
            sub_p: kind,
            comp_back: kind,
            full_final_comparator: false,
            uncompute,
        }
    }

    /// The original five-adder VBE modular adder \[VBE96\]: slot 4 is a full
    /// subtract-compare-add (Prop 2.25), costing two plain adders.
    #[must_use]
    pub fn vbe5(uncompute: Uncompute) -> Self {
        Self {
            full_final_comparator: true,
            ..Self::uniform(AdderKind::Vbe, uncompute)
        }
    }

    /// The four-adder VBE modular adder: slot 4 is the VBE carry-chain
    /// comparator.
    #[must_use]
    pub fn vbe4(uncompute: Uncompute) -> Self {
        Self::uniform(AdderKind::Vbe, uncompute)
    }

    /// Prop 3.4: all CDKPM.
    #[must_use]
    pub fn cdkpm(uncompute: Uncompute) -> Self {
        Self::uniform(AdderKind::Cdkpm, uncompute)
    }

    /// Prop 3.5: all Gidney.
    #[must_use]
    pub fn gidney(uncompute: Uncompute) -> Self {
        Self::uniform(AdderKind::Gidney, uncompute)
    }

    /// Theorem 3.6: Gidney for `QADD`/`Q′COMP` (few Toffolis), CDKPM for
    /// the constant comparison and subtraction (few ancillas).
    #[must_use]
    pub fn gidney_cdkpm(uncompute: Uncompute) -> Self {
        Self {
            adder: AdderKind::Gidney,
            comp_p: AdderKind::Cdkpm,
            sub_p: AdderKind::Cdkpm,
            comp_back: AdderKind::Gidney,
            full_final_comparator: false,
            uncompute,
        }
    }
}

pub(crate) fn check_modulus(
    context: &'static str,
    p: &BitString,
    n: usize,
) -> Result<BitString, ArithError> {
    for i in n..p.width() {
        if p.bit(i) {
            return Err(ArithError::ConstantOutOfRange {
                context,
                constraint: "modulus must fit in n bits",
            });
        }
    }
    if p.hamming_weight() == 0 {
        return Err(ArithError::ConstantOutOfRange {
            context,
            constraint: "modulus must be nonzero",
        });
    }
    Ok(p.resized(n))
}

/// Emits `|x⟩_n |y⟩_{n+1} ↦ |x⟩_n |(x + y) mod p⟩_{n+1}` (Definition 3.1 /
/// Prop 3.2), assuming `x, y < p` and `y`'s top qubit starts `|0⟩`.
///
/// One flag ancilla is borrowed and restored; with [`Uncompute::Mbu`] its
/// uncomputation uses Lemma 4.1 (Thms 4.2–4.5).
///
/// # Errors
///
/// Returns [`ArithError`] on width mismatches or an invalid modulus.
pub fn modadd(
    b: &mut CircuitBuilder,
    spec: &ModAddSpec,
    x: &[QubitId],
    y: &[QubitId],
    p: &BitString,
) -> Result<(), ArithError> {
    let n = nonempty("modular adder", x)?;
    expect_width("modular adder target", y, n + 1)?;
    let p_bits = check_modulus("modular adder", p, n)?;

    // 1. y ← x + y (exact, n+1 bits).
    adders::add(b, spec.adder, x, y)?;
    // 2. Flag t = 1[x + y ≥ p].
    let t = b.ancilla();
    compare::compare_lt_const(b, spec.comp_p, &p_bits, y, t)?;
    b.x(t);
    // 3. Subtract p when flagged.
    adders::controlled_wrapping_sub_const(b, spec.sub_p, t, &p_bits, y)?;
    // 4. Uncompute t: 1[x + y ≥ p] ≡ 1[x > (x + y) mod p] for y < p.
    let (res, oracle) = b.record(|b| final_comparator(b, spec, None, x, y, t));
    res?;
    match spec.uncompute {
        Uncompute::Unitary => b.emit(&oracle),
        Uncompute::Mbu => {
            mbu::uncompute_bit(b, t, &oracle);
        }
    }
    b.release_ancilla(t);
    Ok(())
}

/// Emits `|c⟩ |x⟩_n |y⟩_{n+1} ↦ |c⟩ |x⟩_n |(c·x + y) mod p⟩_{n+1}`
/// (Definition 3.8 / Prop 3.9; MBU per Thm 4.7).
///
/// Only the first adder and the final comparator carry the control — the
/// middle two slots are self-neutralising when `c = 0`.
///
/// # Errors
///
/// Returns [`ArithError`] on width mismatches or an invalid modulus.
pub fn controlled_modadd(
    b: &mut CircuitBuilder,
    spec: &ModAddSpec,
    control: QubitId,
    x: &[QubitId],
    y: &[QubitId],
    p: &BitString,
) -> Result<(), ArithError> {
    let n = nonempty("controlled modular adder", x)?;
    expect_width("controlled modular adder target", y, n + 1)?;
    let p_bits = check_modulus("controlled modular adder", p, n)?;

    adders::controlled_add(b, spec.adder, control, x, y)?;
    let t = b.ancilla();
    compare::compare_lt_const(b, spec.comp_p, &p_bits, y, t)?;
    b.x(t);
    adders::controlled_wrapping_sub_const(b, spec.sub_p, t, &p_bits, y)?;
    let (res, oracle) = b.record(|b| final_comparator(b, spec, Some(control), x, y, t));
    res?;
    match spec.uncompute {
        Uncompute::Unitary => b.emit(&oracle),
        Uncompute::Mbu => {
            mbu::uncompute_bit(b, t, &oracle);
        }
    }
    b.release_ancilla(t);
    Ok(())
}

/// The slot-4 oracle: `t ⊕= [control·] 1[x > y mod p]`, either as a
/// half-subtractor comparator on the low `n` bits (the reduced sum's top
/// qubit is `|0⟩`) or as Prop 2.25's subtract-copy-add.
fn final_comparator(
    b: &mut CircuitBuilder,
    spec: &ModAddSpec,
    control: Option<QubitId>,
    x: &[QubitId],
    y: &[QubitId],
    t: QubitId,
) -> Result<(), ArithError> {
    let n = x.len();
    if spec.full_final_comparator {
        adders::sub(b, spec.comp_back, x, y)?;
        match control {
            None => b.cx(y[n], t),
            Some(c) => b.ccx(c, y[n], t),
        }
        adders::add(b, spec.comp_back, x, y)
    } else {
        match control {
            None => compare::compare_gt(b, spec.comp_back, x, &y[..n], t),
            Some(c) => compare::controlled_compare_gt(b, spec.comp_back, c, x, &y[..n], t),
        }
    }
}

/// Emits `|x⟩_{n+1} ↦ |(x + a) mod p⟩_{n+1}` for classical `a < p`
/// (Definition 3.12) in the VBE architecture (Thm 3.14; MBU per Thm 4.10).
///
/// # Errors
///
/// Returns [`ArithError`] on width mismatches or invalid constants.
pub fn modadd_const(
    b: &mut CircuitBuilder,
    spec: &ModAddSpec,
    a: &BitString,
    x: &[QubitId],
    p: &BitString,
) -> Result<(), ArithError> {
    let m = nonempty("constant modular adder", x)?;
    if m < 2 {
        return Err(ArithError::EmptyRegister {
            context: "constant modular adder",
        });
    }
    let n = m - 1;
    let p_bits = check_modulus("constant modular adder", p, n)?;
    let a_bits = check_constant_below(a, &p_bits, "constant modular adder")?;

    adders::add_const(b, spec.adder, &a_bits, x)?;
    let t = b.ancilla();
    compare::compare_lt_const(b, spec.comp_p, &p_bits, x, t)?;
    b.x(t);
    adders::controlled_wrapping_sub_const(b, spec.sub_p, t, &p_bits, x)?;
    // Uncompute: 1[x + a ≥ p] ≡ 1[(x + a) mod p < a].
    let (res, oracle) = b.record(|b| compare::compare_lt_const(b, spec.comp_back, &a_bits, x, t));
    res?;
    match spec.uncompute {
        Uncompute::Unitary => b.emit(&oracle),
        Uncompute::Mbu => {
            mbu::uncompute_bit(b, t, &oracle);
        }
    }
    b.release_ancilla(t);
    Ok(())
}

/// Emits `|x⟩_{n+1} ↦ |(x + a) mod p⟩_{n+1}` in the Takahashi architecture
/// (Prop 3.15; MBU per Thm 4.11): subtract `p − a`, conditionally re-add
/// `p` on the sign bit, uncompute the sign bit with one constant
/// comparator.
///
/// Uses only three subroutines — one fewer than the VBE architecture.
///
/// # Errors
///
/// Returns [`ArithError`] on width mismatches or invalid constants.
pub fn modadd_const_takahashi(
    b: &mut CircuitBuilder,
    kind: AdderKind,
    uncompute: Uncompute,
    a: &BitString,
    x: &[QubitId],
    p: &BitString,
) -> Result<(), ArithError> {
    let m = nonempty("Takahashi constant modular adder", x)?;
    if m < 2 {
        return Err(ArithError::EmptyRegister {
            context: "Takahashi constant modular adder",
        });
    }
    let n = m - 1;
    let p_bits = check_modulus("Takahashi constant modular adder", p, n)?;
    let a_bits = check_constant_below(a, &p_bits, "Takahashi constant modular adder")?;
    // p − a, an n-bit constant (0 < p − a ≤ p).
    let p_minus_a = p_bits.sub(&a_bits).resized(n);

    // 1. x ← x − (p − a) mod 2^{n+1}; the top bit becomes 1[x + a < p].
    adders::wrapping_sub_const(b, kind, &p_minus_a, x)?;
    let sign = x[n];
    let low = &x[..n];
    // 2. Re-add p to the low n bits when the sign is set.
    adders::controlled_wrapping_add_const(b, kind, sign, &p_bits, low)?;
    // 3. Uncompute the sign: 1[x + a < p] ≡ ¬1[(x + a) mod p < a].
    let (res, oracle) = b.record(|b| -> Result<(), ArithError> {
        compare::compare_lt_const(b, kind, &a_bits, low, sign)?;
        b.x(sign);
        Ok(())
    });
    res?;
    match uncompute {
        Uncompute::Unitary => b.emit(&oracle),
        Uncompute::Mbu => {
            mbu::uncompute_bit(b, sign, &oracle);
        }
    }
    Ok(())
}

/// Emits `|c⟩ |x⟩_{n+1} ↦ |c⟩ |(x + c·a) mod p⟩_{n+1}` (Definition 3.16)
/// in the VBE architecture (Prop 3.18; MBU per Thm 4.12).
///
/// # Errors
///
/// Returns [`ArithError`] on width mismatches or invalid constants.
pub fn controlled_modadd_const(
    b: &mut CircuitBuilder,
    spec: &ModAddSpec,
    control: QubitId,
    a: &BitString,
    x: &[QubitId],
    p: &BitString,
) -> Result<(), ArithError> {
    let m = nonempty("controlled constant modular adder", x)?;
    if m < 2 {
        return Err(ArithError::EmptyRegister {
            context: "controlled constant modular adder",
        });
    }
    let n = m - 1;
    let p_bits = check_modulus("controlled constant modular adder", p, n)?;
    let a_bits = check_constant_below(a, &p_bits, "controlled constant modular adder")?;

    adders::controlled_add_const(b, spec.adder, control, &a_bits, x)?;
    let t = b.ancilla();
    compare::compare_lt_const(b, spec.comp_p, &p_bits, x, t)?;
    b.x(t);
    adders::controlled_wrapping_sub_const(b, spec.sub_p, t, &p_bits, x)?;
    // Uncompute: 1[x + c·a ≥ p] ≡ 1[(x + c·a) mod p < c·a].
    let (res, oracle) = b.record(|b| {
        compare::controlled_compare_lt_const(b, spec.comp_back, control, &a_bits, x, t)
    });
    res?;
    match spec.uncompute {
        Uncompute::Unitary => b.emit(&oracle),
        Uncompute::Mbu => {
            mbu::uncompute_bit(b, t, &oracle);
        }
    }
    b.release_ancilla(t);
    Ok(())
}

/// Emits the out-of-place modular reduction of Remark 3.3:
/// `|x⟩_{n+1} |0⟩_{n+1} ↦ |x⟩_{n+1} |x mod p⟩_{n+1}` for `x < 2p`.
///
/// Structure: copy `x` into the output, flag `out ≥ p` with a constant
/// comparator, subtract `p` under the flag, then uncompute the flag by
/// comparing the reduced output against the preserved input
/// (`1[x ≥ p] ≡ 1[x mod p < x]` for `0 < p`); the uncomputation is
/// MBU-eligible like every other flag in this module.
///
/// # Errors
///
/// Returns [`ArithError`] on width mismatches or an invalid modulus.
pub fn mod_reduce(
    b: &mut CircuitBuilder,
    kind: AdderKind,
    uncompute: Uncompute,
    x: &[QubitId],
    out: &[QubitId],
    p: &BitString,
) -> Result<(), ArithError> {
    let m = nonempty("modular reduction", x)?;
    expect_width("modular reduction output", out, m)?;
    if m < 2 {
        return Err(ArithError::EmptyRegister {
            context: "modular reduction",
        });
    }
    let n = m - 1;
    let p_bits = check_modulus("modular reduction", p, n)?;

    for (xi, oi) in x.iter().zip(out.iter()) {
        b.cx(*xi, *oi);
    }
    let t = b.ancilla();
    compare::compare_lt_const(b, kind, &p_bits, out, t)?;
    b.x(t);
    adders::controlled_wrapping_sub_const(b, kind, t, &p_bits, out)?;
    // Uncompute: t = 1[x >= p] = 1[out < x] (out = x − t·p, p > 0).
    let (res, oracle) = b.record(|b| compare::compare_gt(b, kind, x, out, t));
    res?;
    match uncompute {
        Uncompute::Unitary => b.emit(&oracle),
        Uncompute::Mbu => {
            mbu::uncompute_bit(b, t, &oracle);
        }
    }
    b.release_ancilla(t);
    Ok(())
}

pub(crate) fn check_constant_below(
    a: &BitString,
    p: &BitString,
    context: &'static str,
) -> Result<BitString, ArithError> {
    let n = p.width();
    for i in n..a.width() {
        if a.bit(i) {
            return Err(ArithError::ConstantOutOfRange {
                context,
                constraint: "addend constant must fit in n bits",
            });
        }
    }
    let a_bits = a.resized(n);
    if a_bits.cmp_value(p) != std::cmp::Ordering::Less {
        return Err(ArithError::ConstantOutOfRange {
            context,
            constraint: "addend constant must be smaller than the modulus",
        });
    }
    Ok(a_bits)
}

/// A complete modular-adder circuit plus its registers.
#[derive(Clone, Debug)]
pub struct ModAdd {
    /// The full circuit.
    pub circuit: Circuit,
    /// The addend register `x` (n qubits).
    pub x: Register,
    /// The target register `y` (n+1 qubits; top starts and ends `|0⟩`).
    pub y: Register,
    /// Optional control qubit.
    pub control: Option<QubitId>,
    /// The modulus.
    pub p: BitString,
}

/// Builds a standalone modular adder.
///
/// # Errors
///
/// Returns [`ArithError`] for `n = 0` or an invalid modulus.
///
/// # Examples
///
/// ```
/// use mbu_arith::{modular, Uncompute};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let spec = modular::ModAddSpec::gidney_cdkpm(Uncompute::Unitary);
/// let layout = modular::modadd_circuit(&spec, 8, 251)?;
/// // Thm 3.6: about 6n Toffolis.
/// assert!((layout.circuit.counts().toffoli as i64 - 48).abs() <= 8);
/// # Ok(())
/// # }
/// ```
pub fn modadd_circuit(spec: &ModAddSpec, n: usize, p: u128) -> Result<ModAdd, ArithError> {
    let p_bits = const_bits("modular adder", p, n.max(1))?;
    let mut b = CircuitBuilder::new();
    let x = b.qreg("x", n);
    let y = b.qreg("y", n + 1);
    modadd(&mut b, spec, x.qubits(), y.qubits(), &p_bits)?;
    Ok(ModAdd {
        circuit: b.finish(),
        x,
        y,
        control: None,
        p: p_bits,
    })
}

/// Builds a chain of `stages` sequential modular additions of `x` into
/// `y`, retiring the ancilla pool between stages so every stage allocates
/// *fresh* garbage qubits instead of recycling released ones.
///
/// This is the composition profile where measurement-based uncomputation's
/// qubit savings become simulation savings: with [`Uncompute::Mbu`] each
/// stage's garbage is measured mid-circuit and never touched again, so the
/// compiled engine's reclamation pass (`Instr::Drop` in `mbu-circuit`)
/// lets a compacting backend release stage `k`'s ancillas before stage
/// `k+1`'s materialise — the live state stays at one stage's width while
/// the circuit itself is `stages` wide in ancillas. With
/// [`Uncompute::Unitary`] nothing is measured, no drop is ever emitted,
/// and the simulator must hold every ancilla to the end — the paper's §3
/// vs §4 asymmetry, visible as peak memory.
///
/// # Errors
///
/// Returns [`ArithError`] for `n = 0` or an invalid modulus.
pub fn modadd_chain_circuit(
    spec: &ModAddSpec,
    n: usize,
    p: u128,
    stages: usize,
) -> Result<ModAdd, ArithError> {
    let p_bits = const_bits("modular adder chain", p, n.max(1))?;
    let mut b = CircuitBuilder::new();
    let x = b.qreg("x", n);
    let y = b.qreg("y", n + 1);
    for _ in 0..stages {
        modadd(&mut b, spec, x.qubits(), y.qubits(), &p_bits)?;
        b.retire_ancillas();
    }
    Ok(ModAdd {
        circuit: b.finish(),
        x,
        y,
        control: None,
        p: p_bits,
    })
}

/// Builds a standalone controlled modular adder.
///
/// # Errors
///
/// Returns [`ArithError`] for `n = 0` or an invalid modulus.
pub fn controlled_modadd_circuit(
    spec: &ModAddSpec,
    n: usize,
    p: u128,
) -> Result<ModAdd, ArithError> {
    let p_bits = const_bits("controlled modular adder", p, n.max(1))?;
    let mut b = CircuitBuilder::new();
    let control = b.qubit();
    let x = b.qreg("x", n);
    let y = b.qreg("y", n + 1);
    controlled_modadd(&mut b, spec, control, x.qubits(), y.qubits(), &p_bits)?;
    Ok(ModAdd {
        circuit: b.finish(),
        x,
        y,
        control: Some(control),
        p: p_bits,
    })
}

/// A constant modular-adder circuit plus its register.
#[derive(Clone, Debug)]
pub struct ConstModAdd {
    /// The full circuit.
    pub circuit: Circuit,
    /// The in/out register (n+1 qubits, value kept `< p`).
    pub x: Register,
    /// Optional control qubit.
    pub control: Option<QubitId>,
    /// The addend constant.
    pub a: BitString,
    /// The modulus.
    pub p: BitString,
}

/// Builds a standalone modular adder by a constant, VBE architecture.
///
/// # Errors
///
/// Returns [`ArithError`] unless `a < p < 2^n`.
pub fn modadd_const_circuit(
    spec: &ModAddSpec,
    n: usize,
    a: u128,
    p: u128,
) -> Result<ConstModAdd, ArithError> {
    let p_bits = const_bits("constant modular adder", p, n.max(1))?;
    let a_bits = const_bits("constant modular adder", a, n.max(1))?;
    let mut b = CircuitBuilder::new();
    let x = b.qreg("x", n + 1);
    modadd_const(&mut b, spec, &a_bits, x.qubits(), &p_bits)?;
    Ok(ConstModAdd {
        circuit: b.finish(),
        x,
        control: None,
        a: a_bits,
        p: p_bits,
    })
}

/// Builds a standalone modular adder by a constant, Takahashi architecture.
///
/// # Errors
///
/// Returns [`ArithError`] unless `a < p < 2^n`.
pub fn modadd_const_takahashi_circuit(
    kind: AdderKind,
    uncompute: Uncompute,
    n: usize,
    a: u128,
    p: u128,
) -> Result<ConstModAdd, ArithError> {
    let p_bits = const_bits("Takahashi constant modular adder", p, n.max(1))?;
    let a_bits = const_bits("Takahashi constant modular adder", a, n.max(1))?;
    let mut b = CircuitBuilder::new();
    let x = b.qreg("x", n + 1);
    modadd_const_takahashi(&mut b, kind, uncompute, &a_bits, x.qubits(), &p_bits)?;
    Ok(ConstModAdd {
        circuit: b.finish(),
        x,
        control: None,
        a: a_bits,
        p: p_bits,
    })
}

/// Builds a standalone controlled modular adder by a constant.
///
/// # Errors
///
/// Returns [`ArithError`] unless `a < p < 2^n`.
pub fn controlled_modadd_const_circuit(
    spec: &ModAddSpec,
    n: usize,
    a: u128,
    p: u128,
) -> Result<ConstModAdd, ArithError> {
    let p_bits = const_bits("controlled constant modular adder", p, n.max(1))?;
    let a_bits = const_bits("controlled constant modular adder", a, n.max(1))?;
    let mut b = CircuitBuilder::new();
    let control = b.qubit();
    let x = b.qreg("x", n + 1);
    controlled_modadd_const(&mut b, spec, control, &a_bits, x.qubits(), &p_bits)?;
    Ok(ConstModAdd {
        circuit: b.finish(),
        x,
        control: Some(control),
        a: a_bits,
        p: p_bits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbu_sim::BasisTracker;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn specs() -> Vec<ModAddSpec> {
        let mut v = Vec::new();
        for unc in [Uncompute::Unitary, Uncompute::Mbu] {
            v.push(ModAddSpec::vbe5(unc));
            v.push(ModAddSpec::vbe4(unc));
            v.push(ModAddSpec::cdkpm(unc));
            v.push(ModAddSpec::gidney(unc));
            v.push(ModAddSpec::gidney_cdkpm(unc));
        }
        v
    }

    fn run(circuit: &Circuit, inputs: &[(&[QubitId], u128)], out: &[QubitId], seed: u128) -> u128 {
        circuit.validate().unwrap();
        let mut sim = BasisTracker::zeros(circuit.num_qubits());
        for (reg, v) in inputs {
            sim.set_value(reg, *v).unwrap();
        }
        let mut rng = StdRng::seed_from_u64(seed as u64);
        sim.run(circuit, &mut rng).unwrap();
        assert!(sim.global_phase().is_zero(), "phase must cancel");
        sim.value(out).unwrap()
    }

    #[test]
    fn modadd_exhaustive_small_all_specs() {
        let n = 3usize;
        for spec in specs() {
            for p in [3u128, 5, 7] {
                for x in 0..p {
                    for y in 0..p {
                        let layout = modadd_circuit(&spec, n, p).unwrap();
                        let got = run(
                            &layout.circuit,
                            &[(layout.x.qubits(), x), (layout.y.qubits(), y)],
                            layout.y.qubits(),
                            x * 31 + y,
                        );
                        assert_eq!(got, (x + y) % p, "{spec:?}: ({x}+{y}) mod {p}");
                    }
                }
            }
        }
    }

    #[test]
    fn modadd_chain_accumulates_with_fresh_ancillas() {
        let n = 3usize;
        let p = 5u128;
        for unc in [Uncompute::Unitary, Uncompute::Mbu] {
            let spec = ModAddSpec::cdkpm(unc);
            let single = modadd_circuit(&spec, n, p).unwrap();
            let chain = modadd_chain_circuit(&spec, n, p, 2).unwrap();
            assert!(
                chain.circuit.num_qubits() > single.circuit.num_qubits(),
                "retired pools mean fresh garbage per stage ({unc:?})"
            );
            // Two stages accumulate: y → (2x + y) mod p.
            for seed in 0..6 {
                let mut sim = BasisTracker::zeros(chain.circuit.num_qubits());
                sim.set_value(chain.x.qubits(), 3).unwrap();
                sim.set_value(chain.y.qubits(), 4).unwrap();
                let mut rng = StdRng::seed_from_u64(seed);
                sim.run(&chain.circuit, &mut rng).unwrap();
                assert_eq!(sim.value(chain.x.qubits()).unwrap(), 3);
                assert_eq!(sim.value(chain.y.qubits()).unwrap(), (3 + 3 + 4) % p);
                assert!(sim.global_phase().is_zero(), "{unc:?} seed {seed}");
            }
        }
    }

    #[test]
    fn modadd_preserves_x_register() {
        let spec = ModAddSpec::cdkpm(Uncompute::Mbu);
        let layout = modadd_circuit(&spec, 4, 13).unwrap();
        for seed in 0..8 {
            let mut sim = BasisTracker::zeros(layout.circuit.num_qubits());
            sim.set_value(layout.x.qubits(), 9).unwrap();
            sim.set_value(layout.y.qubits(), 11).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            sim.run(&layout.circuit, &mut rng).unwrap();
            assert_eq!(sim.value(layout.x.qubits()).unwrap(), 9);
            assert_eq!(sim.value(layout.y.qubits()).unwrap(), (9 + 11) % 13);
        }
    }

    #[test]
    fn modadd_wide_modulus() {
        // 32-bit prime modulus on the basis tracker.
        let n = 32usize;
        let p = 4_294_967_291u128; // 2^32 − 5
        for spec in [
            ModAddSpec::cdkpm(Uncompute::Mbu),
            ModAddSpec::gidney(Uncompute::Mbu),
            ModAddSpec::gidney_cdkpm(Uncompute::Unitary),
        ] {
            let layout = modadd_circuit(&spec, n, p).unwrap();
            let x = p - 1;
            let y = p - 2;
            let got = run(
                &layout.circuit,
                &[(layout.x.qubits(), x), (layout.y.qubits(), y)],
                layout.y.qubits(),
                7,
            );
            assert_eq!(got, (x + y) % p, "{spec:?}");
        }
    }

    #[test]
    fn controlled_modadd_truth_table() {
        let n = 3usize;
        let p = 7u128;
        for spec in specs() {
            for ctrl in [0u128, 1] {
                for (x, y) in [(3u128, 5u128), (6, 6), (0, 4), (5, 2)] {
                    let layout = controlled_modadd_circuit(&spec, n, p).unwrap();
                    let control = layout.control.unwrap();
                    let got = run(
                        &layout.circuit,
                        &[
                            (&[control], ctrl),
                            (layout.x.qubits(), x),
                            (layout.y.qubits(), y),
                        ],
                        layout.y.qubits(),
                        x * 17 + y + ctrl,
                    );
                    let expected = if ctrl == 1 { (x + y) % p } else { y };
                    assert_eq!(got, expected, "{spec:?} c={ctrl} ({x}+{y}) mod {p}");
                }
            }
        }
    }

    #[test]
    fn modadd_const_exhaustive_small() {
        let n = 3usize;
        for spec in [
            ModAddSpec::cdkpm(Uncompute::Unitary),
            ModAddSpec::cdkpm(Uncompute::Mbu),
            ModAddSpec::gidney(Uncompute::Mbu),
        ] {
            for p in [5u128, 7] {
                for a in 0..p {
                    for x in 0..p {
                        let layout = modadd_const_circuit(&spec, n, a, p).unwrap();
                        let got = run(
                            &layout.circuit,
                            &[(layout.x.qubits(), x)],
                            layout.x.qubits(),
                            a * 13 + x,
                        );
                        assert_eq!(got, (x + a) % p, "{spec:?}: ({x}+{a}) mod {p}");
                    }
                }
            }
        }
    }

    #[test]
    fn takahashi_exhaustive_small() {
        let n = 3usize;
        for kind in [AdderKind::Vbe, AdderKind::Cdkpm, AdderKind::Gidney] {
            for unc in [Uncompute::Unitary, Uncompute::Mbu] {
                for p in [5u128, 7] {
                    for a in 0..p {
                        for x in 0..p {
                            let layout =
                                modadd_const_takahashi_circuit(kind, unc, n, a, p).unwrap();
                            let got = run(
                                &layout.circuit,
                                &[(layout.x.qubits(), x)],
                                layout.x.qubits(),
                                a * 29 + x,
                            );
                            assert_eq!(got, (x + a) % p, "{kind} {unc}: ({x}+{a}) mod {p}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn controlled_modadd_const_truth_table() {
        let n = 3usize;
        let p = 7u128;
        for spec in [
            ModAddSpec::cdkpm(Uncompute::Unitary),
            ModAddSpec::cdkpm(Uncompute::Mbu),
            ModAddSpec::gidney_cdkpm(Uncompute::Mbu),
        ] {
            for ctrl in [0u128, 1] {
                for a in [0u128, 3, 6] {
                    for x in [0u128, 4, 6] {
                        let layout = controlled_modadd_const_circuit(&spec, n, a, p).unwrap();
                        let control = layout.control.unwrap();
                        let got = run(
                            &layout.circuit,
                            &[(&[control], ctrl), (layout.x.qubits(), x)],
                            layout.x.qubits(),
                            a * 11 + x + ctrl,
                        );
                        let expected = (x + a * ctrl) % p;
                        assert_eq!(got, expected, "{spec:?} c={ctrl} ({x}+{a})");
                    }
                }
            }
        }
    }

    #[test]
    fn mbu_reduces_expected_toffolis() {
        let n = 8usize;
        let p = 251u128;
        for (plain, with_mbu) in [
            (
                ModAddSpec::cdkpm(Uncompute::Unitary),
                ModAddSpec::cdkpm(Uncompute::Mbu),
            ),
            (
                ModAddSpec::gidney(Uncompute::Unitary),
                ModAddSpec::gidney(Uncompute::Mbu),
            ),
        ] {
            let a = modadd_circuit(&plain, n, p).unwrap();
            let b = modadd_circuit(&with_mbu, n, p).unwrap();
            let ta = a.circuit.expected_counts().toffoli;
            let tb = b.circuit.expected_counts().toffoli;
            assert!(tb < ta, "{plain:?}: {tb} !< {ta}");
        }
    }

    #[test]
    fn toffoli_counts_match_paper_shape() {
        // Prop 3.4: CDKPM ≈ 8n; Prop 3.5: Gidney ≈ 4n; Thm 3.6: hybrid ≈ 6n.
        let n = 16usize;
        let p = 65_521u128;
        let tof =
            |spec: &ModAddSpec| modadd_circuit(spec, n, p).unwrap().circuit.counts().toffoli as f64;
        let cdkpm = tof(&ModAddSpec::cdkpm(Uncompute::Unitary));
        let gidney = tof(&ModAddSpec::gidney(Uncompute::Unitary));
        let hybrid = tof(&ModAddSpec::gidney_cdkpm(Uncompute::Unitary));
        let nf = n as f64;
        assert!((cdkpm - 8.0 * nf).abs() <= 8.0, "CDKPM {cdkpm} vs 8n");
        assert!((gidney - 4.0 * nf).abs() <= 8.0, "Gidney {gidney} vs 4n");
        assert!((hybrid - 6.0 * nf).abs() <= 8.0, "hybrid {hybrid} vs 6n");
        assert!(gidney < hybrid && hybrid < cdkpm);
    }

    #[test]
    fn mod_reduce_exhaustive_small() {
        // Remark 3.3: reduce any x < 2p out of place.
        let n = 3usize;
        for kind in [AdderKind::Vbe, AdderKind::Cdkpm, AdderKind::Gidney] {
            for unc in [Uncompute::Unitary, Uncompute::Mbu] {
                for p in [3u128, 5, 7] {
                    for x in 0..(2 * p).min(1u128 << (n + 1)) {
                        let p_bits = mbu_bitstring::BitString::from_u128(p, n);
                        let mut b = CircuitBuilder::new();
                        let xr = b.qreg("x", n + 1);
                        let or = b.qreg("out", n + 1);
                        mod_reduce(&mut b, kind, unc, xr.qubits(), or.qubits(), &p_bits).unwrap();
                        let circuit = b.finish();
                        let got = run(&circuit, &[(xr.qubits(), x)], or.qubits(), x * 7 + p);
                        assert_eq!(got, x % p, "{kind} {unc}: {x} mod {p}");
                        // Input preserved.
                        let mut sim = mbu_sim::BasisTracker::zeros(circuit.num_qubits());
                        sim.set_value(xr.qubits(), x).unwrap();
                        let mut rng = StdRng::seed_from_u64(3);
                        sim.run(&circuit, &mut rng).unwrap();
                        assert_eq!(sim.value(xr.qubits()).unwrap(), x);
                    }
                }
            }
        }
    }

    #[test]
    fn invalid_moduli_are_rejected() {
        let spec = ModAddSpec::cdkpm(Uncompute::Unitary);
        assert!(matches!(
            modadd_circuit(&spec, 3, 0),
            Err(ArithError::ConstantOutOfRange { .. })
        ));
        assert!(matches!(
            modadd_circuit(&spec, 3, 9),
            Err(ArithError::ConstantOutOfRange { .. })
        ));
        assert!(matches!(
            modadd_const_circuit(&spec, 3, 6, 5),
            Err(ArithError::ConstantOutOfRange { .. })
        ));
    }
}
