//! The Draper/Beauregard QFT-based modular adders (Prop 3.7, Prop 3.19,
//! Figure 23) and their MBU variants (Thm 4.6).
//!
//! These circuits never leave the Fourier basis between subroutines:
//! adjacent `IQFT·QFT` pairs of the VBE-architecture slots cancel, leaving
//! exactly 3 QFTs + 3 IQFTs per modular addition (Prop 3.7). The flag
//! uncomputation reads the *complemented* sign bit, so no trailing X on the
//! flag is needed (Beauregard's trick).

use mbu_bitstring::BitString;
use mbu_circuit::{Circuit, CircuitBuilder, QubitId, Register};

use crate::adders::draper::{
    c_phi_add_const, cc_phi_add_const, iqft, phi_add, phi_add_const, qft, Sign,
};
use crate::util::{const_bits, expect_width, nonempty};
use crate::{mbu, ArithError, Uncompute};

use super::ModAdd;

/// Emits the Beauregard modular adder (Prop 3.7):
/// `|x⟩_n |y⟩_{n+1} ↦ |x⟩_n |(x + y) mod p⟩_{n+1}` for `x, y < p`,
/// with 3 QFTs, 3 IQFTs, 2 CNOTs and 2 ancillas (flag + borrowed); MBU
/// (Thm 4.6) makes the final comparator conditional.
///
/// # Errors
///
/// Returns [`ArithError`] on width mismatches or an invalid modulus.
pub fn modadd(
    b: &mut CircuitBuilder,
    uncompute: Uncompute,
    x: &[QubitId],
    y: &[QubitId],
    p: &BitString,
) -> Result<(), ArithError> {
    let n = nonempty("Beauregard modular adder", x)?;
    expect_width("Beauregard modular adder target", y, n + 1)?;
    let p_bits = super::check_modulus("Beauregard modular adder", p, n)?;
    let t = b.ancilla();

    // y ← x + y − p (mod 2^{n+1}); top bit flags x + y < p.
    qft(b, y)?;
    phi_add(b, x, y, Sign::Plus)?;
    phi_add_const(b, &p_bits, y, Sign::Minus)?;
    iqft(b, y)?;
    b.cx(y[n], t);
    // Re-add p where the subtraction underflowed.
    qft(b, y)?;
    c_phi_add_const(b, t, &p_bits, y, Sign::Plus)?;

    match uncompute {
        Uncompute::Unitary => {
            // Merge the comparator's ΦSUB(x) into the open Fourier block.
            phi_add(b, x, y, Sign::Minus)?;
            iqft(b, y)?;
            // t ⊕= ¬(y − x)_n = 1[x + y < p]: clears the flag.
            b.x(y[n]);
            b.cx(y[n], t);
            b.x(y[n]);
            qft(b, y)?;
            phi_add(b, x, y, Sign::Plus)?;
            iqft(b, y)?;
        }
        Uncompute::Mbu => {
            iqft(b, y)?;
            // Standalone self-adjoint oracle computing t ⊕= 1[x + y < p].
            let (res, oracle) = b.record(|b| -> Result<(), ArithError> {
                qft(b, y)?;
                phi_add(b, x, y, Sign::Minus)?;
                iqft(b, y)?;
                b.x(y[n]);
                b.cx(y[n], t);
                b.x(y[n]);
                qft(b, y)?;
                phi_add(b, x, y, Sign::Plus)?;
                iqft(b, y)
            });
            res?;
            mbu::uncompute_bit(b, t, &oracle);
        }
    }
    b.release_ancilla(t);
    Ok(())
}

/// Emits the Beauregard modular adder by a constant with 0, 1 or 2 control
/// qubits (Prop 3.19; Figure 23 for the doubly-controlled Shor variant):
/// `|x⟩_{n+1} ↦ |(x + c₁c₂·a) mod p⟩_{n+1}` for `a, x < p`.
///
/// # Errors
///
/// Returns [`ArithError`] on width mismatches, invalid constants, or more
/// than two controls.
pub fn modadd_const(
    b: &mut CircuitBuilder,
    uncompute: Uncompute,
    controls: &[QubitId],
    a: &BitString,
    x: &[QubitId],
    p: &BitString,
) -> Result<(), ArithError> {
    let m = nonempty("Beauregard constant modular adder", x)?;
    if m < 2 {
        return Err(ArithError::EmptyRegister {
            context: "Beauregard constant modular adder",
        });
    }
    if controls.len() > 2 {
        return Err(ArithError::ConstantOutOfRange {
            context: "Beauregard constant modular adder",
            constraint: "at most two control qubits are supported",
        });
    }
    let n = m - 1;
    let p_bits = super::check_modulus("Beauregard constant modular adder", p, n)?;
    let a_bits = super::check_constant_below(a, &p_bits, "Beauregard constant modular adder")?;
    let t = b.ancilla();

    let add_a = |b: &mut CircuitBuilder, sign: Sign| -> Result<(), ArithError> {
        match controls {
            [] => phi_add_const(b, &a_bits, x, sign),
            [c] => c_phi_add_const(b, *c, &a_bits, x, sign),
            [c1, c2] => cc_phi_add_const(b, *c1, *c2, &a_bits, x, sign),
            _ => unreachable!("checked above"),
        }
    };

    // x ← x + c·a − p (mod 2^{n+1}); top bit flags x + c·a < p.
    qft(b, x)?;
    add_a(b, Sign::Plus)?;
    phi_add_const(b, &p_bits, x, Sign::Minus)?;
    iqft(b, x)?;
    b.cx(x[n], t);
    qft(b, x)?;
    c_phi_add_const(b, t, &p_bits, x, Sign::Plus)?;

    match uncompute {
        Uncompute::Unitary => {
            add_a(b, Sign::Minus)?;
            iqft(b, x)?;
            b.x(x[n]);
            b.cx(x[n], t);
            b.x(x[n]);
            qft(b, x)?;
            add_a(b, Sign::Plus)?;
            iqft(b, x)?;
        }
        Uncompute::Mbu => {
            iqft(b, x)?;
            let (res, oracle) = b.record(|b| -> Result<(), ArithError> {
                qft(b, x)?;
                add_a(b, Sign::Minus)?;
                iqft(b, x)?;
                b.x(x[n]);
                b.cx(x[n], t);
                b.x(x[n]);
                qft(b, x)?;
                add_a(b, Sign::Plus)?;
                iqft(b, x)
            });
            res?;
            mbu::uncompute_bit(b, t, &oracle);
        }
    }
    b.release_ancilla(t);
    Ok(())
}

/// Builds a standalone Beauregard modular adder.
///
/// # Errors
///
/// Returns [`ArithError`] for `n = 0`, widths over the Draper limit, or an
/// invalid modulus.
///
/// # Examples
///
/// ```
/// use mbu_arith::{modular::beauregard, Uncompute};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let layout = beauregard::modadd_circuit(Uncompute::Unitary, 4, 13)?;
/// assert_eq!(layout.circuit.counts().toffoli, 0); // QFT arithmetic
/// # Ok(())
/// # }
/// ```
pub fn modadd_circuit(uncompute: Uncompute, n: usize, p: u128) -> Result<ModAdd, ArithError> {
    let p_bits = const_bits("Beauregard modular adder", p, n.max(1))?;
    let mut b = CircuitBuilder::new();
    let x = b.qreg("x", n);
    let y = b.qreg("y", n + 1);
    modadd(&mut b, uncompute, x.qubits(), y.qubits(), &p_bits)?;
    Ok(ModAdd {
        circuit: b.finish(),
        x,
        y,
        control: None,
        p: p_bits,
    })
}

/// A Beauregard constant modular adder with its registers.
#[derive(Clone, Debug)]
pub struct BeauregardConstModAdd {
    /// The full circuit.
    pub circuit: Circuit,
    /// The in/out register (n+1 qubits).
    pub x: Register,
    /// The control qubits (0–2 of them).
    pub controls: Vec<QubitId>,
    /// The addend constant.
    pub a: BitString,
    /// The modulus.
    pub p: BitString,
}

/// Builds a standalone Beauregard constant modular adder with
/// `num_controls ∈ {0, 1, 2}` control qubits.
///
/// # Errors
///
/// Returns [`ArithError`] unless `a < p < 2^n` and `num_controls ≤ 2`.
pub fn modadd_const_circuit(
    uncompute: Uncompute,
    num_controls: usize,
    n: usize,
    a: u128,
    p: u128,
) -> Result<BeauregardConstModAdd, ArithError> {
    let p_bits = const_bits("Beauregard constant modular adder", p, n.max(1))?;
    let a_bits = const_bits("Beauregard constant modular adder", a, n.max(1))?;
    let mut b = CircuitBuilder::new();
    let controls: Vec<QubitId> = (0..num_controls).map(|_| b.qubit()).collect();
    let x = b.qreg("x", n + 1);
    modadd_const(&mut b, uncompute, &controls, &a_bits, x.qubits(), &p_bits)?;
    Ok(BeauregardConstModAdd {
        circuit: b.finish(),
        x,
        controls,
        a: a_bits,
        p: p_bits,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbu_sim::StateVector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run(circuit: &Circuit, inputs: &[(&[QubitId], u64)], out: &[QubitId], seed: u64) -> u64 {
        circuit.validate().unwrap();
        let mut sv = StateVector::zeros(circuit.num_qubits()).unwrap();
        sv.prepare_basis(StateVector::index_with(inputs)).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        sv.run(circuit, &mut rng).unwrap();
        let (idx, amp) = sv.as_basis(1e-7).expect("basis output");
        assert!(
            (amp.re - 1.0).abs() < 1e-6 && amp.im.abs() < 1e-6,
            "global phase must be +1, got {amp}"
        );
        StateVector::register_value(idx, out)
    }

    #[test]
    fn modadd_exhaustive_small() {
        let n = 3usize;
        for unc in [Uncompute::Unitary, Uncompute::Mbu] {
            for p in [5u64, 7] {
                for x in 0..p {
                    for y in 0..p {
                        let layout = modadd_circuit(unc, n, u128::from(p)).unwrap();
                        let got = run(
                            &layout.circuit,
                            &[(layout.x.qubits(), x), (layout.y.qubits(), y)],
                            layout.y.qubits(),
                            x * 31 + y,
                        );
                        assert_eq!(got, (x + y) % p, "{unc}: ({x}+{y}) mod {p}");
                    }
                }
            }
        }
    }

    #[test]
    fn hadamard_count_confirms_3_qfts_each_way() {
        // Prop 3.7: 3 QFT + 3 IQFT over n+1 qubits → 6(n+1) H gates.
        let n = 5usize;
        let layout = modadd_circuit(Uncompute::Unitary, n, 23).unwrap();
        assert_eq!(layout.circuit.counts().h, 6 * (n as u64 + 1));
        assert_eq!(layout.circuit.counts().cx, 2);
    }

    #[test]
    fn mbu_variant_reduces_expected_rotations() {
        let n = 5usize;
        let plain = modadd_circuit(Uncompute::Unitary, n, 23).unwrap();
        let with_mbu = modadd_circuit(Uncompute::Mbu, n, 23).unwrap();
        let e_plain = plain.circuit.expected_counts();
        let e_mbu = with_mbu.circuit.expected_counts();
        assert!(
            e_mbu.cphase < e_plain.cphase,
            "expected rotations: {} !< {}",
            e_mbu.cphase,
            e_plain.cphase
        );
    }

    #[test]
    fn const_modadd_exhaustive_no_controls() {
        let n = 3usize;
        for unc in [Uncompute::Unitary, Uncompute::Mbu] {
            let p = 7u64;
            for a in 0..p {
                for x in 0..p {
                    let layout =
                        modadd_const_circuit(unc, 0, n, u128::from(a), u128::from(p)).unwrap();
                    let got = run(
                        &layout.circuit,
                        &[(layout.x.qubits(), x)],
                        layout.x.qubits(),
                        a * 13 + x,
                    );
                    assert_eq!(got, (x + a) % p, "{unc}: ({x}+{a}) mod {p}");
                }
            }
        }
    }

    #[test]
    fn const_modadd_single_control() {
        let n = 3usize;
        let (a, p) = (5u64, 7u64);
        for unc in [Uncompute::Unitary, Uncompute::Mbu] {
            for ctrl in [0u64, 1] {
                for x in [0u64, 3, 6] {
                    let layout =
                        modadd_const_circuit(unc, 1, n, u128::from(a), u128::from(p)).unwrap();
                    let c = layout.controls[0];
                    let got = run(
                        &layout.circuit,
                        &[(&[c], ctrl), (layout.x.qubits(), x)],
                        layout.x.qubits(),
                        x + ctrl * 3,
                    );
                    assert_eq!(got, (x + a * ctrl) % p, "{unc} c={ctrl} x={x}");
                }
            }
        }
    }

    #[test]
    fn const_modadd_double_control_figure_23() {
        let n = 2usize;
        let (a, p) = (2u64, 3u64);
        for c1v in [0u64, 1] {
            for c2v in [0u64, 1] {
                for x in 0..p {
                    let layout =
                        modadd_const_circuit(Uncompute::Mbu, 2, n, u128::from(a), u128::from(p))
                            .unwrap();
                    let (c1, c2) = (layout.controls[0], layout.controls[1]);
                    let got = run(
                        &layout.circuit,
                        &[(&[c1], c1v), (&[c2], c2v), (layout.x.qubits(), x)],
                        layout.x.qubits(),
                        x * 5 + c1v * 2 + c2v,
                    );
                    assert_eq!(got, (x + a * c1v * c2v) % p, "c1={c1v} c2={c2v} x={x}");
                }
            }
        }
    }

    #[test]
    fn too_many_controls_rejected() {
        let mut b = CircuitBuilder::new();
        let c: Vec<QubitId> = (0..3).map(|_| b.qubit()).collect();
        let x = b.qreg("x", 4);
        let a = BitString::from_u128(1, 3);
        let p = BitString::from_u128(5, 3);
        assert!(matches!(
            modadd_const(&mut b, Uncompute::Unitary, &c, &a, x.qubits(), &p),
            Err(ArithError::ConstantOutOfRange { .. })
        ));
    }
}
