//! Errors for arithmetic-circuit synthesis.

use std::error::Error;
use std::fmt;

use mbu_circuit::CircuitError;

/// Errors produced while synthesising arithmetic circuits.
///
/// # Examples
///
/// ```
/// use mbu_arith::{adders, AdderKind, ArithError};
/// use mbu_circuit::CircuitBuilder;
///
/// let mut b = CircuitBuilder::new();
/// let x = b.qreg("x", 4);
/// let y = b.qreg("y", 4); // must be 5 qubits for a 4-bit addend
/// let err = adders::add(&mut b, AdderKind::Cdkpm, x.qubits(), y.qubits()).unwrap_err();
/// assert!(matches!(err, ArithError::WidthMismatch { .. }));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ArithError {
    /// Register widths are inconsistent for the requested operation.
    WidthMismatch {
        /// What was being built.
        context: &'static str,
        /// Expected width.
        expected: usize,
        /// Actual width.
        actual: usize,
    },
    /// The operation needs at least one bit of width.
    EmptyRegister {
        /// What was being built.
        context: &'static str,
    },
    /// A classical constant does not satisfy the construction's
    /// precondition (e.g. `a < p`, or the modulus does not fit in `n` bits).
    ConstantOutOfRange {
        /// What was being built.
        context: &'static str,
        /// Description of the violated constraint.
        constraint: &'static str,
    },
    /// The modulus has no inverse for the requested value (needed by
    /// in-place modular multiplication).
    NotInvertible {
        /// The value lacking an inverse.
        value: u128,
        /// The modulus.
        modulus: u128,
    },
    /// An underlying circuit-level operation failed.
    Circuit(CircuitError),
}

impl fmt::Display for ArithError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArithError::WidthMismatch {
                context,
                expected,
                actual,
            } => write!(
                f,
                "{context}: register width {actual} where {expected} was required"
            ),
            ArithError::EmptyRegister { context } => {
                write!(f, "{context}: register must have at least one qubit")
            }
            ArithError::ConstantOutOfRange {
                context,
                constraint,
            } => write!(f, "{context}: constant violates {constraint}"),
            ArithError::NotInvertible { value, modulus } => {
                write!(f, "{value} has no multiplicative inverse modulo {modulus}")
            }
            ArithError::Circuit(e) => write!(f, "circuit error: {e}"),
        }
    }
}

impl Error for ArithError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ArithError::Circuit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CircuitError> for ArithError {
    fn from(e: CircuitError) -> Self {
        ArithError::Circuit(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ArithError::WidthMismatch {
            context: "adder",
            expected: 5,
            actual: 4,
        };
        assert!(e.to_string().contains("adder"));
        let wrapped = ArithError::from(CircuitError::AdjointOfMeasurement);
        assert!(std::error::Error::source(&wrapped).is_some());
    }
}
