//! Draper's QFT adder (Prop 2.5, Figure 14), constant addition in the
//! Fourier basis (Prop 2.17, Beauregard), and their controlled variants
//! (Thms 2.13–2.14, Prop 2.20).
//!
//! A register `|y⟩` is moved into the Fourier basis, where addition becomes
//! a cascade of commuting phase rotations — no Toffolis, no carries. The
//! building blocks are exposed individually (`qft`, `phi_add`, …) because
//! the Beauregard modular adder (Prop 3.7) cancels adjacent `IQFT·QFT`
//! pairs across subroutine boundaries.

use mbu_bitstring::BitString;
use mbu_circuit::{Angle, Basis, CircuitBuilder, QubitId};

use crate::util::{expect_width, nonempty};
use crate::ArithError;

/// Largest Fourier-register width. [`Angle`] stores rotation denominators
/// exactly at any depth (the QFT only needs numerator-1 fractions), so this
/// is a sanity cap against pathological register sizes, not a precision
/// limit; it matches the sparse backend's qubit ceiling.
pub const MAX_DRAPER_WIDTH: usize = 16_384;

fn check_width(context: &'static str, m: usize) -> Result<(), ArithError> {
    if m > MAX_DRAPER_WIDTH {
        return Err(ArithError::ConstantOutOfRange {
            context,
            constraint: "Draper circuits support widths up to 16384 bits",
        });
    }
    Ok(())
}

/// Emits the QFT over `reg` in the paper's convention: after the transform,
/// qubit `i` holds the phase `y/2^{i+1}`, i.e.
/// `|ϕ_i(y)⟩ = (|0⟩ + e^{2πi·y/2^{i+1}}|1⟩)/√2` — no terminal swaps needed.
///
/// # Errors
///
/// Returns [`ArithError`] for empty or oversized registers.
pub fn qft(b: &mut CircuitBuilder, reg: &[QubitId]) -> Result<(), ArithError> {
    let m = nonempty("QFT", reg)?;
    check_width("QFT", m)?;
    for i in (0..m).rev() {
        b.h(reg[i]);
        for j in (0..i).rev() {
            b.cphase(
                reg[j],
                reg[i],
                Angle::turn_over_power_of_two((i - j + 1) as u32),
            );
        }
    }
    Ok(())
}

/// Emits the inverse QFT (adjoint of [`qft`]).
///
/// # Errors
///
/// Returns [`ArithError`] for empty or oversized registers.
pub fn iqft(b: &mut CircuitBuilder, reg: &[QubitId]) -> Result<(), ArithError> {
    let m = nonempty("IQFT", reg)?;
    check_width("IQFT", m)?;
    for i in 0..m {
        for j in 0..i {
            b.cphase(
                reg[j],
                reg[i],
                -Angle::turn_over_power_of_two((i - j + 1) as u32),
            );
        }
        b.h(reg[i]);
    }
    Ok(())
}

/// Emits `ΦADD` (Prop 2.5): `|x⟩_n |ϕ(y)⟩_m ↦ |x⟩_n |ϕ(y + x)⟩_m`, with
/// `y` in the Fourier basis. Negate `sign` for `ΦSUB`.
///
/// # Errors
///
/// Returns [`ArithError`] for empty or oversized registers, or if
/// `x.len() > y.len()`.
pub fn phi_add(
    b: &mut CircuitBuilder,
    x: &[QubitId],
    y_phi: &[QubitId],
    sign: Sign,
) -> Result<(), ArithError> {
    let n = nonempty("ΦADD addend", x)?;
    let m = nonempty("ΦADD target", y_phi)?;
    check_width("ΦADD", m)?;
    if n > m {
        return Err(ArithError::WidthMismatch {
            context: "ΦADD addend wider than target",
            expected: m,
            actual: n,
        });
    }
    for (i, &target) in y_phi.iter().enumerate() {
        for (j, &ctrl) in x.iter().enumerate().take(i + 1) {
            let theta = sign.apply(Angle::turn_over_power_of_two((i - j + 1) as u32));
            b.cphase(ctrl, target, theta);
        }
    }
    Ok(())
}

/// Emits the controlled `ΦADD` with one borrowed ancilla (Thm 2.14):
/// `|c⟩ |x⟩_n |ϕ(y)⟩_m ↦ |c⟩ |x⟩_n |ϕ(y + c·x)⟩_m`.
///
/// Rotations are grouped by their common control `x_j`: a temporary logical
/// AND of `(control, x_j)` drives all of `x_j`'s rotations and is then
/// uncomputed by measurement — n extra Toffolis total.
///
/// # Errors
///
/// Returns [`ArithError`] for inconsistent widths.
pub fn c_phi_add(
    b: &mut CircuitBuilder,
    control: QubitId,
    x: &[QubitId],
    y_phi: &[QubitId],
    sign: Sign,
) -> Result<(), ArithError> {
    let n = nonempty("C-ΦADD addend", x)?;
    let m = nonempty("C-ΦADD target", y_phi)?;
    check_width("C-ΦADD", m)?;
    if n > m {
        return Err(ArithError::WidthMismatch {
            context: "C-ΦADD addend wider than target",
            expected: m,
            actual: n,
        });
    }
    let anc = b.ancilla();
    for (j, &x_bit) in x.iter().enumerate() {
        b.ccx(control, x_bit, anc);
        for (i, &target) in y_phi.iter().enumerate().skip(j) {
            let theta = sign.apply(Angle::turn_over_power_of_two((i - j + 1) as u32));
            b.cphase(anc, target, theta);
        }
        // Measurement-based uncompute of the temporary AND.
        b.h(anc);
        let outcome = b.measure(anc, Basis::Z);
        let (_, fix) = b.record(|b| b.cz(control, x_bit));
        b.emit_conditional(outcome, &fix);
        b.reset(anc);
    }
    b.release_ancilla(anc);
    Ok(())
}

/// Emits `ΦADD(a)` (Prop 2.17, Figure 19): adds the classical constant `a`
/// in the Fourier basis using one merged rotation per target qubit
/// (Equation (7)) and zero ancillas.
///
/// # Errors
///
/// Returns [`ArithError`] for oversized registers.
pub fn phi_add_const(
    b: &mut CircuitBuilder,
    a: &BitString,
    y_phi: &[QubitId],
    sign: Sign,
) -> Result<(), ArithError> {
    let m = nonempty("ΦADD(a)", y_phi)?;
    check_width("ΦADD(a)", m)?;
    for (i, &target) in y_phi.iter().enumerate() {
        for theta in const_angles(a, i) {
            b.phase(target, sign.apply(theta));
        }
    }
    Ok(())
}

/// Emits `C-ΦADD(a)` (Prop 2.20): the constant addition controlled on one
/// qubit, still ancilla-free.
///
/// # Errors
///
/// Returns [`ArithError`] for oversized registers.
pub fn c_phi_add_const(
    b: &mut CircuitBuilder,
    control: QubitId,
    a: &BitString,
    y_phi: &[QubitId],
    sign: Sign,
) -> Result<(), ArithError> {
    let m = nonempty("C-ΦADD(a)", y_phi)?;
    check_width("C-ΦADD(a)", m)?;
    for (i, &target) in y_phi.iter().enumerate() {
        for theta in const_angles(a, i) {
            b.cphase(control, target, sign.apply(theta));
        }
    }
    Ok(())
}

/// Emits `CC-ΦADD(a)`: the constant addition with two controls, used by
/// Beauregard's doubly-controlled modular adder (Figure 23).
///
/// # Errors
///
/// Returns [`ArithError`] for oversized registers.
pub fn cc_phi_add_const(
    b: &mut CircuitBuilder,
    c1: QubitId,
    c2: QubitId,
    a: &BitString,
    y_phi: &[QubitId],
    sign: Sign,
) -> Result<(), ArithError> {
    let m = nonempty("CC-ΦADD(a)", y_phi)?;
    check_width("CC-ΦADD(a)", m)?;
    for (i, &target) in y_phi.iter().enumerate() {
        for theta in const_angles(a, i) {
            b.ccphase(c1, c2, target, sign.apply(theta));
        }
    }
    Ok(())
}

/// The rotation angles implementing `U_{a,i}` of Equation (7):
/// `2π · (a mod 2^{i+1}) / 2^{i+1}` on target `i`. When the merged
/// numerator fits an [`Angle`]'s `u128` (every constant bit `k ≤ 127`),
/// this is the paper's single merged rotation; past that width the merge
/// would overflow, so the addend falls back to one exact `θ_{i−k+1}`
/// rotation per set bit of `a` (still zero ancillas, and the compile-time
/// merge pass re-fuses whatever pairs fit).
fn const_angles(a: &BitString, i: usize) -> Vec<Angle> {
    let top = i.min(a.width().saturating_sub(1));
    if top <= 127 {
        let mut numerator: u128 = 0;
        for k in 0..=top {
            if a.bit(k) {
                numerator |= 1u128 << k;
            }
        }
        return vec![Angle::from_fraction(numerator, (i + 1) as u32)];
    }
    let angles: Vec<Angle> = (0..=top)
        .filter(|&k| a.bit(k))
        .map(|k| Angle::turn_over_power_of_two((i - k + 1) as u32))
        .collect();
    if angles.is_empty() {
        // Keep the merged form's floor of one rotation per target so an
        // all-zero constant emits the same circuit shape either side of
        // the width cutoff.
        return vec![Angle::ZERO];
    }
    angles
}

/// Whether a Fourier-basis operation adds or subtracts.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Sign {
    /// `ΦADD`.
    Plus,
    /// `ΦSUB` (all angles negated).
    Minus,
}

impl Sign {
    fn apply(self, theta: Angle) -> Angle {
        match self {
            Sign::Plus => theta,
            Sign::Minus => -theta,
        }
    }
}

/// Emits the full Draper adder (Cor 2.7): `QFT · ΦADD · IQFT`, giving
/// `|x⟩_n |y⟩_{n+1} ↦ |x⟩_n |(y + x) mod 2^{n+1}⟩_{n+1}` with zero
/// ancillas.
///
/// # Errors
///
/// Returns [`ArithError::WidthMismatch`] unless `y.len() == x.len() + 1`.
pub fn add(b: &mut CircuitBuilder, x: &[QubitId], y: &[QubitId]) -> Result<(), ArithError> {
    let n = nonempty("Draper adder", x)?;
    expect_width("Draper adder target", y, n + 1)?;
    qft(b, y)?;
    phi_add(b, x, y, Sign::Plus)?;
    iqft(b, y)
}

/// Emits the Draper adder without a carry-out (equal widths, mod 2^n).
///
/// # Errors
///
/// Returns [`ArithError::WidthMismatch`] unless `y.len() == x.len()`.
pub fn wrapping_add(
    b: &mut CircuitBuilder,
    x: &[QubitId],
    y: &[QubitId],
) -> Result<(), ArithError> {
    let n = nonempty("Draper wrapping adder", x)?;
    expect_width("Draper wrapping adder target", y, n)?;
    qft(b, y)?;
    phi_add(b, x, y, Sign::Plus)?;
    iqft(b, y)
}

/// Emits the controlled Draper adder (Thm 2.14): one ancilla, n Toffolis.
///
/// # Errors
///
/// Returns [`ArithError::WidthMismatch`] unless `y.len() == x.len() + 1`.
pub fn controlled_add(
    b: &mut CircuitBuilder,
    control: QubitId,
    x: &[QubitId],
    y: &[QubitId],
) -> Result<(), ArithError> {
    let n = nonempty("controlled Draper adder", x)?;
    expect_width("controlled Draper adder target", y, n + 1)?;
    qft(b, y)?;
    c_phi_add(b, control, x, y, Sign::Plus)?;
    iqft(b, y)
}

/// Emits the Draper comparator (Prop 2.26 adapted to equal widths):
/// `t ⊕= 1[x > y]` or `t ⊕= control·1[x > y]`, using one borrowed sign
/// ancilla appended as `y`'s (n+1)-th Fourier bit.
///
/// # Errors
///
/// Returns [`ArithError::WidthMismatch`] unless `x.len() == y.len()`.
pub fn compare_gt(
    b: &mut CircuitBuilder,
    control: Option<QubitId>,
    x: &[QubitId],
    y: &[QubitId],
    t: QubitId,
) -> Result<(), ArithError> {
    let n = nonempty("Draper comparator", x)?;
    expect_width("Draper comparator second operand", y, n)?;
    let sign = b.ancilla();
    let mut y_ext: Vec<QubitId> = y.to_vec();
    y_ext.push(sign);
    // y − x: the top (sign) bit is 1 exactly when x > y.
    qft(b, &y_ext)?;
    phi_add(b, x, &y_ext, Sign::Minus)?;
    iqft(b, &y_ext)?;
    match control {
        None => b.cx(sign, t),
        Some(c) => b.ccx(c, sign, t),
    }
    qft(b, &y_ext)?;
    phi_add(b, x, &y_ext, Sign::Plus)?;
    iqft(b, &y_ext)?;
    b.release_ancilla(sign);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbu_circuit::CircuitBuilder;
    use mbu_sim::StateVector;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_basis(
        circuit: &mbu_circuit::Circuit,
        prep: &[(&[QubitId], u64)],
        out: &[QubitId],
    ) -> u64 {
        circuit.validate().unwrap();
        let mut sv = StateVector::zeros(circuit.num_qubits()).unwrap();
        sv.prepare_basis(StateVector::index_with(prep)).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        sv.run(circuit, &mut rng).unwrap();
        let (idx, amp) = sv.as_basis(1e-9).expect("output should be a basis state");
        assert!(
            (amp.re - 1.0).abs() < 1e-7 && amp.im.abs() < 1e-7,
            "global phase must be +1, got {amp}"
        );
        StateVector::register_value(idx, out)
    }

    #[test]
    fn qft_iqft_roundtrip_is_identity() {
        let m = 4usize;
        for v in 0..(1u64 << m) {
            let mut b = CircuitBuilder::new();
            let r = b.qreg("r", m);
            qft(&mut b, r.qubits()).unwrap();
            iqft(&mut b, r.qubits()).unwrap();
            let c = b.finish();
            let got = run_basis(&c, &[(r.qubits(), v)], r.qubits());
            assert_eq!(got, v);
        }
    }

    #[test]
    fn adds_exhaustively_small() {
        for n in 1..=3usize {
            for x in 0..(1u64 << n) {
                for y in 0..(1u64 << (n + 1)) {
                    let mut b = CircuitBuilder::new();
                    let xr = b.qreg("x", n);
                    let yr = b.qreg("y", n + 1);
                    add(&mut b, xr.qubits(), yr.qubits()).unwrap();
                    let c = b.finish();
                    let got = run_basis(&c, &[(xr.qubits(), x), (yr.qubits(), y)], yr.qubits());
                    assert_eq!(
                        u128::from(got),
                        (u128::from(x) + u128::from(y)) % (1u128 << (n + 1))
                    );
                }
            }
        }
    }

    #[test]
    fn phi_add_gate_counts_match_prop_2_5() {
        // count(ΦADD) = n C-R(θ1) + Σ_{i=2}^{n+1} (n+2−i) C-R(θi)
        //             = n + n(n+1)/2 controlled rotations in total.
        let n = 5usize;
        let mut b = CircuitBuilder::new();
        let xr = b.qreg("x", n);
        let yr = b.qreg("y", n + 1);
        qft(&mut b, yr.qubits()).unwrap();
        let before = mbu_circuit::GateCounts::default();
        let _ = before;
        let mut b2 = CircuitBuilder::new();
        let xr2 = b2.qreg("x", n);
        let yr2 = b2.qreg("y", n + 1);
        phi_add(&mut b2, xr2.qubits(), yr2.qubits(), Sign::Plus).unwrap();
        let counts = b2.finish().counts();
        assert_eq!(counts.cphase as usize, n + n * (n + 1) / 2);
        assert_eq!(counts.toffoli, 0);
        drop((xr, yr));
        drop(b);
    }

    #[test]
    fn constant_addition_exhaustive() {
        let n = 3usize;
        for a in 0..(1u128 << n) {
            for y in 0..(1u64 << (n + 1)) {
                let mut b = CircuitBuilder::new();
                let yr = b.qreg("y", n + 1);
                let bits = BitString::from_u128(a, n);
                qft(&mut b, yr.qubits()).unwrap();
                phi_add_const(&mut b, &bits, yr.qubits(), Sign::Plus).unwrap();
                iqft(&mut b, yr.qubits()).unwrap();
                let c = b.finish();
                let got = run_basis(&c, &[(yr.qubits(), y)], yr.qubits());
                assert_eq!(u128::from(got), (a + u128::from(y)) % (1u128 << (n + 1)));
            }
        }
    }

    #[test]
    fn constant_subtraction_wraps_mod_2m() {
        let n = 3usize;
        let m = 1u128 << (n + 1);
        for a in [1u128, 3, 7] {
            for y in [0u64, 5, 12] {
                let mut b = CircuitBuilder::new();
                let yr = b.qreg("y", n + 1);
                let bits = BitString::from_u128(a, n);
                qft(&mut b, yr.qubits()).unwrap();
                phi_add_const(&mut b, &bits, yr.qubits(), Sign::Minus).unwrap();
                iqft(&mut b, yr.qubits()).unwrap();
                let c = b.finish();
                let got = run_basis(&c, &[(yr.qubits(), y)], yr.qubits());
                assert_eq!(u128::from(got), (u128::from(y) + m - a) % m);
            }
        }
    }

    #[test]
    fn controlled_add_respects_control() {
        let n = 2usize;
        for x in 0..(1u64 << n) {
            for y in 0..(1u64 << (n + 1)) {
                for ctrl in [0u64, 1] {
                    let mut b = CircuitBuilder::new();
                    let c = b.qubit();
                    let xr = b.qreg("x", n);
                    let yr = b.qreg("y", n + 1);
                    controlled_add(&mut b, c, xr.qubits(), yr.qubits()).unwrap();
                    let circ = b.finish();
                    let got = run_basis(
                        &circ,
                        &[(&[c], ctrl), (xr.qubits(), x), (yr.qubits(), y)],
                        yr.qubits(),
                    );
                    let expected = if ctrl == 1 {
                        (x + y) % (1u64 << (n + 1))
                    } else {
                        y
                    };
                    assert_eq!(got, expected, "c={ctrl} {x}+{y}");
                }
            }
        }
    }

    #[test]
    fn controlled_add_uses_n_toffolis_one_ancilla() {
        let n = 6usize;
        let mut b = CircuitBuilder::new();
        let c = b.qubit();
        let xr = b.qreg("x", n);
        let yr = b.qreg("y", n + 1);
        controlled_add(&mut b, c, xr.qubits(), yr.qubits()).unwrap();
        assert_eq!(b.ancilla_peak(), 1);
        assert_eq!(b.finish().counts().toffoli, n as u64);
    }

    #[test]
    fn controlled_const_add_truth_table() {
        let n = 3usize;
        let a = 5u128;
        for y in 0..(1u64 << (n + 1)) {
            for ctrl in [0u64, 1] {
                let mut b = CircuitBuilder::new();
                let c = b.qubit();
                let yr = b.qreg("y", n + 1);
                let bits = BitString::from_u128(a, n);
                qft(&mut b, yr.qubits()).unwrap();
                c_phi_add_const(&mut b, c, &bits, yr.qubits(), Sign::Plus).unwrap();
                iqft(&mut b, yr.qubits()).unwrap();
                let circ = b.finish();
                let got = run_basis(&circ, &[(&[c], ctrl), (yr.qubits(), y)], yr.qubits());
                let expected = (u128::from(y) + a * u128::from(ctrl)) % 16;
                assert_eq!(u128::from(got), expected);
            }
        }
    }

    #[test]
    fn doubly_controlled_const_add_needs_both() {
        let n = 2usize;
        let a = 3u128;
        for c1v in [0u64, 1] {
            for c2v in [0u64, 1] {
                let mut b = CircuitBuilder::new();
                let c1 = b.qubit();
                let c2 = b.qubit();
                let yr = b.qreg("y", n + 1);
                let bits = BitString::from_u128(a, n);
                qft(&mut b, yr.qubits()).unwrap();
                cc_phi_add_const(&mut b, c1, c2, &bits, yr.qubits(), Sign::Plus).unwrap();
                iqft(&mut b, yr.qubits()).unwrap();
                let circ = b.finish();
                let got = run_basis(
                    &circ,
                    &[(&[c1], c1v), (&[c2], c2v), (yr.qubits(), 2)],
                    yr.qubits(),
                );
                let expected = (2 + a * u128::from(c1v & c2v)) % 8;
                assert_eq!(u128::from(got), expected);
            }
        }
    }

    #[test]
    fn comparator_exhaustive() {
        let n = 2usize;
        for x in 0..(1u64 << n) {
            for y in 0..(1u64 << n) {
                let mut b = CircuitBuilder::new();
                let xr = b.qreg("x", n);
                let yr = b.qreg("y", n);
                let t = b.qubit();
                compare_gt(&mut b, None, xr.qubits(), yr.qubits(), t).unwrap();
                let circ = b.finish();
                let got = run_basis(&circ, &[(xr.qubits(), x), (yr.qubits(), y)], &[t]);
                assert_eq!(got, u64::from(x > y), "{x}>{y}");
            }
        }
    }

    #[test]
    fn oversized_widths_are_rejected() {
        let mut b = CircuitBuilder::new();
        let r = b.qreg("r", MAX_DRAPER_WIDTH + 1);
        assert!(matches!(
            qft(&mut b, r.qubits()),
            Err(ArithError::ConstantOutOfRange { .. })
        ));
    }

    #[test]
    fn wide_registers_build_with_exact_deep_angles() {
        // Widths past the old u128-angle ceiling: the QFT emits numerator-1
        // rotations down to 2π/2^200, all exact.
        let m = 200usize;
        let mut b = CircuitBuilder::new();
        let r = b.qreg("r", m);
        qft(&mut b, r.qubits()).unwrap();
        iqft(&mut b, r.qubits()).unwrap();
        let counts = b.finish().counts();
        assert_eq!(counts.cphase as usize, m * (m - 1)); // both directions
        assert_eq!(counts.h as usize, 2 * m);
    }

    #[test]
    fn wide_constant_rotations_split_per_set_bit() {
        // A 160-bit constant with bits {0, 150} set: targets i ≤ 127 use
        // the single merged rotation of Equation (7); deeper targets fall
        // back to one rotation per set bit below them.
        let mut a = BitString::zeros(160);
        a.set_bit(0, true);
        a.set_bit(150, true);
        let mut b = CircuitBuilder::new();
        let yr = b.qreg("y", 160);
        phi_add_const(&mut b, &a, yr.qubits(), Sign::Plus).unwrap();
        let counts = b.finish().counts();
        // Targets 0..=127: 1 rotation each. Targets 128..=149: only bit 0
        // contributes (1 rotation). Targets 150..=159: bits 0 and 150 (2).
        assert_eq!(counts.phase as usize, 128 + 22 + 2 * 10);
    }

    #[test]
    fn wide_constant_addition_validates() {
        // 130-bit register, constant 2^129 + 1: past the u128 merged-angle
        // ceiling the circuit still builds and validates. (Functional
        // checks at this width live in the phase backend's tests — a
        // 130-qubit Fourier register is exponential for dense/sparse.)
        let m = 130usize;
        let mut a = BitString::zeros(m);
        a.set_bit(0, true);
        a.set_bit(m - 1, true);
        let mut b = CircuitBuilder::new();
        let yr = b.qreg("y", m);
        qft(&mut b, yr.qubits()).unwrap();
        phi_add_const(&mut b, &a, yr.qubits(), Sign::Plus).unwrap();
        iqft(&mut b, yr.qubits()).unwrap();
        b.finish().validate().unwrap();
    }
}
