//! Gidney's temporary-logical-AND adder (Prop 2.4, Figures 10–13), its
//! controlled variant (Prop 2.11), explicit adjoints (Remark 2.23) and its
//! half-subtractor comparator (Prop 2.28).
//!
//! Every carry is computed by a logical-AND into a fresh ancilla (one
//! Toffoli each, n total) and *uncomputed for free*: an H, an X-basis-style
//! measurement and a classically-controlled CZ (Figure 11) — the original
//! application of measurement-based uncomputation.
//!
//! Because the adder measures, its inverse cannot be taken with
//! [`Circuit::adjoint`](mbu_circuit::Circuit::adjoint); instead [`sub`]
//! implements Remark 2.23 by swapping the roles of AND-compute and
//! AND-uncompute in the reversed circuit.

use mbu_circuit::{Basis, CircuitBuilder, QubitId};

use crate::util::{expect_width, nonempty};
use crate::ArithError;

/// Computes the temporary logical AND `target ⊕= x·y` onto a fresh `|0⟩`
/// ancilla (Figure 10). Counted as one Toffoli, per the paper's convention.
fn and_into(b: &mut CircuitBuilder, x: QubitId, y: QubitId, target: QubitId) {
    b.ccx(x, y, target);
}

/// Uncomputes a temporary logical AND by measurement (Figure 11): H, a
/// computational-basis measurement, a classically-controlled CZ on the
/// inputs, and a (free) reset of the measured ancilla.
fn and_uncompute(b: &mut CircuitBuilder, x: QubitId, y: QubitId, target: QubitId) {
    b.h(target);
    let outcome = b.measure(target, Basis::Z);
    let (_, fix) = b.record(|b| b.cz(x, y));
    b.emit_conditional(outcome, &fix);
    b.reset(target);
}

/// Emits the Gidney plain adder (Prop 2.4, Figure 13):
/// `|x⟩_n |y⟩_{n+1} ↦ |x⟩_n |(y + x) mod 2^{n+1}⟩_{n+1}`.
///
/// Uses n Toffolis (the logical ANDs; the final one targets `y_n` directly
/// and needs no uncomputation) and n−1 carry ancillas.
///
/// # Errors
///
/// Returns [`ArithError::WidthMismatch`] unless `y.len() == x.len() + 1`.
pub fn add(b: &mut CircuitBuilder, x: &[QubitId], y: &[QubitId]) -> Result<(), ArithError> {
    let n = nonempty("Gidney adder", x)?;
    expect_width("Gidney adder target", y, n + 1)?;
    if n == 1 {
        b.ccx(x[0], y[0], y[1]);
        b.cx(x[0], y[0]);
        return Ok(());
    }
    // Carry ancillas a[i] hold c_{i+1}; indices shifted so a[0] = c_1.
    let a = b.ancilla_reg(n - 1);
    let c_of = |k: usize| a[k - 1]; // carry wire c_k for 1 <= k <= n-1

    and_into(b, x[0], y[0], c_of(1));
    for i in 1..n - 1 {
        b.cx(c_of(i), x[i]);
        b.cx(c_of(i), y[i]);
        and_into(b, x[i], y[i], c_of(i + 1));
        b.cx(c_of(i), c_of(i + 1));
    }
    // Top block: the last AND writes into y_n, which keeps c_n = s_n.
    b.cx(c_of(n - 1), x[n - 1]);
    b.cx(c_of(n - 1), y[n - 1]);
    b.ccx(x[n - 1], y[n - 1], y[n]);
    b.cx(c_of(n - 1), y[n]);
    // Fix up position n−1: restore x, write the sum.
    b.cx(c_of(n - 1), x[n - 1]);
    b.cx(x[n - 1], y[n - 1]);
    // Unwind the carries.
    for i in (1..n - 1).rev() {
        b.cx(c_of(i), c_of(i + 1));
        and_uncompute(b, x[i], y[i], c_of(i + 1));
        b.cx(c_of(i), x[i]);
        b.cx(x[i], y[i]);
    }
    and_uncompute(b, x[0], y[0], c_of(1));
    b.cx(x[0], y[0]);
    b.release_ancilla_reg(a);
    Ok(())
}

/// Emits the adjoint of [`add`] (Remark 2.23):
/// `|x⟩_n |y⟩_{n+1} ↦ |x⟩_n |(y − x) mod 2^{n+1}⟩_{n+1}`.
///
/// The op sequence of [`add`] is reversed with AND-computes and
/// AND-uncomputes swapping roles; the data Toffoli onto `y_n` stays a
/// Toffoli.
///
/// # Errors
///
/// Returns [`ArithError::WidthMismatch`] unless `y.len() == x.len() + 1`.
pub fn sub(b: &mut CircuitBuilder, x: &[QubitId], y: &[QubitId]) -> Result<(), ArithError> {
    let n = nonempty("Gidney subtractor", x)?;
    expect_width("Gidney subtractor target", y, n + 1)?;
    if n == 1 {
        b.cx(x[0], y[0]);
        b.ccx(x[0], y[0], y[1]);
        return Ok(());
    }
    let a = b.ancilla_reg(n - 1);
    let c_of = |k: usize| a[k - 1];

    b.cx(x[0], y[0]);
    and_into(b, x[0], y[0], c_of(1));
    for i in 1..n - 1 {
        b.cx(x[i], y[i]);
        b.cx(c_of(i), x[i]);
        and_into(b, x[i], y[i], c_of(i + 1));
        b.cx(c_of(i), c_of(i + 1));
    }
    b.cx(x[n - 1], y[n - 1]);
    b.cx(c_of(n - 1), x[n - 1]);
    b.cx(c_of(n - 1), y[n]);
    b.ccx(x[n - 1], y[n - 1], y[n]);
    b.cx(c_of(n - 1), y[n - 1]);
    b.cx(c_of(n - 1), x[n - 1]);
    for i in (1..n - 1).rev() {
        b.cx(c_of(i), c_of(i + 1));
        and_uncompute(b, x[i], y[i], c_of(i + 1));
        b.cx(c_of(i), y[i]);
        b.cx(c_of(i), x[i]);
    }
    and_uncompute(b, x[0], y[0], c_of(1));
    b.release_ancilla_reg(a);
    Ok(())
}

/// Emits the Gidney adder without a carry-out:
/// `|x⟩_n |y⟩_n ↦ |x⟩_n |(y + x) mod 2^n⟩_n` (n−1 Toffolis).
///
/// # Errors
///
/// Returns [`ArithError::WidthMismatch`] unless `y.len() == x.len()`.
pub fn wrapping_add(
    b: &mut CircuitBuilder,
    x: &[QubitId],
    y: &[QubitId],
) -> Result<(), ArithError> {
    let n = nonempty("Gidney wrapping adder", x)?;
    expect_width("Gidney wrapping adder target", y, n)?;
    if n == 1 {
        b.cx(x[0], y[0]);
        return Ok(());
    }
    let a = b.ancilla_reg(n - 1);
    let c_of = |k: usize| a[k - 1];

    and_into(b, x[0], y[0], c_of(1));
    for i in 1..n - 1 {
        b.cx(c_of(i), x[i]);
        b.cx(c_of(i), y[i]);
        and_into(b, x[i], y[i], c_of(i + 1));
        b.cx(c_of(i), c_of(i + 1));
    }
    // s_{n−1} = y ⊕ c ⊕ x; x_{n−1} was never disturbed.
    b.cx(c_of(n - 1), y[n - 1]);
    b.cx(x[n - 1], y[n - 1]);
    for i in (1..n - 1).rev() {
        b.cx(c_of(i), c_of(i + 1));
        and_uncompute(b, x[i], y[i], c_of(i + 1));
        b.cx(c_of(i), x[i]);
        b.cx(x[i], y[i]);
    }
    and_uncompute(b, x[0], y[0], c_of(1));
    b.cx(x[0], y[0]);
    b.release_ancilla_reg(a);
    Ok(())
}

/// Emits the adjoint of [`wrapping_add`]:
/// `|x⟩_n |y⟩_n ↦ |x⟩_n |(y − x) mod 2^n⟩_n`.
///
/// # Errors
///
/// Returns [`ArithError::WidthMismatch`] unless `y.len() == x.len()`.
pub fn wrapping_sub(
    b: &mut CircuitBuilder,
    x: &[QubitId],
    y: &[QubitId],
) -> Result<(), ArithError> {
    let n = nonempty("Gidney wrapping subtractor", x)?;
    expect_width("Gidney wrapping subtractor target", y, n)?;
    if n == 1 {
        b.cx(x[0], y[0]);
        return Ok(());
    }
    let a = b.ancilla_reg(n - 1);
    let c_of = |k: usize| a[k - 1];

    b.cx(x[0], y[0]);
    and_into(b, x[0], y[0], c_of(1));
    for i in 1..n - 1 {
        b.cx(x[i], y[i]);
        b.cx(c_of(i), x[i]);
        and_into(b, x[i], y[i], c_of(i + 1));
        b.cx(c_of(i), c_of(i + 1));
    }
    b.cx(x[n - 1], y[n - 1]);
    b.cx(c_of(n - 1), y[n - 1]);
    for i in (1..n - 1).rev() {
        b.cx(c_of(i), c_of(i + 1));
        and_uncompute(b, x[i], y[i], c_of(i + 1));
        b.cx(c_of(i), y[i]);
        b.cx(c_of(i), x[i]);
    }
    and_uncompute(b, x[0], y[0], c_of(1));
    b.release_ancilla_reg(a);
    Ok(())
}

/// Emits Gidney's controlled adder (Prop 2.11, Figure 15):
/// `|c⟩ |x⟩_n |y⟩_{n+1} ↦ |c⟩ |x⟩_n |(y + c·x) mod 2^{n+1}⟩_{n+1}`.
///
/// Carries are computed unconditionally; only the sum write-backs are
/// controlled. Costs 2n+1 Toffolis and n carry ancillas (the paper states
/// 2n and n+1; see DESIGN.md on ±1 accounting).
///
/// # Errors
///
/// Returns [`ArithError::WidthMismatch`] unless `y.len() == x.len() + 1`.
pub fn controlled_add(
    b: &mut CircuitBuilder,
    control: QubitId,
    x: &[QubitId],
    y: &[QubitId],
) -> Result<(), ArithError> {
    let n = nonempty("controlled Gidney adder", x)?;
    expect_width("controlled Gidney adder target", y, n + 1)?;
    let a = b.ancilla_reg(n);
    let c_of = |k: usize| a[k - 1]; // c_k for 1 <= k <= n

    and_into(b, x[0], y[0], c_of(1));
    for i in 1..n {
        b.cx(c_of(i), x[i]);
        b.cx(c_of(i), y[i]);
        and_into(b, x[i], y[i], c_of(i + 1));
        b.cx(c_of(i), c_of(i + 1));
    }
    // Controlled copy of the carry-out, then uncompute c_n.
    b.ccx(control, c_of(n), y[n]);
    if n >= 2 {
        b.cx(c_of(n - 1), c_of(n));
    }
    and_uncompute(b, x[n - 1], y[n - 1], c_of(n));
    // Controlled UMA blocks, descending.
    for i in (1..n).rev() {
        if i < n - 1 {
            b.cx(c_of(i), c_of(i + 1));
            and_uncompute(b, x[i], y[i], c_of(i + 1));
        }
        b.cx(c_of(i), y[i]); // strip the carry: y wire → y_i
        b.ccx(control, x[i], y[i]); // y_i ⊕= control·(x_i ⊕ c_i)
        b.cx(c_of(i), x[i]); // restore x_i
    }
    if n >= 2 {
        and_uncompute(b, x[0], y[0], c_of(1));
    }
    b.ccx(control, x[0], y[0]);
    b.release_ancilla_reg(a);
    Ok(())
}

/// Emits the Gidney half-subtractor comparator (Prop 2.28): `t ⊕= 1[x > y]`
/// or `t ⊕= control·1[x > y]` (Prop 2.31), leaving `x`, `y` unchanged.
///
/// Uses n logical ANDs (n Toffolis, +1 for the controlled copy) and n carry
/// ancillas, all uncomputed by measurement.
///
/// # Errors
///
/// Returns [`ArithError::WidthMismatch`] unless `x.len() == y.len()`.
pub fn compare_gt(
    b: &mut CircuitBuilder,
    control: Option<QubitId>,
    x: &[QubitId],
    y: &[QubitId],
    t: QubitId,
) -> Result<(), ArithError> {
    let n = nonempty("Gidney comparator", x)?;
    expect_width("Gidney comparator second operand", y, n)?;
    for &q in y {
        b.x(q);
    }
    let a = b.ancilla_reg(n);
    let c_of = |k: usize| a[k - 1];

    and_into(b, x[0], y[0], c_of(1));
    for i in 1..n {
        b.cx(c_of(i), x[i]);
        b.cx(c_of(i), y[i]);
        and_into(b, x[i], y[i], c_of(i + 1));
        b.cx(c_of(i), c_of(i + 1));
    }
    match control {
        None => b.cx(c_of(n), t),
        Some(c) => b.ccx(c, c_of(n), t),
    }
    for i in (1..n).rev() {
        b.cx(c_of(i), c_of(i + 1));
        and_uncompute(b, x[i], y[i], c_of(i + 1));
        b.cx(c_of(i), y[i]);
        b.cx(c_of(i), x[i]);
    }
    and_uncompute(b, x[0], y[0], c_of(1));
    b.release_ancilla_reg(a);
    for &q in y {
        b.x(q);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbu_circuit::CircuitBuilder;
    use mbu_sim::BasisTracker;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Runs a Gidney circuit on basis inputs over several seeds so both
    /// branches of each AND-uncompute measurement are exercised, checking
    /// value and phase on every seed.
    fn check_all_seeds(
        n_qubits: usize,
        circuit: &mbu_circuit::Circuit,
        inputs: &[(&[QubitId], u128)],
        out: &[QubitId],
        expected: u128,
    ) {
        circuit.validate().unwrap();
        for seed in 0..6 {
            let mut sim = BasisTracker::zeros(n_qubits);
            for (reg, v) in inputs {
                sim.set_value(reg, *v).unwrap();
            }
            let mut rng = StdRng::seed_from_u64(seed);
            sim.run(circuit, &mut rng).unwrap();
            assert_eq!(sim.value(out).unwrap(), expected, "seed {seed}");
            assert!(sim.global_phase().is_zero(), "phase at seed {seed}");
        }
    }

    #[test]
    fn adds_exhaustively_for_small_n() {
        for n in 1..=4usize {
            for x in 0..(1u128 << n) {
                for y in 0..(1u128 << (n + 1)) {
                    let mut b = CircuitBuilder::new();
                    let xr = b.qreg("x", n);
                    let yr = b.qreg("y", n + 1);
                    add(&mut b, xr.qubits(), yr.qubits()).unwrap();
                    let c = b.finish();
                    check_all_seeds(
                        c.num_qubits(),
                        &c,
                        &[(xr.qubits(), x), (yr.qubits(), y)],
                        yr.qubits(),
                        (x + y) % (1u128 << (n + 1)),
                    );
                }
            }
        }
    }

    #[test]
    fn toffoli_count_is_n() {
        for n in [1usize, 2, 5, 20] {
            let mut b = CircuitBuilder::new();
            let xr = b.qreg("x", n);
            let yr = b.qreg("y", n + 1);
            add(&mut b, xr.qubits(), yr.qubits()).unwrap();
            let counts = b.finish().counts();
            assert_eq!(counts.toffoli, n as u64, "n={n}");
            // The ANDs (minus the one kept as s_n) are uncomputed by
            // measurement: n−1 measurements, n−1 conditional CZs.
            assert_eq!(counts.measure_z, n as u64 - 1);
            assert_eq!(counts.cz, n as u64 - 1);
        }
    }

    #[test]
    fn expected_cz_is_half_the_worst_case() {
        let n = 9usize;
        let mut b = CircuitBuilder::new();
        let xr = b.qreg("x", n);
        let yr = b.qreg("y", n + 1);
        add(&mut b, xr.qubits(), yr.qubits()).unwrap();
        let c = b.finish();
        assert_eq!(c.expected_counts().cz, (n as f64 - 1.0) / 2.0);
    }

    #[test]
    fn sub_inverts_add_exhaustively() {
        for n in 1..=3usize {
            for x in 0..(1u128 << n) {
                for y in 0..(1u128 << (n + 1)) {
                    let mut b = CircuitBuilder::new();
                    let xr = b.qreg("x", n);
                    let yr = b.qreg("y", n + 1);
                    sub(&mut b, xr.qubits(), yr.qubits()).unwrap();
                    let c = b.finish();
                    let m = 1u128 << (n + 1);
                    check_all_seeds(
                        c.num_qubits(),
                        &c,
                        &[(xr.qubits(), x), (yr.qubits(), y)],
                        yr.qubits(),
                        (y + m - x) % m,
                    );
                }
            }
        }
    }

    #[test]
    fn add_then_sub_is_identity_at_width_64() {
        let n = 64usize;
        let x = 0x0123_4567_89AB_CDEFu128;
        let y = 0x1122_3344_5566_7788u128;
        let mut b = CircuitBuilder::new();
        let xr = b.qreg("x", n);
        let yr = b.qreg("y", n + 1);
        add(&mut b, xr.qubits(), yr.qubits()).unwrap();
        sub(&mut b, xr.qubits(), yr.qubits()).unwrap();
        let c = b.finish();
        check_all_seeds(
            c.num_qubits(),
            &c,
            &[(xr.qubits(), x), (yr.qubits(), y)],
            yr.qubits(),
            y,
        );
    }

    #[test]
    fn wrapping_add_and_sub_match_reference() {
        for n in 1..=3usize {
            for x in 0..(1u128 << n) {
                for y in 0..(1u128 << n) {
                    let m = 1u128 << n;
                    let mut b = CircuitBuilder::new();
                    let xr = b.qreg("x", n);
                    let yr = b.qreg("y", n);
                    wrapping_add(&mut b, xr.qubits(), yr.qubits()).unwrap();
                    let c = b.finish();
                    check_all_seeds(
                        c.num_qubits(),
                        &c,
                        &[(xr.qubits(), x), (yr.qubits(), y)],
                        yr.qubits(),
                        (x + y) % m,
                    );

                    let mut b = CircuitBuilder::new();
                    let xr = b.qreg("x", n);
                    let yr = b.qreg("y", n);
                    wrapping_sub(&mut b, xr.qubits(), yr.qubits()).unwrap();
                    let c = b.finish();
                    check_all_seeds(
                        c.num_qubits(),
                        &c,
                        &[(xr.qubits(), x), (yr.qubits(), y)],
                        yr.qubits(),
                        (y + m - x) % m,
                    );
                }
            }
        }
    }

    #[test]
    fn controlled_add_exhaustive_small() {
        for n in 1..=3usize {
            for x in 0..(1u128 << n) {
                for y in 0..(1u128 << (n + 1)) {
                    for ctrl in [false, true] {
                        let mut b = CircuitBuilder::new();
                        let c = b.qubit();
                        let xr = b.qreg("x", n);
                        let yr = b.qreg("y", n + 1);
                        controlled_add(&mut b, c, xr.qubits(), yr.qubits()).unwrap();
                        let circ = b.finish();
                        let expected = if ctrl {
                            (x + y) % (1u128 << (n + 1))
                        } else {
                            y
                        };
                        check_all_seeds(
                            circ.num_qubits(),
                            &circ,
                            &[(&[c], u128::from(ctrl)), (xr.qubits(), x), (yr.qubits(), y)],
                            yr.qubits(),
                            expected,
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn controlled_add_toffoli_count_is_2n_plus_1() {
        let n = 8usize;
        let mut b = CircuitBuilder::new();
        let c = b.qubit();
        let xr = b.qreg("x", n);
        let yr = b.qreg("y", n + 1);
        controlled_add(&mut b, c, xr.qubits(), yr.qubits()).unwrap();
        assert_eq!(b.ancilla_peak(), n);
        assert_eq!(b.finish().counts().toffoli, 2 * n as u64 + 1);
    }

    #[test]
    fn comparator_exhaustive_and_restoring() {
        let n = 3usize;
        for x in 0..(1u128 << n) {
            for y in 0..(1u128 << n) {
                let mut b = CircuitBuilder::new();
                let xr = b.qreg("x", n);
                let yr = b.qreg("y", n);
                let t = b.qubit();
                compare_gt(&mut b, None, xr.qubits(), yr.qubits(), t).unwrap();
                let c = b.finish();
                for seed in 0..4 {
                    let mut sim = BasisTracker::zeros(c.num_qubits());
                    sim.set_value(xr.qubits(), x).unwrap();
                    sim.set_value(yr.qubits(), y).unwrap();
                    let mut rng = StdRng::seed_from_u64(seed);
                    sim.run(&c, &mut rng).unwrap();
                    assert_eq!(sim.bit(t).unwrap(), x > y, "{x}>{y}");
                    assert_eq!(sim.value(xr.qubits()).unwrap(), x);
                    assert_eq!(sim.value(yr.qubits()).unwrap(), y);
                    assert!(sim.global_phase().is_zero());
                }
            }
        }
    }

    #[test]
    fn comparator_uses_n_toffolis() {
        let n = 10usize;
        let mut b = CircuitBuilder::new();
        let xr = b.qreg("x", n);
        let yr = b.qreg("y", n);
        let t = b.qubit();
        compare_gt(&mut b, None, xr.qubits(), yr.qubits(), t).unwrap();
        assert_eq!(b.ancilla_peak(), n);
        assert_eq!(b.finish().counts().toffoli, n as u64);
    }

    #[test]
    fn controlled_comparator_truth_table() {
        let n = 2usize;
        for x in 0..4u128 {
            for y in 0..4u128 {
                for ctrl in [false, true] {
                    let mut b = CircuitBuilder::new();
                    let c = b.qubit();
                    let xr = b.qreg("x", n);
                    let yr = b.qreg("y", n);
                    let t = b.qubit();
                    compare_gt(&mut b, Some(c), xr.qubits(), yr.qubits(), t).unwrap();
                    let circ = b.finish();
                    for seed in 0..3 {
                        let mut sim = BasisTracker::zeros(circ.num_qubits());
                        sim.set_bit(c, ctrl).unwrap();
                        sim.set_value(xr.qubits(), x).unwrap();
                        sim.set_value(yr.qubits(), y).unwrap();
                        let mut rng = StdRng::seed_from_u64(seed);
                        sim.run(&circ, &mut rng).unwrap();
                        assert_eq!(sim.bit(t).unwrap(), ctrl && x > y);
                        assert!(sim.global_phase().is_zero());
                    }
                }
            }
        }
    }

    #[test]
    fn statevector_agrees_on_superposition_input() {
        // The measured adder must act linearly: on a superposition of x
        // values the output must be the superposition of sums, with no
        // relative phase errors from the AND uncomputations.
        use mbu_sim::StateVector;
        let n = 3usize;
        let mut b = CircuitBuilder::new();
        let xr = b.qreg("x", n);
        let yr = b.qreg("y", n + 1);
        // Prepare x in uniform superposition first.
        for q in xr.iter() {
            b.h(q);
        }
        add(&mut b, xr.qubits(), yr.qubits()).unwrap();
        let c = b.finish();
        let y0 = 5u64;
        for seed in 0..8 {
            let mut sv = StateVector::zeros(c.num_qubits()).unwrap();
            sv.prepare_basis(StateVector::index_with(&[(yr.qubits(), y0)]))
                .unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            sv.run(&c, &mut rng).unwrap();
            // Expected: (1/√8) Σ_x |x⟩|x+5⟩ — check every component's
            // amplitude is positive real 1/√8.
            for x in 0..(1u64 << n) {
                let idx =
                    StateVector::index_with(&[(xr.qubits(), x), (yr.qubits(), (x + y0) % 16)]);
                let amp = sv.amplitude(idx);
                assert!(
                    (amp.re - (1.0 / 8f64.sqrt())).abs() < 1e-9 && amp.im.abs() < 1e-9,
                    "seed {seed}, x={x}: amp {amp}"
                );
            }
        }
    }
}
