//! The Cuccaro–Draper–Kutin–Petrie-Moulton (CDKPM) ripple-carry adder
//! (Prop 2.3, Figures 6–9), its single-ancilla controlled variant
//! (Theorem 2.12) and its half-subtractor comparator (Prop 2.27).
//!
//! The CDKPM adder rides the carry on the `x` wires via the in-place
//! majority gate `MAJ` and undoes it with `UMA` ("UnMajority and Add"),
//! needing only a single ancilla — 2n Toffolis and 4n+1 CNOTs.

use mbu_circuit::{CircuitBuilder, QubitId};

use crate::util::{expect_width, nonempty};
use crate::ArithError;

/// The MAJ gate (Figure 6):
/// `|c, y, x⟩ ↦ |c⊕x, y⊕x, maj(x, y, c)⟩`.
fn maj(b: &mut CircuitBuilder, c: QubitId, y: QubitId, x: QubitId) {
    b.cx(x, y);
    b.cx(x, c);
    b.ccx(c, y, x);
}

/// The adjoint of [`maj`].
fn maj_dag(b: &mut CircuitBuilder, c: QubitId, y: QubitId, x: QubitId) {
    b.ccx(c, y, x);
    b.cx(x, c);
    b.cx(x, y);
}

/// The 2-CNOT UMA gate (Figure 7):
/// `|c⊕x, y⊕x, maj(x,y,c)⟩ ↦ |c, x⊕y⊕c, x⟩`.
fn uma(b: &mut CircuitBuilder, c: QubitId, y: QubitId, x: QubitId) {
    b.ccx(c, y, x);
    b.cx(x, c);
    b.cx(c, y);
}

/// The controlled UMA gate (Figure 16 / Theorem 2.12): restores `c` and `x`
/// unconditionally and writes the sum only when `control` is set:
/// `y ↦ y ⊕ control·(x ⊕ c)`.
fn cuma(b: &mut CircuitBuilder, control: QubitId, c: QubitId, y: QubitId, x: QubitId) {
    b.ccx(c, y, x); // restore x
    b.ccx(control, c, y); // y ⊕= control·(c ⊕ x)  [c wire holds c⊕x]
    b.cx(x, c); // restore c
    b.cx(x, y); // y ⊕= x, cancelling MAJ's unconditional y ⊕= x
}

/// The carry wire feeding position `k`: the ancilla for `k = 0`, otherwise
/// `x_{k−1}`.
fn carry_wire(anc: QubitId, x: &[QubitId], k: usize) -> QubitId {
    if k == 0 {
        anc
    } else {
        x[k - 1]
    }
}

/// Emits the CDKPM plain adder (Prop 2.3, Figure 8):
/// `|x⟩_n |y⟩_{n+1} ↦ |x⟩_n |(y + x) mod 2^{n+1}⟩_{n+1}`.
///
/// Uses one ancilla (2n Toffolis, 4n+1 CNOTs).
///
/// # Errors
///
/// Returns [`ArithError::WidthMismatch`] unless `y.len() == x.len() + 1`.
pub fn add(b: &mut CircuitBuilder, x: &[QubitId], y: &[QubitId]) -> Result<(), ArithError> {
    let n = nonempty("CDKPM adder", x)?;
    expect_width("CDKPM adder target", y, n + 1)?;
    let anc = b.ancilla();
    for k in 0..n {
        maj(b, carry_wire(anc, x, k), y[k], x[k]);
    }
    b.cx(x[n - 1], y[n]);
    for k in (0..n).rev() {
        uma(b, carry_wire(anc, x, k), y[k], x[k]);
    }
    b.release_ancilla(anc);
    Ok(())
}

/// Emits the CDKPM adder without a carry-out:
/// `|x⟩_n |y⟩_n ↦ |x⟩_n |(y + x) mod 2^n⟩_n`.
///
/// # Errors
///
/// Returns [`ArithError::WidthMismatch`] unless `y.len() == x.len()`.
pub fn wrapping_add(
    b: &mut CircuitBuilder,
    x: &[QubitId],
    y: &[QubitId],
) -> Result<(), ArithError> {
    let n = nonempty("CDKPM wrapping adder", x)?;
    expect_width("CDKPM wrapping adder target", y, n)?;
    let anc = b.ancilla();
    for k in 0..n {
        maj(b, carry_wire(anc, x, k), y[k], x[k]);
    }
    for k in (0..n).rev() {
        uma(b, carry_wire(anc, x, k), y[k], x[k]);
    }
    b.release_ancilla(anc);
    Ok(())
}

/// Emits the controlled CDKPM adder with a single ancilla (Theorem 2.12):
/// `|c⟩ |x⟩_n |y⟩_{n+1} ↦ |c⟩ |x⟩_n |(y + c·x) mod 2^{n+1}⟩_{n+1}`.
///
/// Costs 3n+1 Toffolis (the paper states 3n; the +1 is the controlled
/// carry-out copy, see DESIGN.md).
///
/// # Errors
///
/// Returns [`ArithError::WidthMismatch`] unless `y.len() == x.len() + 1`.
pub fn controlled_add(
    b: &mut CircuitBuilder,
    control: QubitId,
    x: &[QubitId],
    y: &[QubitId],
) -> Result<(), ArithError> {
    let n = nonempty("controlled CDKPM adder", x)?;
    expect_width("controlled CDKPM adder target", y, n + 1)?;
    let anc = b.ancilla();
    for k in 0..n {
        maj(b, carry_wire(anc, x, k), y[k], x[k]);
    }
    b.ccx(control, x[n - 1], y[n]);
    for k in (0..n).rev() {
        cuma(b, control, carry_wire(anc, x, k), y[k], x[k]);
    }
    b.release_ancilla(anc);
    Ok(())
}

/// Emits the controlled CDKPM adder without a carry-out:
/// `|c⟩ |x⟩_n |y⟩_n ↦ |c⟩ |x⟩_n |(y + c·x) mod 2^n⟩_n`.
///
/// # Errors
///
/// Returns [`ArithError::WidthMismatch`] unless `y.len() == x.len()`.
pub fn controlled_wrapping_add(
    b: &mut CircuitBuilder,
    control: QubitId,
    x: &[QubitId],
    y: &[QubitId],
) -> Result<(), ArithError> {
    let n = nonempty("controlled CDKPM wrapping adder", x)?;
    expect_width("controlled CDKPM wrapping adder target", y, n)?;
    let anc = b.ancilla();
    for k in 0..n {
        maj(b, carry_wire(anc, x, k), y[k], x[k]);
    }
    for k in (0..n).rev() {
        cuma(b, control, carry_wire(anc, x, k), y[k], x[k]);
    }
    b.release_ancilla(anc);
    Ok(())
}

/// Emits the CDKPM half-subtractor comparator (Prop 2.27, Figure 21):
/// `t ⊕= 1[x > y]`, or `t ⊕= control·1[x > y]` when a control is given
/// (Prop 2.30); `x` and `y` are unchanged.
///
/// Implementation: `1[x > y]` is the carry out of `x + ȳ`, computed with a
/// MAJ chain over the complemented `y`, copied to `t`, then unwound — half
/// the work of a full subtract-compare-add.
///
/// # Errors
///
/// Returns [`ArithError::WidthMismatch`] unless `x.len() == y.len()`.
pub fn compare_gt(
    b: &mut CircuitBuilder,
    control: Option<QubitId>,
    x: &[QubitId],
    y: &[QubitId],
    t: QubitId,
) -> Result<(), ArithError> {
    let n = nonempty("CDKPM comparator", x)?;
    expect_width("CDKPM comparator second operand", y, n)?;
    for &q in y {
        b.x(q);
    }
    let anc = b.ancilla();
    for k in 0..n {
        maj(b, carry_wire(anc, x, k), y[k], x[k]);
    }
    match control {
        None => b.cx(x[n - 1], t),
        Some(c) => b.ccx(c, x[n - 1], t),
    }
    for k in (0..n).rev() {
        maj_dag(b, carry_wire(anc, x, k), y[k], x[k]);
    }
    b.release_ancilla(anc);
    for &q in y {
        b.x(q);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbu_circuit::CircuitBuilder;
    use mbu_sim::BasisTracker;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn simulate(
        build: impl FnOnce(&mut CircuitBuilder) -> (Vec<(Vec<QubitId>, u128)>, Vec<QubitId>),
    ) -> (u128, mbu_circuit::Angle) {
        let mut b = CircuitBuilder::new();
        let (inputs, out) = build(&mut b);
        let circuit = b.finish();
        circuit.validate().unwrap();
        let mut sim = BasisTracker::zeros(circuit.num_qubits());
        for (reg, v) in &inputs {
            sim.set_value(reg, *v).unwrap();
        }
        let mut rng = StdRng::seed_from_u64(0);
        sim.run(&circuit, &mut rng).unwrap();
        (sim.value(&out).unwrap(), sim.global_phase())
    }

    #[test]
    fn adds_exhaustively_for_small_n() {
        for n in 1..=4usize {
            for x in 0..(1u128 << n) {
                for y in 0..(1u128 << (n + 1)) {
                    let (got, phase) = simulate(|b| {
                        let xr = b.qreg("x", n);
                        let yr = b.qreg("y", n + 1);
                        add(b, xr.qubits(), yr.qubits()).unwrap();
                        (
                            vec![(xr.qubits().to_vec(), x), (yr.qubits().to_vec(), y)],
                            yr.qubits().to_vec(),
                        )
                    });
                    assert_eq!(got, (x + y) % (1u128 << (n + 1)), "{x}+{y} n={n}");
                    assert!(phase.is_zero());
                }
            }
        }
    }

    #[test]
    fn toffoli_count_is_2n_and_cnot_4n_plus_1() {
        for n in [1usize, 4, 11, 32] {
            let mut b = CircuitBuilder::new();
            let xr = b.qreg("x", n);
            let yr = b.qreg("y", n + 1);
            add(&mut b, xr.qubits(), yr.qubits()).unwrap();
            assert_eq!(b.ancilla_peak(), 1);
            let counts = b.finish().counts();
            assert_eq!(counts.toffoli, 2 * n as u64, "n={n}");
            assert_eq!(counts.cx, 4 * n as u64 + 1, "n={n}");
        }
    }

    #[test]
    fn controlled_add_respects_control() {
        let n = 4usize;
        for x in [0u128, 5, 9, 15] {
            for y in [0u128, 7, 21, 31] {
                for ctrl in [false, true] {
                    let (got, phase) = simulate(|b| {
                        let c = b.qubit();
                        let xr = b.qreg("x", n);
                        let yr = b.qreg("y", n + 1);
                        controlled_add(b, c, xr.qubits(), yr.qubits()).unwrap();
                        (
                            vec![
                                (vec![c], u128::from(ctrl)),
                                (xr.qubits().to_vec(), x),
                                (yr.qubits().to_vec(), y),
                            ],
                            yr.qubits().to_vec(),
                        )
                    });
                    let expected = if ctrl { (x + y) % 32 } else { y };
                    assert_eq!(got, expected, "c={ctrl} {x}+{y}");
                    assert!(phase.is_zero());
                }
            }
        }
    }

    #[test]
    fn controlled_add_exhaustive_small() {
        let n = 2usize;
        for x in 0..4u128 {
            for y in 0..8u128 {
                for ctrl in [false, true] {
                    let (got, _) = simulate(|b| {
                        let c = b.qubit();
                        let xr = b.qreg("x", n);
                        let yr = b.qreg("y", n + 1);
                        controlled_add(b, c, xr.qubits(), yr.qubits()).unwrap();
                        (
                            vec![
                                (vec![c], u128::from(ctrl)),
                                (xr.qubits().to_vec(), x),
                                (yr.qubits().to_vec(), y),
                            ],
                            yr.qubits().to_vec(),
                        )
                    });
                    let expected = if ctrl { (x + y) % 8 } else { y };
                    assert_eq!(got, expected);
                }
            }
        }
    }

    #[test]
    fn controlled_add_uses_3n_plus_1_toffolis_and_1_ancilla() {
        let n = 9usize;
        let mut b = CircuitBuilder::new();
        let c = b.qubit();
        let xr = b.qreg("x", n);
        let yr = b.qreg("y", n + 1);
        controlled_add(&mut b, c, xr.qubits(), yr.qubits()).unwrap();
        assert_eq!(b.ancilla_peak(), 1);
        assert_eq!(b.finish().counts().toffoli, 3 * n as u64 + 1);
    }

    #[test]
    fn comparator_matches_reference_exhaustively() {
        let n = 3usize;
        for x in 0..(1u128 << n) {
            for y in 0..(1u128 << n) {
                let (got, phase) = simulate(|b| {
                    let xr = b.qreg("x", n);
                    let yr = b.qreg("y", n);
                    let t = b.qubit();
                    compare_gt(b, None, xr.qubits(), yr.qubits(), t).unwrap();
                    (
                        vec![(xr.qubits().to_vec(), x), (yr.qubits().to_vec(), y)],
                        vec![t],
                    )
                });
                assert_eq!(got, u128::from(x > y), "{x}>{y}");
                assert!(phase.is_zero());
            }
        }
    }

    #[test]
    fn comparator_restores_operands() {
        let n = 5usize;
        let (x, y) = (19u128, 27u128);
        let mut b = CircuitBuilder::new();
        let xr = b.qreg("x", n);
        let yr = b.qreg("y", n);
        let t = b.qubit();
        compare_gt(&mut b, None, xr.qubits(), yr.qubits(), t).unwrap();
        let circuit = b.finish();
        let mut sim = BasisTracker::zeros(circuit.num_qubits());
        sim.set_value(xr.qubits(), x).unwrap();
        sim.set_value(yr.qubits(), y).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        sim.run(&circuit, &mut rng).unwrap();
        assert_eq!(sim.value(xr.qubits()).unwrap(), x);
        assert_eq!(sim.value(yr.qubits()).unwrap(), y);
    }

    #[test]
    fn comparator_toffoli_count_is_2n_uncontrolled() {
        let n = 6usize;
        let mut b = CircuitBuilder::new();
        let xr = b.qreg("x", n);
        let yr = b.qreg("y", n);
        let t = b.qubit();
        compare_gt(&mut b, None, xr.qubits(), yr.qubits(), t).unwrap();
        let counts = b.finish().counts();
        assert_eq!(counts.toffoli, 2 * n as u64);
        assert_eq!(counts.cx, 4 * n as u64 + 1);
    }

    #[test]
    fn controlled_comparator_adds_one_toffoli() {
        let n = 6usize;
        let mut b = CircuitBuilder::new();
        let c = b.qubit();
        let xr = b.qreg("x", n);
        let yr = b.qreg("y", n);
        let t = b.qubit();
        compare_gt(&mut b, Some(c), xr.qubits(), yr.qubits(), t).unwrap();
        assert_eq!(b.finish().counts().toffoli, 2 * n as u64 + 1);
    }

    #[test]
    fn controlled_comparator_truth_table() {
        let n = 3usize;
        for x in 0..(1u128 << n) {
            for y in [0u128, 3, 7] {
                for ctrl in [false, true] {
                    let (got, _) = simulate(|b| {
                        let c = b.qubit();
                        let xr = b.qreg("x", n);
                        let yr = b.qreg("y", n);
                        let t = b.qubit();
                        compare_gt(b, Some(c), xr.qubits(), yr.qubits(), t).unwrap();
                        (
                            vec![
                                (vec![c], u128::from(ctrl)),
                                (xr.qubits().to_vec(), x),
                                (yr.qubits().to_vec(), y),
                            ],
                            vec![t],
                        )
                    });
                    assert_eq!(got, u128::from(ctrl && x > y));
                }
            }
        }
    }

    #[test]
    fn wrapping_add_is_mod_2n() {
        for n in 1..=3usize {
            for x in 0..(1u128 << n) {
                for y in 0..(1u128 << n) {
                    let (got, _) = simulate(|b| {
                        let xr = b.qreg("x", n);
                        let yr = b.qreg("y", n);
                        wrapping_add(b, xr.qubits(), yr.qubits()).unwrap();
                        (
                            vec![(xr.qubits().to_vec(), x), (yr.qubits().to_vec(), y)],
                            yr.qubits().to_vec(),
                        )
                    });
                    assert_eq!(got, (x + y) % (1u128 << n));
                }
            }
        }
    }

    #[test]
    fn controlled_wrapping_add_respects_control() {
        let n = 3usize;
        for x in 0..(1u128 << n) {
            for y in [0u128, 5, 7] {
                for ctrl in [false, true] {
                    let (got, _) = simulate(|b| {
                        let c = b.qubit();
                        let xr = b.qreg("x", n);
                        let yr = b.qreg("y", n);
                        controlled_wrapping_add(b, c, xr.qubits(), yr.qubits()).unwrap();
                        (
                            vec![
                                (vec![c], u128::from(ctrl)),
                                (xr.qubits().to_vec(), x),
                                (yr.qubits().to_vec(), y),
                            ],
                            yr.qubits().to_vec(),
                        )
                    });
                    let expected = if ctrl { (x + y) % (1u128 << n) } else { y };
                    assert_eq!(got, expected);
                }
            }
        }
    }
}
