//! The Vedral–Barenco–Ekert (VBE) plain adder (Prop 2.2, Figures 4–5) and
//! its carry-chain comparator.
//!
//! The VBE adder ripples carries through a dedicated `n`-qubit carry
//! register using the `CARRY` and `SUM` gates of Figure 4. It is the
//! historically first quantum adder and the costliest (≈4n Toffolis,
//! n ancillas), kept both for the paper's Table 1 "(4/5 adder) VBE" rows and
//! as the architecture the original modular adder of \[VBE96\] is built on.

use mbu_circuit::{CircuitBuilder, QubitId};

use crate::util::nonempty;
use crate::ArithError;

/// The CARRY gate of Figure 4:
/// `|c, x, y, c'⟩ ↦ |c, x, y⊕x, c' ⊕ maj(x, y, c)⟩`.
fn carry(b: &mut CircuitBuilder, c: QubitId, x: QubitId, y: QubitId, cout: QubitId) {
    b.ccx(x, y, cout);
    b.cx(x, y);
    b.ccx(c, y, cout);
}

/// The adjoint of [`carry`].
fn carry_dag(b: &mut CircuitBuilder, c: QubitId, x: QubitId, y: QubitId, cout: QubitId) {
    b.ccx(c, y, cout);
    b.cx(x, y);
    b.ccx(x, y, cout);
}

/// The SUM gate of Figure 4: `|c, x, y⟩ ↦ |c, x, y⊕x⊕c⟩`.
fn sum(b: &mut CircuitBuilder, c: QubitId, x: QubitId, y: QubitId) {
    b.cx(x, y);
    b.cx(c, y);
}

/// Emits the VBE plain adder (Prop 2.2, Figure 5):
/// `|x⟩_n |y⟩_{n+1} ↦ |x⟩_n |(y + x) mod 2^{n+1}⟩_{n+1}`.
///
/// Allocates and releases `n` carry ancillas from the builder's pool.
///
/// # Errors
///
/// Returns [`ArithError::WidthMismatch`] unless `y.len() == x.len() + 1`.
pub fn add(b: &mut CircuitBuilder, x: &[QubitId], y: &[QubitId]) -> Result<(), ArithError> {
    let n = nonempty("VBE adder", x)?;
    crate::util::expect_width("VBE adder target", y, n + 1)?;
    let c = b.ancilla_reg(n);
    for k in 0..n {
        let cout = if k < n - 1 { c[k + 1] } else { y[n] };
        carry(b, c[k], x[k], y[k], cout);
    }
    b.cx(x[n - 1], y[n - 1]);
    sum(b, c[n - 1], x[n - 1], y[n - 1]);
    for k in (0..n - 1).rev() {
        carry_dag(b, c[k], x[k], y[k], c[k + 1]);
        sum(b, c[k], x[k], y[k]);
    }
    b.release_ancilla_reg(c);
    Ok(())
}

/// Emits the VBE adder without a carry-out:
/// `|x⟩_n |y⟩_n ↦ |x⟩_n |(y + x) mod 2^n⟩_n`.
///
/// # Errors
///
/// Returns [`ArithError::WidthMismatch`] unless `y.len() == x.len()`.
pub fn wrapping_add(
    b: &mut CircuitBuilder,
    x: &[QubitId],
    y: &[QubitId],
) -> Result<(), ArithError> {
    let n = nonempty("VBE wrapping adder", x)?;
    crate::util::expect_width("VBE wrapping adder target", y, n)?;
    let c = b.ancilla_reg(n);
    for k in 0..n.saturating_sub(1) {
        carry(b, c[k], x[k], y[k], c[k + 1]);
    }
    sum(b, c[n - 1], x[n - 1], y[n - 1]);
    for k in (0..n - 1).rev() {
        carry_dag(b, c[k], x[k], y[k], c[k + 1]);
        sum(b, c[k], x[k], y[k]);
    }
    b.release_ancilla_reg(c);
    Ok(())
}

/// Emits the VBE carry-chain comparator: `t ⊕= 1[x > y]` (or
/// `t ⊕= control · 1[x > y]` when `control` is given), leaving `x`, `y`
/// unchanged.
///
/// Implementation: `1[x > y]` equals the carry out of `x + ȳ`, so the
/// circuit complements `y`, ripples a CARRY chain whose final carry targets
/// `t` directly (uncontrolled case) or a fresh ancilla copied into `t` by a
/// Toffoli (controlled case), then unwinds.
///
/// This is the "one plain adder"-cost comparator that turns the 5-adder VBE
/// modular adder into the 4-adder variant of Table 1.
///
/// # Errors
///
/// Returns [`ArithError::WidthMismatch`] unless `x.len() == y.len()`.
pub fn compare_gt(
    b: &mut CircuitBuilder,
    control: Option<QubitId>,
    x: &[QubitId],
    y: &[QubitId],
    t: QubitId,
) -> Result<(), ArithError> {
    let n = nonempty("VBE comparator", x)?;
    crate::util::expect_width("VBE comparator second operand", y, n)?;
    for &q in y {
        b.x(q);
    }
    let c = b.ancilla_reg(n);
    match control {
        None => {
            for k in 0..n {
                let cout = if k < n - 1 { c[k + 1] } else { t };
                carry(b, c[k], x[k], y[k], cout);
            }
            b.cx(x[n - 1], y[n - 1]);
            for k in (0..n - 1).rev() {
                carry_dag(b, c[k], x[k], y[k], c[k + 1]);
            }
        }
        Some(ctrl) => {
            // Compute the full carry into an ancilla, copy under control,
            // then unwind the whole chain.
            let top = b.ancilla();
            for k in 0..n {
                let cout = if k < n - 1 { c[k + 1] } else { top };
                carry(b, c[k], x[k], y[k], cout);
            }
            b.ccx(ctrl, top, t);
            for k in (0..n).rev() {
                let cout = if k < n - 1 { c[k + 1] } else { top };
                carry_dag(b, c[k], x[k], y[k], cout);
            }
            b.release_ancilla(top);
        }
    }
    b.release_ancilla_reg(c);
    for &q in y {
        b.x(q);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbu_circuit::CircuitBuilder;
    use mbu_sim::BasisTracker;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run_add(n: usize, x: u128, y: u128) -> u128 {
        let mut b = CircuitBuilder::new();
        let xr = b.qreg("x", n);
        let yr = b.qreg("y", n + 1);
        add(&mut b, xr.qubits(), yr.qubits()).unwrap();
        let circuit = b.finish();
        circuit.validate().unwrap();
        let mut sim = BasisTracker::zeros(circuit.num_qubits());
        sim.set_value(xr.qubits(), x).unwrap();
        sim.set_value(yr.qubits(), y).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        sim.run(&circuit, &mut rng).unwrap();
        assert_eq!(sim.value(xr.qubits()).unwrap(), x, "x preserved");
        assert!(sim.global_phase().is_zero());
        sim.value(yr.qubits()).unwrap()
    }

    #[test]
    fn adds_exhaustively_for_small_n() {
        for n in 1..=4usize {
            for x in 0..(1u128 << n) {
                for y in 0..(1u128 << n) {
                    assert_eq!(run_add(n, x, y), x + y, "{x}+{y} at n={n}");
                }
            }
        }
    }

    #[test]
    fn adds_mod_2n1_with_top_bit_set() {
        // The adder's semantics are mod 2^{n+1} even when y's top qubit
        // starts at 1 — required for its adjoint to act as a subtractor.
        let n = 4usize;
        for x in [0u128, 3, 9, 15] {
            for y in [16u128, 20, 31] {
                assert_eq!(run_add(n, x, y), (x + y) % 32, "{x}+{y}");
            }
        }
    }

    #[test]
    fn wide_addition_matches_reference() {
        let n = 64usize;
        let x = 0xDEAD_BEEF_0123_4567u128;
        let y = 0xFEDC_BA98_7654_3210u128;
        let mut b = CircuitBuilder::new();
        let xr = b.qreg("x", n);
        let yr = b.qreg("y", n + 1);
        add(&mut b, xr.qubits(), yr.qubits()).unwrap();
        let circuit = b.finish();
        let mut sim = BasisTracker::zeros(circuit.num_qubits());
        sim.set_value(xr.qubits(), x).unwrap();
        sim.set_value(yr.qubits(), y).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        sim.run(&circuit, &mut rng).unwrap();
        assert_eq!(sim.value(yr.qubits()).unwrap(), x + y);
    }

    #[test]
    fn toffoli_count_matches_4n_minus_2() {
        for n in [2usize, 5, 16] {
            let mut b = CircuitBuilder::new();
            let xr = b.qreg("x", n);
            let yr = b.qreg("y", n + 1);
            add(&mut b, xr.qubits(), yr.qubits()).unwrap();
            let counts = b.finish().counts();
            assert_eq!(counts.toffoli, 4 * n as u64 - 2, "n={n}");
        }
    }

    #[test]
    fn ancilla_count_is_n() {
        let n = 7;
        let mut b = CircuitBuilder::new();
        let xr = b.qreg("x", n);
        let yr = b.qreg("y", n + 1);
        add(&mut b, xr.qubits(), yr.qubits()).unwrap();
        assert_eq!(b.ancilla_peak(), n);
    }

    #[test]
    fn wrapping_add_drops_carry() {
        for n in 1..=4usize {
            for x in 0..(1u128 << n) {
                for y in 0..(1u128 << n) {
                    let mut b = CircuitBuilder::new();
                    let xr = b.qreg("x", n);
                    let yr = b.qreg("y", n);
                    wrapping_add(&mut b, xr.qubits(), yr.qubits()).unwrap();
                    let circuit = b.finish();
                    let mut sim = BasisTracker::zeros(circuit.num_qubits());
                    sim.set_value(xr.qubits(), x).unwrap();
                    sim.set_value(yr.qubits(), y).unwrap();
                    let mut rng = StdRng::seed_from_u64(0);
                    sim.run(&circuit, &mut rng).unwrap();
                    assert_eq!(
                        sim.value(yr.qubits()).unwrap(),
                        (x + y) % (1u128 << n),
                        "{x}+{y} mod 2^{n}"
                    );
                }
            }
        }
    }

    #[test]
    fn comparator_is_exhaustively_correct() {
        let n = 3usize;
        for x in 0..(1u128 << n) {
            for y in 0..(1u128 << n) {
                for t0 in [false, true] {
                    let mut b = CircuitBuilder::new();
                    let xr = b.qreg("x", n);
                    let yr = b.qreg("y", n);
                    let t = b.qubit();
                    compare_gt(&mut b, None, xr.qubits(), yr.qubits(), t).unwrap();
                    let circuit = b.finish();
                    let mut sim = BasisTracker::zeros(circuit.num_qubits());
                    sim.set_value(xr.qubits(), x).unwrap();
                    sim.set_value(yr.qubits(), y).unwrap();
                    sim.set_bit(t, t0).unwrap();
                    let mut rng = StdRng::seed_from_u64(0);
                    sim.run(&circuit, &mut rng).unwrap();
                    assert_eq!(sim.bit(t).unwrap(), t0 ^ (x > y), "{x}>{y}");
                    assert_eq!(sim.value(xr.qubits()).unwrap(), x);
                    assert_eq!(sim.value(yr.qubits()).unwrap(), y);
                    assert!(sim.global_phase().is_zero());
                }
            }
        }
    }

    #[test]
    fn controlled_comparator_respects_control() {
        let n = 3usize;
        for x in [0u128, 3, 5, 7] {
            for y in [0u128, 2, 5, 6] {
                for ctrl in [false, true] {
                    let mut b = CircuitBuilder::new();
                    let c = b.qubit();
                    let xr = b.qreg("x", n);
                    let yr = b.qreg("y", n);
                    let t = b.qubit();
                    compare_gt(&mut b, Some(c), xr.qubits(), yr.qubits(), t).unwrap();
                    let circuit = b.finish();
                    let mut sim = BasisTracker::zeros(circuit.num_qubits());
                    sim.set_bit(c, ctrl).unwrap();
                    sim.set_value(xr.qubits(), x).unwrap();
                    sim.set_value(yr.qubits(), y).unwrap();
                    let mut rng = StdRng::seed_from_u64(0);
                    sim.run(&circuit, &mut rng).unwrap();
                    assert_eq!(sim.bit(t).unwrap(), ctrl && x > y, "c={ctrl} {x}>{y}");
                    assert!(sim.global_phase().is_zero());
                }
            }
        }
    }

    #[test]
    fn width_mismatch_is_rejected() {
        let mut b = CircuitBuilder::new();
        let xr = b.qreg("x", 3);
        let yr = b.qreg("y", 3);
        assert!(matches!(
            add(&mut b, xr.qubits(), yr.qubits()),
            Err(ArithError::WidthMismatch { .. })
        ));
        assert!(matches!(
            add(&mut b, &[], yr.qubits()),
            Err(ArithError::EmptyRegister { .. })
        ));
    }
}
