//! Plain adders and everything derived from them: subtraction, controlled
//! addition, and (controlled) addition by a classical constant.
//!
//! All emitters share two register conventions, matching Definition 2.1:
//!
//! * *carrying* operations take an addend `x` of width `n` and a target `y`
//!   of width `n + 1`, computing `y ← (y ± x) mod 2^{n+1}` — the extra
//!   qubit absorbs the overflow;
//! * *wrapping* operations use equal widths and compute mod `2^n`.
//!
//! The implementations are faithful to the paper's figures; each submodule
//! ([`vbe`], [`cdkpm`], [`gidney`], [`draper`]) documents its propositions.
//! The functions here dispatch on [`AdderKind`] and assemble the generic
//! constructions (Props 2.16, 2.19; Thm 2.9/Cor 2.10; Thm 2.22).

pub mod cdkpm;
pub mod draper;
pub mod gidney;
pub mod vbe;

use mbu_bitstring::BitString;
use mbu_circuit::{Basis, Circuit, CircuitBuilder, QubitId, Register};

use crate::util::nonempty;
use crate::{AdderKind, ArithError};

use draper::Sign;

/// Resizes a constant to `n` bits, rejecting values that do not fit.
fn fit_const(context: &'static str, a: &BitString, n: usize) -> Result<BitString, ArithError> {
    for i in n..a.width() {
        if a.bit(i) {
            return Err(ArithError::ConstantOutOfRange {
                context,
                constraint: "constant must fit in the register width",
            });
        }
    }
    Ok(a.resized(n))
}

/// Emits `y ← (y + x) mod 2^{n+1}` (Definition 2.1) using the chosen adder.
///
/// # Errors
///
/// Returns [`ArithError::WidthMismatch`] unless `y.len() == x.len() + 1`.
pub fn add(
    b: &mut CircuitBuilder,
    kind: AdderKind,
    x: &[QubitId],
    y: &[QubitId],
) -> Result<(), ArithError> {
    match kind {
        AdderKind::Vbe => vbe::add(b, x, y),
        AdderKind::Cdkpm => cdkpm::add(b, x, y),
        AdderKind::Gidney => gidney::add(b, x, y),
        AdderKind::Draper => draper::add(b, x, y),
    }
}

/// Emits `y ← (y + x) mod 2^n` with equal widths.
///
/// # Errors
///
/// Returns [`ArithError::WidthMismatch`] unless `y.len() == x.len()`.
pub fn wrapping_add(
    b: &mut CircuitBuilder,
    kind: AdderKind,
    x: &[QubitId],
    y: &[QubitId],
) -> Result<(), ArithError> {
    match kind {
        AdderKind::Vbe => vbe::wrapping_add(b, x, y),
        AdderKind::Cdkpm => cdkpm::wrapping_add(b, x, y),
        AdderKind::Gidney => gidney::wrapping_add(b, x, y),
        AdderKind::Draper => draper::wrapping_add(b, x, y),
    }
}

/// Emits `y ← (y − x) mod 2^{n+1}` (Theorem 2.22): the adder's adjoint.
///
/// For measurement-free adders the recorded block is inverted gate by gate;
/// the Gidney adder uses its explicit role-swapped reverse (Remark 2.23).
///
/// # Errors
///
/// Returns [`ArithError::WidthMismatch`] unless `y.len() == x.len() + 1`.
pub fn sub(
    b: &mut CircuitBuilder,
    kind: AdderKind,
    x: &[QubitId],
    y: &[QubitId],
) -> Result<(), ArithError> {
    match kind {
        AdderKind::Gidney => gidney::sub(b, x, y),
        AdderKind::Vbe | AdderKind::Cdkpm | AdderKind::Draper => {
            let (res, block) = b.record(|b| add(b, kind, x, y));
            res?;
            b.emit_adjoint(&block)?;
            Ok(())
        }
    }
}

/// Emits `y ← (y − x) mod 2^n` with equal widths.
///
/// # Errors
///
/// Returns [`ArithError::WidthMismatch`] unless `y.len() == x.len()`.
pub fn wrapping_sub(
    b: &mut CircuitBuilder,
    kind: AdderKind,
    x: &[QubitId],
    y: &[QubitId],
) -> Result<(), ArithError> {
    match kind {
        AdderKind::Gidney => gidney::wrapping_sub(b, x, y),
        AdderKind::Vbe | AdderKind::Cdkpm | AdderKind::Draper => {
            let (res, block) = b.record(|b| wrapping_add(b, kind, x, y));
            res?;
            b.emit_adjoint(&block)?;
            Ok(())
        }
    }
}

/// Emits `y ← (y + c·x) mod 2^{n+1}` (Definition 2.8).
///
/// Dispatch: CDKPM uses Theorem 2.12 (one ancilla), Gidney uses Prop 2.11,
/// Draper uses Theorem 2.14, and VBE falls back to the generic
/// load-with-temporary-ANDs construction of Corollary 2.10.
///
/// # Errors
///
/// Returns [`ArithError::WidthMismatch`] unless `y.len() == x.len() + 1`.
pub fn controlled_add(
    b: &mut CircuitBuilder,
    kind: AdderKind,
    control: QubitId,
    x: &[QubitId],
    y: &[QubitId],
) -> Result<(), ArithError> {
    match kind {
        AdderKind::Cdkpm => cdkpm::controlled_add(b, control, x, y),
        AdderKind::Gidney => gidney::controlled_add(b, control, x, y),
        AdderKind::Draper => draper::controlled_add(b, control, x, y),
        AdderKind::Vbe => {
            // Corollary 2.10: load c·x via temporary logical ANDs, add from
            // the loaded register, uncompute the ANDs by measurement.
            let n = nonempty("controlled VBE adder", x)?;
            let loaded = b.ancilla_reg(n);
            for i in 0..n {
                b.ccx(control, x[i], loaded[i]);
            }
            vbe::add(b, loaded.qubits(), y)?;
            for i in 0..n {
                b.h(loaded[i]);
                let outcome = b.measure(loaded[i], Basis::Z);
                let (_, fix) = b.record(|b| b.cz(control, x[i]));
                b.emit_conditional(outcome, &fix);
                b.reset(loaded[i]);
            }
            b.release_ancilla_reg(loaded);
            Ok(())
        }
    }
}

/// Emits `y ← (y + a) mod 2^{m}` for a classical constant `a`, where
/// `m = y.len()` and the addend logically has `m − 1` bits (Prop 2.16 /
/// Definition 2.15).
///
/// Ripple adders load `a` into an ancilla register with `|a|` X gates and
/// add from it; Draper adds in the Fourier basis with zero ancillas
/// (Prop 2.17).
///
/// # Errors
///
/// Returns [`ArithError`] if `a` does not fit in `m − 1` bits or widths are
/// inconsistent.
pub fn add_const(
    b: &mut CircuitBuilder,
    kind: AdderKind,
    a: &BitString,
    y: &[QubitId],
) -> Result<(), ArithError> {
    const_op(b, kind, a, y, Sign::Plus, true)
}

/// Emits `y ← (y − a) mod 2^{m}` for a classical constant `a` with
/// `m − 1` logical bits.
///
/// # Errors
///
/// Returns [`ArithError`] if `a` does not fit or widths are inconsistent.
pub fn sub_const(
    b: &mut CircuitBuilder,
    kind: AdderKind,
    a: &BitString,
    y: &[QubitId],
) -> Result<(), ArithError> {
    const_op(b, kind, a, y, Sign::Minus, true)
}

/// Emits `y ← (y + a) mod 2^m` where the constant may use all `m` bits.
///
/// # Errors
///
/// Returns [`ArithError`] if `a` does not fit in `m` bits.
pub fn wrapping_add_const(
    b: &mut CircuitBuilder,
    kind: AdderKind,
    a: &BitString,
    y: &[QubitId],
) -> Result<(), ArithError> {
    const_op(b, kind, a, y, Sign::Plus, false)
}

/// Emits `y ← (y − a) mod 2^m` where the constant may use all `m` bits.
///
/// # Errors
///
/// Returns [`ArithError`] if `a` does not fit in `m` bits.
pub fn wrapping_sub_const(
    b: &mut CircuitBuilder,
    kind: AdderKind,
    a: &BitString,
    y: &[QubitId],
) -> Result<(), ArithError> {
    const_op(b, kind, a, y, Sign::Minus, false)
}

fn const_op(
    b: &mut CircuitBuilder,
    kind: AdderKind,
    a: &BitString,
    y: &[QubitId],
    sign: Sign,
    carrying: bool,
) -> Result<(), ArithError> {
    let m = nonempty("constant adder", y)?;
    let addend_width = if carrying { m - 1 } else { m };
    if addend_width == 0 {
        return Err(ArithError::EmptyRegister {
            context: "constant adder",
        });
    }
    let bits = fit_const("constant adder", a, addend_width)?;
    match kind {
        AdderKind::Draper => {
            draper::qft(b, y)?;
            draper::phi_add_const(b, &bits, y, sign)?;
            draper::iqft(b, y)
        }
        _ => {
            let loaded = b.ancilla_reg(addend_width);
            crate::util::load_const(b, &bits, loaded.qubits());
            let result = match (sign, carrying) {
                (Sign::Plus, true) => add(b, kind, loaded.qubits(), y),
                (Sign::Minus, true) => sub(b, kind, loaded.qubits(), y),
                (Sign::Plus, false) => wrapping_add(b, kind, loaded.qubits(), y),
                (Sign::Minus, false) => wrapping_sub(b, kind, loaded.qubits(), y),
            };
            result?;
            crate::util::load_const(b, &bits, loaded.qubits());
            b.release_ancilla_reg(loaded);
            Ok(())
        }
    }
}

/// Emits `y ← (y + c·a) mod 2^m` for a classical constant with `m − 1`
/// logical bits (Prop 2.19 / Definition 2.18).
///
/// Ripple adders load `c·a` with `|a|` CNOTs; Draper controls the merged
/// rotations (Prop 2.20, zero ancillas).
///
/// # Errors
///
/// Returns [`ArithError`] if `a` does not fit or widths are inconsistent.
pub fn controlled_add_const(
    b: &mut CircuitBuilder,
    kind: AdderKind,
    control: QubitId,
    a: &BitString,
    y: &[QubitId],
) -> Result<(), ArithError> {
    controlled_const_op(b, kind, control, a, y, Sign::Plus, true)
}

/// Emits `y ← (y − c·a) mod 2^m` (constant with `m − 1` logical bits).
///
/// # Errors
///
/// Returns [`ArithError`] if `a` does not fit or widths are inconsistent.
pub fn controlled_sub_const(
    b: &mut CircuitBuilder,
    kind: AdderKind,
    control: QubitId,
    a: &BitString,
    y: &[QubitId],
) -> Result<(), ArithError> {
    controlled_const_op(b, kind, control, a, y, Sign::Minus, true)
}

/// Emits `y ← (y + c·a) mod 2^m` where the constant may use all `m` bits.
///
/// # Errors
///
/// Returns [`ArithError`] if `a` does not fit.
pub fn controlled_wrapping_add_const(
    b: &mut CircuitBuilder,
    kind: AdderKind,
    control: QubitId,
    a: &BitString,
    y: &[QubitId],
) -> Result<(), ArithError> {
    controlled_const_op(b, kind, control, a, y, Sign::Plus, false)
}

/// Emits `y ← (y − c·a) mod 2^m` where the constant may use all `m` bits.
///
/// # Errors
///
/// Returns [`ArithError`] if `a` does not fit.
pub fn controlled_wrapping_sub_const(
    b: &mut CircuitBuilder,
    kind: AdderKind,
    control: QubitId,
    a: &BitString,
    y: &[QubitId],
) -> Result<(), ArithError> {
    controlled_const_op(b, kind, control, a, y, Sign::Minus, false)
}

fn controlled_const_op(
    b: &mut CircuitBuilder,
    kind: AdderKind,
    control: QubitId,
    a: &BitString,
    y: &[QubitId],
    sign: Sign,
    carrying: bool,
) -> Result<(), ArithError> {
    let m = nonempty("controlled constant adder", y)?;
    let addend_width = if carrying { m - 1 } else { m };
    if addend_width == 0 {
        return Err(ArithError::EmptyRegister {
            context: "controlled constant adder",
        });
    }
    let bits = fit_const("controlled constant adder", a, addend_width)?;
    match kind {
        AdderKind::Draper => {
            draper::qft(b, y)?;
            draper::c_phi_add_const(b, control, &bits, y, sign)?;
            draper::iqft(b, y)
        }
        _ => {
            let loaded = b.ancilla_reg(addend_width);
            crate::util::load_const_controlled(b, control, &bits, loaded.qubits());
            let result = match (sign, carrying) {
                (Sign::Plus, true) => add(b, kind, loaded.qubits(), y),
                (Sign::Minus, true) => sub(b, kind, loaded.qubits(), y),
                (Sign::Plus, false) => wrapping_add(b, kind, loaded.qubits(), y),
                (Sign::Minus, false) => wrapping_sub(b, kind, loaded.qubits(), y),
            };
            result?;
            crate::util::load_const_controlled(b, control, &bits, loaded.qubits());
            b.release_ancilla_reg(loaded);
            Ok(())
        }
    }
}

/// A complete plain-adder circuit plus the registers to address it with.
#[derive(Clone, Debug)]
pub struct PlainAdder {
    /// The full circuit (including ancillas).
    pub circuit: Circuit,
    /// The addend register `x` (n qubits).
    pub x: Register,
    /// The target register `y` (n+1 qubits, little-endian).
    pub y: Register,
}

/// Builds a standalone plain adder `|x⟩|y⟩ ↦ |x⟩|y + x⟩` (Definition 2.1).
///
/// # Errors
///
/// Returns [`ArithError`] for `n = 0` or oversized Draper widths.
///
/// # Examples
///
/// ```
/// use mbu_arith::{adders, AdderKind};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let adder = adders::plain_adder(AdderKind::Cdkpm, 8)?;
/// assert_eq!(adder.circuit.counts().toffoli, 16); // 2n
/// # Ok(())
/// # }
/// ```
pub fn plain_adder(kind: AdderKind, n: usize) -> Result<PlainAdder, ArithError> {
    let mut b = CircuitBuilder::new();
    let x = b.qreg("x", n);
    let y = b.qreg("y", n + 1);
    add(&mut b, kind, x.qubits(), y.qubits())?;
    Ok(PlainAdder {
        circuit: b.finish(),
        x,
        y,
    })
}

/// Builds a standalone subtractor `|x⟩|y⟩ ↦ |x⟩|y − x⟩` (Definition 2.21).
///
/// # Errors
///
/// Returns [`ArithError`] for `n = 0` or oversized Draper widths.
pub fn subtractor(kind: AdderKind, n: usize) -> Result<PlainAdder, ArithError> {
    let mut b = CircuitBuilder::new();
    let x = b.qreg("x", n);
    let y = b.qreg("y", n + 1);
    sub(&mut b, kind, x.qubits(), y.qubits())?;
    Ok(PlainAdder {
        circuit: b.finish(),
        x,
        y,
    })
}

/// A controlled adder circuit plus its registers.
#[derive(Clone, Debug)]
pub struct ControlledAdder {
    /// The full circuit.
    pub circuit: Circuit,
    /// The control qubit.
    pub control: QubitId,
    /// The addend register `x`.
    pub x: Register,
    /// The target register `y` (n+1 qubits).
    pub y: Register,
}

/// Builds a standalone controlled adder (Definition 2.8).
///
/// # Errors
///
/// Returns [`ArithError`] for `n = 0` or oversized Draper widths.
pub fn controlled_adder(kind: AdderKind, n: usize) -> Result<ControlledAdder, ArithError> {
    let mut b = CircuitBuilder::new();
    let control = b.qubit();
    let x = b.qreg("x", n);
    let y = b.qreg("y", n + 1);
    controlled_add(&mut b, kind, control, x.qubits(), y.qubits())?;
    Ok(ControlledAdder {
        circuit: b.finish(),
        control,
        x,
        y,
    })
}

/// A constant-adder circuit plus its target register.
#[derive(Clone, Debug)]
pub struct ConstAdder {
    /// The full circuit.
    pub circuit: Circuit,
    /// The target register `y` (n+1 qubits): `|x⟩ ↦ |x + a⟩`.
    pub y: Register,
}

/// Builds a standalone adder by the constant `a` (Definition 2.15).
///
/// # Errors
///
/// Returns [`ArithError`] if `a` does not fit in `n` bits.
pub fn const_adder(kind: AdderKind, n: usize, a: u128) -> Result<ConstAdder, ArithError> {
    let bits = crate::util::const_bits("constant adder", a, n.max(1))?;
    let mut b = CircuitBuilder::new();
    let y = b.qreg("y", n + 1);
    add_const(&mut b, kind, &bits, y.qubits())?;
    Ok(ConstAdder {
        circuit: b.finish(),
        y,
    })
}

/// A controlled constant-adder circuit plus its registers.
#[derive(Clone, Debug)]
pub struct ControlledConstAdder {
    /// The full circuit.
    pub circuit: Circuit,
    /// The control qubit.
    pub control: QubitId,
    /// The target register `y` (n+1 qubits).
    pub y: Register,
}

/// Builds a standalone controlled adder by the constant `a`
/// (Definition 2.18).
///
/// # Errors
///
/// Returns [`ArithError`] if `a` does not fit in `n` bits.
pub fn controlled_const_adder(
    kind: AdderKind,
    n: usize,
    a: u128,
) -> Result<ControlledConstAdder, ArithError> {
    let bits = crate::util::const_bits("controlled constant adder", a, n.max(1))?;
    let mut b = CircuitBuilder::new();
    let control = b.qubit();
    let y = b.qreg("y", n + 1);
    controlled_add_const(&mut b, kind, control, &bits, y.qubits())?;
    Ok(ControlledConstAdder {
        circuit: b.finish(),
        control,
        y,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbu_sim::{BasisTracker, StateVector};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const RIPPLE_KINDS: [AdderKind; 3] = [AdderKind::Vbe, AdderKind::Cdkpm, AdderKind::Gidney];
    const ALL_KINDS: [AdderKind; 4] = [
        AdderKind::Vbe,
        AdderKind::Cdkpm,
        AdderKind::Gidney,
        AdderKind::Draper,
    ];

    /// Runs a ripple circuit on the basis tracker over a few seeds.
    fn run_ripple(
        circuit: &Circuit,
        inputs: &[(&[QubitId], u128)],
        out: &[QubitId],
        seed: u64,
    ) -> u128 {
        circuit.validate().unwrap();
        let mut sim = BasisTracker::zeros(circuit.num_qubits());
        for (reg, v) in inputs {
            sim.set_value(reg, *v).unwrap();
        }
        let mut rng = StdRng::seed_from_u64(seed);
        sim.run(circuit, &mut rng).unwrap();
        assert!(sim.global_phase().is_zero());
        sim.value(out).unwrap()
    }

    fn run_statevector(
        circuit: &Circuit,
        inputs: &[(&[QubitId], u64)],
        out: &[QubitId],
        seed: u64,
    ) -> u128 {
        circuit.validate().unwrap();
        let mut sv = StateVector::zeros(circuit.num_qubits()).unwrap();
        sv.prepare_basis(StateVector::index_with(inputs)).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        sv.run(circuit, &mut rng).unwrap();
        let (idx, amp) = sv.as_basis(1e-9).expect("basis output");
        assert!((amp.re - 1.0).abs() < 1e-7 && amp.im.abs() < 1e-7);
        u128::from(StateVector::register_value(idx, out))
    }

    fn run_any(
        kind: AdderKind,
        circuit: &Circuit,
        inputs: &[(&[QubitId], u128)],
        out: &[QubitId],
        seed: u64,
    ) -> u128 {
        if kind == AdderKind::Draper {
            let small: Vec<(&[QubitId], u64)> =
                inputs.iter().map(|(r, v)| (*r, *v as u64)).collect();
            run_statevector(circuit, &small, out, seed)
        } else {
            run_ripple(circuit, inputs, out, seed)
        }
    }

    #[test]
    fn all_kinds_add_correctly() {
        let n = 3usize;
        for kind in ALL_KINDS {
            for (x, y) in [(0u128, 0u128), (5, 9), (7, 15), (3, 8), (7, 7)] {
                let adder = plain_adder(kind, n).unwrap();
                let got = run_any(
                    kind,
                    &adder.circuit,
                    &[(adder.x.qubits(), x), (adder.y.qubits(), y)],
                    adder.y.qubits(),
                    1,
                );
                assert_eq!(got, (x + y) % 16, "{kind}: {x}+{y}");
            }
        }
    }

    #[test]
    fn all_kinds_subtract_correctly() {
        let n = 3usize;
        for kind in ALL_KINDS {
            for (x, y) in [(0u128, 0u128), (5, 9), (7, 3), (1, 0)] {
                let s = subtractor(kind, n).unwrap();
                let got = run_any(
                    kind,
                    &s.circuit,
                    &[(s.x.qubits(), x), (s.y.qubits(), y)],
                    s.y.qubits(),
                    2,
                );
                assert_eq!(got, (y + 16 - x) % 16, "{kind}: {y}-{x}");
            }
        }
    }

    #[test]
    fn subtraction_top_bit_flags_borrow() {
        // Proposition A.3 through the circuits: (y − x) has its top bit set
        // exactly when x > y.
        let n = 4usize;
        for kind in RIPPLE_KINDS {
            for (x, y) in [(9u128, 3u128), (3, 9), (15, 15), (1, 0)] {
                let s = subtractor(kind, n).unwrap();
                let got = run_ripple(
                    &s.circuit,
                    &[(s.x.qubits(), x), (s.y.qubits(), y)],
                    s.y.qubits(),
                    3,
                );
                assert_eq!(got >> n, u128::from(x > y), "{kind}: {y}-{x}");
            }
        }
    }

    #[test]
    fn controlled_adders_respect_control() {
        let n = 3usize;
        for kind in ALL_KINDS {
            for ctrl in [0u128, 1] {
                let ca = controlled_adder(kind, n).unwrap();
                let (x, y) = (5u128, 9u128);
                let got = run_any(
                    kind,
                    &ca.circuit,
                    &[
                        (&[ca.control], ctrl),
                        (ca.x.qubits(), x),
                        (ca.y.qubits(), y),
                    ],
                    ca.y.qubits(),
                    4,
                );
                let expected = if ctrl == 1 { (x + y) % 16 } else { y };
                assert_eq!(got, expected, "{kind} c={ctrl}");
            }
        }
    }

    #[test]
    fn const_adders_add_their_constant() {
        let n = 4usize;
        for kind in ALL_KINDS {
            for a in [0u128, 1, 7, 15] {
                for y in [0u128, 3, 15] {
                    let ca = const_adder(kind, n, a).unwrap();
                    let got = run_any(kind, &ca.circuit, &[(ca.y.qubits(), y)], ca.y.qubits(), 5);
                    assert_eq!(got, a + y, "{kind}: {y}+{a}");
                }
            }
        }
    }

    #[test]
    fn controlled_const_adders_truth_table() {
        let n = 3usize;
        for kind in ALL_KINDS {
            for ctrl in [0u128, 1] {
                let (a, y) = (5u128, 6u128);
                let ca = controlled_const_adder(kind, n, a).unwrap();
                let got = run_any(
                    kind,
                    &ca.circuit,
                    &[(&[ca.control], ctrl), (ca.y.qubits(), y)],
                    ca.y.qubits(),
                    6,
                );
                assert_eq!(got, y + a * ctrl, "{kind} c={ctrl}");
            }
        }
    }

    #[test]
    fn controlled_const_adder_uses_2a_cnots_extra() {
        // Prop 2.19: the control costs 2|a| CNOTs over the plain version.
        let n = 6usize;
        let a = 0b101101u128; // |a| = 4
        for kind in RIPPLE_KINDS {
            let plain = const_adder(kind, n, a).unwrap().circuit.counts();
            let ctrl = controlled_const_adder(kind, n, a).unwrap().circuit.counts();
            assert_eq!(
                ctrl.cx,
                (plain.cx + 2 * 4),
                "{kind}: controlled load costs 2|a| CNOTs"
            );
            // The X loads disappear in the controlled version.
            assert_eq!(plain.x, 2 * 4, "{kind}");
            assert_eq!(ctrl.x, 0, "{kind}");
        }
    }

    #[test]
    fn wrapping_ops_match_reference() {
        let n = 3usize;
        let m = 1u128 << n;
        for kind in RIPPLE_KINDS {
            for x in 0..m {
                for y in [0u128, 3, 7] {
                    let mut b = CircuitBuilder::new();
                    let xr = b.qreg("x", n);
                    let yr = b.qreg("y", n);
                    wrapping_add(&mut b, kind, xr.qubits(), yr.qubits()).unwrap();
                    wrapping_sub(&mut b, kind, xr.qubits(), yr.qubits()).unwrap();
                    wrapping_sub(&mut b, kind, xr.qubits(), yr.qubits()).unwrap();
                    let c = b.finish();
                    let got = run_ripple(&c, &[(xr.qubits(), x), (yr.qubits(), y)], yr.qubits(), 7);
                    // add then sub twice = y − x overall
                    assert_eq!(got, (y + m - x) % m, "{kind} {x} {y}");
                }
            }
        }
    }

    #[test]
    fn constants_that_do_not_fit_are_rejected() {
        for kind in ALL_KINDS {
            assert!(matches!(
                const_adder(kind, 3, 8),
                Err(ArithError::ConstantOutOfRange { .. })
            ));
        }
    }

    #[test]
    fn vbe_controlled_add_truth_table_exhaustive() {
        let n = 2usize;
        for x in 0..4u128 {
            for y in 0..8u128 {
                for ctrl in [0u128, 1] {
                    let ca = controlled_adder(AdderKind::Vbe, n).unwrap();
                    for seed in 0..3 {
                        let got = run_ripple(
                            &ca.circuit,
                            &[
                                (&[ca.control], ctrl),
                                (ca.x.qubits(), x),
                                (ca.y.qubits(), y),
                            ],
                            ca.y.qubits(),
                            seed,
                        );
                        let expected = if ctrl == 1 { (x + y) % 8 } else { y };
                        assert_eq!(got, expected);
                    }
                }
            }
        }
    }
}
