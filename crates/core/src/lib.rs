//! Quantum circuits for modular arithmetic with measurement-based
//! uncomputation (MBU).
//!
//! This crate implements every construction of *"Measurement-based
//! uncomputation of quantum circuits for modular arithmetic"* (Luongo, Miti,
//! Narasimhachar, Sireesh, DAC 2025 / arXiv:2407.20167):
//!
//! * **Plain adders** (§2): VBE (Prop 2.2), CDKPM ripple-carry (Prop 2.3),
//!   Gidney's temporary-logical-AND adder (Prop 2.4) and Draper's QFT adder
//!   (Prop 2.5 / Cor 2.7) — see [`adders`].
//! * **Derived primitives** (§2.1–2.5): controlled adders, adders by a
//!   constant, subtractors, comparators and their controlled/by-constant
//!   variants — see [`adders`], [`compare`].
//! * **Modular adders** (§3): the composable VBE architecture (Prop 3.2)
//!   instantiated with every adder family and the Gidney+CDKPM hybrid
//!   (Thm 3.6), the Draper/Beauregard QFT modular adder (Prop 3.7),
//!   controlled modular addition (Props 3.9–3.11), modular addition by a
//!   constant (Thm 3.14, Takahashi Prop 3.15) and controlled modular
//!   addition by a constant (Prop 3.18, Beauregard Prop 3.19) — see
//!   [`modular`].
//! * **Measurement-based uncomputation** (§4): the MBU lemma (Lemma 4.1) as
//!   a reusable combinator ([`mbu`]), MBU-optimised variants of every
//!   modular adder (Thms 4.2–4.12, selected via [`Uncompute::Mbu`]), and
//!   the two-sided comparator (Thm 4.13, [`two_sided`]).
//! * **Extensions** the paper leaves as future work: modular
//!   multiplication and modular exponentiation built from (controlled)
//!   modular constant adders — see [`mulexp`].
//! * **Paper resource formulas** for every table, as code — see
//!   [`resources`].
//!
//! # Quick start
//!
//! Build a CDKPM modular adder with MBU and simulate it:
//!
//! ```
//! use mbu_arith::{modular, AdderKind, Uncompute};
//! use mbu_sim::BasisTracker;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let n = 8;
//! let p = 251u128; // modulus
//! let spec = modular::ModAddSpec::uniform(AdderKind::Cdkpm, Uncompute::Mbu);
//! let layout = modular::modadd_circuit(&spec, n, p)?;
//!
//! let mut sim = BasisTracker::zeros(layout.circuit.num_qubits());
//! sim.set_value(layout.x.qubits(), 200);
//! sim.set_value(layout.y.qubits(), 100);
//! let mut rng = rand::rngs::StdRng::seed_from_u64(42);
//! sim.run(&layout.circuit, &mut rng)?;
//! assert_eq!(sim.value(layout.y.qubits())?, (200 + 100) % 251);
//! assert!(sim.global_phase().is_zero());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adders;
pub mod compare;
mod error;
pub mod mbu;
pub mod modular;
pub mod mulexp;
pub mod resources;
pub mod two_sided;
mod util;

pub use error::ArithError;

/// Which plain-adder family backs a construction.
///
/// The paper's framework is *composable*: every modular-arithmetic circuit
/// is assembled from plain adders, subtractors and comparators, and each
/// slot can independently use any family (Theorem 3.6 mixes Gidney and
/// CDKPM to trade Toffolis against ancillas).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AdderKind {
    /// Vedral–Barenco–Ekert carry-ripple adder (Prop 2.2): 4n−2 Toffolis,
    /// n carry ancillas.
    Vbe,
    /// Cuccaro–Draper–Kutin–Petrie-Moulton MAJ/UMA adder (Prop 2.3):
    /// 2n Toffolis, 1 ancilla.
    Cdkpm,
    /// Gidney's temporary-logical-AND adder (Prop 2.4): n Toffolis,
    /// n ancillas, AND-uncompute by measurement.
    Gidney,
    /// Draper's QFT adder (Prop 2.5): no Toffolis, rotation-based.
    Draper,
}

impl std::fmt::Display for AdderKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdderKind::Vbe => write!(f, "VBE"),
            AdderKind::Cdkpm => write!(f, "CDKPM"),
            AdderKind::Gidney => write!(f, "Gidney"),
            AdderKind::Draper => write!(f, "Draper"),
        }
    }
}

/// How the comparison ancilla of a modular adder is uncomputed.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Uncompute {
    /// Run the full uncomputation comparator (the §3 circuits).
    Unitary,
    /// Measurement-based uncomputation (Lemma 4.1): halve the comparator's
    /// expected cost (the §4 circuits).
    Mbu,
}

impl std::fmt::Display for Uncompute {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Uncompute::Unitary => write!(f, "unitary"),
            Uncompute::Mbu => write!(f, "MBU"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_stable() {
        assert_eq!(AdderKind::Cdkpm.to_string(), "CDKPM");
        assert_eq!(Uncompute::Mbu.to_string(), "MBU");
    }
}
