//! The two-sided (range) comparator of Theorem 4.13.
//!
//! `QIN_RANGE` flags whether a quantum value lies strictly between two other
//! quantum values: `t ⊕= 1[x ∈ (y, z)] = 1[y < x] · 1[x < z]`. The
//! intermediate bit `1[y < x]` is a prime MBU candidate: uncomputing it by
//! measurement saves a quarter of the circuit in expectation — the paper's
//! "nearly 25%" headline.

use mbu_circuit::{Circuit, CircuitBuilder, QubitId, Register};

use crate::util::{expect_width, nonempty};
use crate::{compare, mbu, AdderKind, ArithError, Uncompute};

/// Emits `t ⊕= 1[x ∈ (y, z)]` (Theorem 4.13), restoring `x`, `y`, `z`.
///
/// Structure: compute `w = 1[y < x]` into a borrowed ancilla, apply the
/// controlled comparator `t ⊕= w·1[x < z]`, then uncompute `w` — unitarily
/// (cost `2·r_COMP + r'_C-COMP`) or by MBU (`1.5·r_COMP + r'_C-COMP` in
/// expectation).
///
/// # Errors
///
/// Returns [`ArithError::WidthMismatch`] unless all three registers share a
/// width.
pub fn in_range(
    b: &mut CircuitBuilder,
    kind: AdderKind,
    uncompute: Uncompute,
    x: &[QubitId],
    y: &[QubitId],
    z: &[QubitId],
    t: QubitId,
) -> Result<(), ArithError> {
    let n = nonempty("two-sided comparator", x)?;
    expect_width("two-sided comparator lower bound", y, n)?;
    expect_width("two-sided comparator upper bound", z, n)?;
    let w = b.ancilla();
    // w ⊕= 1[y < x]  (comparator computes 1[x > y]).
    let (res, oracle) = b.record(|b| compare::compare_gt(b, kind, x, y, w));
    res?;
    b.emit(&oracle);
    // t ⊕= w · 1[x < z]  (controlled comparator computes w·1[z > x]).
    compare::controlled_compare_gt(b, kind, w, z, x, t)?;
    // Uncompute w.
    match uncompute {
        Uncompute::Unitary => b.emit(&oracle),
        Uncompute::Mbu => {
            mbu::uncompute_bit(b, w, &oracle);
        }
    }
    b.release_ancilla(w);
    Ok(())
}

/// A standalone range-comparator circuit plus its registers.
#[derive(Clone, Debug)]
pub struct InRange {
    /// The full circuit.
    pub circuit: Circuit,
    /// The probed value.
    pub x: Register,
    /// The (exclusive) lower bound.
    pub y: Register,
    /// The (exclusive) upper bound.
    pub z: Register,
    /// Target bit receiving `1[x ∈ (y, z)]`.
    pub t: QubitId,
}

/// Builds a standalone `QIN_RANGE` circuit.
///
/// # Errors
///
/// Returns [`ArithError`] for `n = 0` or oversized Draper widths.
///
/// # Examples
///
/// ```
/// use mbu_arith::{two_sided, AdderKind, Uncompute};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let plain = two_sided::in_range_circuit(AdderKind::Cdkpm, Uncompute::Unitary, 8)?;
/// let mbu = two_sided::in_range_circuit(AdderKind::Cdkpm, Uncompute::Mbu, 8)?;
/// let saved = 1.0
///     - mbu.circuit.expected_counts().toffoli / plain.circuit.expected_counts().toffoli;
/// assert!(saved > 0.10, "MBU should save a sizeable fraction, got {saved}");
/// # Ok(())
/// # }
/// ```
pub fn in_range_circuit(
    kind: AdderKind,
    uncompute: Uncompute,
    n: usize,
) -> Result<InRange, ArithError> {
    let mut b = CircuitBuilder::new();
    let x = b.qreg("x", n);
    let y = b.qreg("y", n);
    let z = b.qreg("z", n);
    let t = b.qubit();
    in_range(
        &mut b,
        kind,
        uncompute,
        x.qubits(),
        y.qubits(),
        z.qubits(),
        t,
    )?;
    Ok(InRange {
        circuit: b.finish(),
        x,
        y,
        z,
        t,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbu_sim::BasisTracker;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exhaustive_truth_table_small() {
        let n = 2usize;
        for kind in [AdderKind::Cdkpm, AdderKind::Gidney] {
            for unc in [Uncompute::Unitary, Uncompute::Mbu] {
                for x in 0..4u128 {
                    for y in 0..4u128 {
                        for z in 0..4u128 {
                            let layout = in_range_circuit(kind, unc, n).unwrap();
                            layout.circuit.validate().unwrap();
                            for seed in 0..3 {
                                let mut sim = BasisTracker::zeros(layout.circuit.num_qubits());
                                sim.set_value(layout.x.qubits(), x).unwrap();
                                sim.set_value(layout.y.qubits(), y).unwrap();
                                sim.set_value(layout.z.qubits(), z).unwrap();
                                let mut rng = StdRng::seed_from_u64(seed);
                                sim.run(&layout.circuit, &mut rng).unwrap();
                                assert_eq!(
                                    sim.bit(layout.t).unwrap(),
                                    y < x && x < z,
                                    "{kind} {unc}: {x} in ({y},{z})?"
                                );
                                assert_eq!(sim.value(layout.x.qubits()).unwrap(), x);
                                assert_eq!(sim.value(layout.y.qubits()).unwrap(), y);
                                assert_eq!(sim.value(layout.z.qubits()).unwrap(), z);
                                assert!(sim.global_phase().is_zero());
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn mbu_saves_about_a_quarter_of_cdkpm_toffolis() {
        // Thm 4.13: cost drops from 2r + r' to 1.5r + r'. For CDKPM
        // (r = 2n, r' = 2n + 1) that is (6n+1) → (5n+1): ~16%; for the
        // comparator cost alone the saving on the uncompute is 25%.
        let n = 20usize;
        let plain = in_range_circuit(AdderKind::Cdkpm, Uncompute::Unitary, n).unwrap();
        let with_mbu = in_range_circuit(AdderKind::Cdkpm, Uncompute::Mbu, n).unwrap();
        let tp = plain.circuit.expected_counts().toffoli;
        let tm = with_mbu.circuit.expected_counts().toffoli;
        assert_eq!(tp, (6 * n + 1) as f64);
        assert_eq!(tm, (5 * n + 1) as f64);
    }

    #[test]
    fn boundary_values_are_excluded() {
        // The interval is open: x == y and x == z must give 0.
        let n = 3usize;
        let layout = in_range_circuit(AdderKind::Cdkpm, Uncompute::Mbu, n).unwrap();
        for (x, y, z) in [(4u128, 4u128, 6u128), (6, 4, 6), (4, 4, 4)] {
            let mut sim = BasisTracker::zeros(layout.circuit.num_qubits());
            sim.set_value(layout.x.qubits(), x).unwrap();
            sim.set_value(layout.y.qubits(), y).unwrap();
            sim.set_value(layout.z.qubits(), z).unwrap();
            let mut rng = StdRng::seed_from_u64(1);
            sim.run(&layout.circuit, &mut rng).unwrap();
            assert!(!sim.bit(layout.t).unwrap(), "{x} in ({y},{z})");
        }
    }

    #[test]
    fn width_mismatch_rejected() {
        let mut b = CircuitBuilder::new();
        let x = b.qreg("x", 3);
        let y = b.qreg("y", 2);
        let z = b.qreg("z", 3);
        let t = b.qubit();
        assert!(matches!(
            in_range(
                &mut b,
                AdderKind::Cdkpm,
                Uncompute::Unitary,
                x.qubits(),
                y.qubits(),
                z.qubits(),
                t
            ),
            Err(ArithError::WidthMismatch { .. })
        ));
    }
}
