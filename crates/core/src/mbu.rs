//! The measurement-based uncomputation lemma (Lemma 4.1, Figure 24) as a
//! plug-and-play combinator.
//!
//! Given a garbage qubit holding `g(x)` and a self-adjoint circuit `U_g`
//! that XORs `g(x)` back into it, [`uncompute_bit`] restores the qubit to
//! `|0⟩` using:
//!
//! * always: one H gate and one computational-basis measurement;
//! * with probability ½ (outcome 1): two more H gates, one run of `U_g`
//!   (as a phase-kickback oracle) and one X gate.
//!
//! In expectation this halves the cost of the uncomputation — the source of
//! every "with MBU" column in the paper's Table 1.

use mbu_circuit::{Basis, CircuitBuilder, ClbitId, OpBlock, QubitId};

/// Applies Lemma 4.1: uncomputes `garbage` (holding `g(x)`) using the
/// recorded oracle `ug`, which must implement
/// `|x⟩|b⟩ ↦ |x⟩|b ⊕ g(x)⟩` on (`x`-registers, `garbage`).
///
/// Returns the classical bit holding the X-basis measurement outcome
/// (0 = uncomputation came for free, 1 = the correction block ran).
///
/// The emitted protocol is Figure 24: `H`, measure, and — conditioned on
/// outcome 1 — `H · U_g · H · X`, which erases the `(−1)^{g(x)}` phases by
/// kickback and resets the qubit.
///
/// # Examples
///
/// ```
/// use mbu_arith::mbu;
/// use mbu_circuit::CircuitBuilder;
/// use mbu_sim::BasisTracker;
/// use rand::SeedableRng;
///
/// let mut b = CircuitBuilder::new();
/// let q = b.qreg("q", 2); // q0 = x, q1 = garbage
/// // Compute g(x) = x into the garbage qubit, then uncompute it with MBU.
/// let (_, ug) = b.record(|b| b.cx(q[0], q[1]));
/// b.emit(&ug);
/// mbu::uncompute_bit(&mut b, q[1], &ug);
/// let circuit = b.finish();
///
/// let mut sim = BasisTracker::zeros(2);
/// sim.set_bit(q[0], true);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(5);
/// sim.run(&circuit, &mut rng).unwrap();
/// assert_eq!(sim.bit(q[1]).unwrap(), false);
/// assert!(sim.global_phase().is_zero());
/// ```
pub fn uncompute_bit(b: &mut CircuitBuilder, garbage: QubitId, ug: &OpBlock) -> ClbitId {
    b.h(garbage);
    let outcome = b.measure(garbage, Basis::Z);
    let (_, correction) = b.record(|b| {
        b.h(garbage);
        b.emit(ug);
        b.h(garbage);
        b.x(garbage);
    });
    b.emit_conditional(outcome, &correction);
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbu_circuit::CircuitBuilder;
    use mbu_sim::{BasisTracker, Complex, StateVector};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// MBU of g(x0, x1) = x0·x1 computed by a Toffoli.
    fn toffoli_mbu_circuit() -> (mbu_circuit::Circuit, [QubitId; 3]) {
        let mut b = CircuitBuilder::new();
        let q = b.qreg("q", 3);
        let (_, ug) = b.record(|b| b.ccx(q[0], q[1], q[2]));
        b.emit(&ug);
        uncompute_bit(&mut b, q[2], &ug);
        let qubits = [q[0], q[1], q[2]];
        (b.finish(), qubits)
    }

    #[test]
    fn uncomputes_on_every_input_and_seed() {
        let (circuit, q) = toffoli_mbu_circuit();
        for input in 0..4u128 {
            for seed in 0..8 {
                let mut sim = BasisTracker::zeros(3);
                sim.set_value(&[q[0], q[1]], input).unwrap();
                let mut rng = StdRng::seed_from_u64(seed);
                sim.run(&circuit, &mut rng).unwrap();
                assert!(!sim.bit(q[2]).unwrap(), "in={input} seed={seed}");
                assert_eq!(sim.value(&[q[0], q[1]]).unwrap(), input);
                assert!(sim.global_phase().is_zero());
            }
        }
    }

    #[test]
    fn expected_cost_halves_the_oracle() {
        let (circuit, _) = toffoli_mbu_circuit();
        let expected = circuit.expected_counts();
        // One Toffoli to compute, half a Toffoli in expectation to
        // uncompute.
        assert_eq!(expected.toffoli, 1.5);
        // 1 H always + 2 H at weight ½.
        assert_eq!(expected.h, 2.0);
        // 1 X at weight ½.
        assert_eq!(expected.x, 0.5);
        assert_eq!(expected.measure_z, 1.0);
    }

    #[test]
    fn outcome_frequency_is_a_fair_coin() {
        let (circuit, q) = toffoli_mbu_circuit();
        let mut ones = 0u32;
        let trials = 400u64;
        for seed in 0..trials {
            let mut sim = BasisTracker::zeros(3);
            sim.set_value(&[q[0], q[1]], 0b11).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            let ex = sim.run(&circuit, &mut rng).unwrap();
            ones += u32::from(ex.outcome(0).unwrap());
        }
        assert!(ones > 140 && ones < 260, "{ones}/{trials}");
    }

    #[test]
    fn preserves_relative_phases_on_superpositions() {
        // Run compute+MBU on (|00⟩ + |01⟩ + |10⟩ + |11⟩)/2 ⊗ |0⟩ and check
        // the final state is exactly the input — any sign slip on the
        // g(x)=1 component would show in the amplitudes.
        let mut b = CircuitBuilder::new();
        let q = b.qreg("q", 3);
        b.h(q[0]);
        b.h(q[1]);
        let (_, ug) = b.record(|b| b.ccx(q[0], q[1], q[2]));
        b.emit(&ug);
        uncompute_bit(&mut b, q[2], &ug);
        let circuit = b.finish();

        for seed in 0..16 {
            let mut sv = StateVector::zeros(3).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            sv.run(&circuit, &mut rng).unwrap();
            for x in 0..4u64 {
                let amp = sv.amplitude(x);
                assert!(
                    (amp - Complex::new(0.5, 0.0)).norm() < 1e-9,
                    "seed {seed}: amplitude of |{x:02b}0⟩ is {amp}"
                );
            }
        }
    }

    #[test]
    fn worst_case_counts_keep_full_oracle() {
        let (circuit, _) = toffoli_mbu_circuit();
        let counts = circuit.counts();
        assert_eq!(counts.toffoli, 2);
        assert_eq!(counts.h, 3);
        assert_eq!(counts.x, 1);
    }
}
