//! Shared helpers: constant loading and width checks.

use mbu_bitstring::BitString;
use mbu_circuit::{CircuitBuilder, QubitId};

use crate::ArithError;

/// Checks that `reg` has exactly `expected` qubits.
pub(crate) fn expect_width(
    context: &'static str,
    reg: &[QubitId],
    expected: usize,
) -> Result<(), ArithError> {
    if reg.is_empty() {
        return Err(ArithError::EmptyRegister { context });
    }
    if reg.len() != expected {
        return Err(ArithError::WidthMismatch {
            context,
            expected,
            actual: reg.len(),
        });
    }
    Ok(())
}

/// Checks that `reg` is non-empty, returning its width.
pub(crate) fn nonempty(context: &'static str, reg: &[QubitId]) -> Result<usize, ArithError> {
    if reg.is_empty() {
        return Err(ArithError::EmptyRegister { context });
    }
    Ok(reg.len())
}

/// Loads the classical constant `a` into a zeroed register with `|a|` X
/// gates (the LOAD gate of Prop 2.16). Self-inverse: call twice to unload.
///
/// Bits of `a` beyond the register width must be zero (checked by caller).
pub(crate) fn load_const(b: &mut CircuitBuilder, a: &BitString, reg: &[QubitId]) {
    for (i, q) in reg.iter().enumerate() {
        if i < a.width() && a.bit(i) {
            b.x(*q);
        }
    }
}

/// Loads `c · a` into a zeroed register with `|a|` CNOTs from the control
/// (the controlled LOAD of Prop 2.19). Self-inverse.
pub(crate) fn load_const_controlled(
    b: &mut CircuitBuilder,
    control: QubitId,
    a: &BitString,
    reg: &[QubitId],
) {
    for (i, q) in reg.iter().enumerate() {
        if i < a.width() && a.bit(i) {
            b.cx(control, *q);
        }
    }
}

/// Converts `a` to a [`BitString`] of width `n`, checking it fits.
pub(crate) fn const_bits(
    context: &'static str,
    a: u128,
    n: usize,
) -> Result<BitString, ArithError> {
    if n < 128 && a >= (1u128 << n) {
        return Err(ArithError::ConstantOutOfRange {
            context,
            constraint: "constant must fit in the register width",
        });
    }
    Ok(BitString::from_u128(a, n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbu_circuit::CircuitBuilder;

    #[test]
    fn load_const_uses_hamming_weight_x_gates() {
        let mut b = CircuitBuilder::new();
        let r = b.qreg("r", 5);
        let a = BitString::from_u128(0b10110, 5);
        load_const(&mut b, &a, r.qubits());
        let c = b.finish();
        assert_eq!(c.counts().x, 3);
    }

    #[test]
    fn load_const_controlled_uses_cnots() {
        let mut b = CircuitBuilder::new();
        let ctrl = b.qubit();
        let r = b.qreg("r", 4);
        let a = BitString::from_u128(0b1001, 4);
        load_const_controlled(&mut b, ctrl, &a, r.qubits());
        let c = b.finish();
        assert_eq!(c.counts().cx, 2);
    }

    #[test]
    fn const_bits_range_check() {
        assert!(const_bits("test", 16, 4).is_err());
        assert_eq!(const_bits("test", 15, 4).unwrap().to_u128(), 15);
    }

    #[test]
    fn width_checks() {
        let mut b = CircuitBuilder::new();
        let r = b.qreg("r", 3);
        assert!(expect_width("t", r.qubits(), 3).is_ok());
        assert!(matches!(
            expect_width("t", r.qubits(), 4),
            Err(ArithError::WidthMismatch { .. })
        ));
        assert!(matches!(
            expect_width("t", &[], 0),
            Err(ArithError::EmptyRegister { .. })
        ));
        assert_eq!(nonempty("t", r.qubits()).unwrap(), 3);
    }
}
