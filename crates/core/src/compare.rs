//! Quantum comparators (§2.5): register-register, register-constant, and
//! their controlled variants, for every adder family.
//!
//! All comparators are *clean*: operands are restored, only the target bit
//! is XORed. Every implementation computes the comparison as a carry —
//! `1[x > y]` is the carry out of `x + ȳ` — using half the gates of a full
//! subtract-compare-add (Props 2.27, 2.28 and the VBE carry chain), except
//! Draper's, which works in the Fourier basis (Prop 2.26).

use mbu_bitstring::BitString;
use mbu_circuit::{Circuit, CircuitBuilder, QubitId, Register};

use crate::adders::{cdkpm, draper, gidney, vbe};
use crate::util::nonempty;
use crate::{AdderKind, ArithError};

/// Emits `t ⊕= 1[x > y]` (Definition 2.24), restoring `x` and `y`.
///
/// Dispatches to the family's half-subtractor comparator: VBE carry chain,
/// CDKPM (Prop 2.27), Gidney (Prop 2.28) or Draper/Beauregard (Prop 2.26).
///
/// # Errors
///
/// Returns [`ArithError::WidthMismatch`] unless `x.len() == y.len()`.
pub fn compare_gt(
    b: &mut CircuitBuilder,
    kind: AdderKind,
    x: &[QubitId],
    y: &[QubitId],
    t: QubitId,
) -> Result<(), ArithError> {
    match kind {
        AdderKind::Vbe => vbe::compare_gt(b, None, x, y, t),
        AdderKind::Cdkpm => cdkpm::compare_gt(b, None, x, y, t),
        AdderKind::Gidney => gidney::compare_gt(b, None, x, y, t),
        AdderKind::Draper => draper::compare_gt(b, None, x, y, t),
    }
}

/// Emits `t ⊕= control · 1[x > y]` (Definition 2.29; Props 2.30, 2.31).
///
/// # Errors
///
/// Returns [`ArithError::WidthMismatch`] unless `x.len() == y.len()`.
pub fn controlled_compare_gt(
    b: &mut CircuitBuilder,
    kind: AdderKind,
    control: QubitId,
    x: &[QubitId],
    y: &[QubitId],
    t: QubitId,
) -> Result<(), ArithError> {
    match kind {
        AdderKind::Vbe => vbe::compare_gt(b, Some(control), x, y, t),
        AdderKind::Cdkpm => cdkpm::compare_gt(b, Some(control), x, y, t),
        AdderKind::Gidney => gidney::compare_gt(b, Some(control), x, y, t),
        AdderKind::Draper => draper::compare_gt(b, Some(control), x, y, t),
    }
}

/// Emits `t ⊕= 1[y < a]` for a classical constant `a` (Definition 2.33,
/// Prop 2.34): the constant is loaded into an ancilla register with `|a|` X
/// gates, compared (`1[a > y]`), and unloaded.
///
/// # Errors
///
/// Returns [`ArithError`] if `a` does not fit in `y.len()` bits.
pub fn compare_lt_const(
    b: &mut CircuitBuilder,
    kind: AdderKind,
    a: &BitString,
    y: &[QubitId],
    t: QubitId,
) -> Result<(), ArithError> {
    let n = nonempty("constant comparator", y)?;
    for i in n..a.width() {
        if a.bit(i) {
            return Err(ArithError::ConstantOutOfRange {
                context: "constant comparator",
                constraint: "constant must fit in the register width",
            });
        }
    }
    let bits = a.resized(n);
    let loaded = b.ancilla_reg(n);
    crate::util::load_const(b, &bits, loaded.qubits());
    compare_gt(b, kind, loaded.qubits(), y, t)?;
    crate::util::load_const(b, &bits, loaded.qubits());
    b.release_ancilla_reg(loaded);
    Ok(())
}

/// Emits `t ⊕= 1[y < c·a]` — equivalently `t ⊕= c·1[y < a]` since
/// `1[y < 0] = 0` (Definition 2.37, Theorem 2.38): the constant is loaded
/// under control with `|a|` CNOTs, so the comparator itself stays
/// uncontrolled.
///
/// # Errors
///
/// Returns [`ArithError`] if `a` does not fit in `y.len()` bits.
pub fn controlled_compare_lt_const(
    b: &mut CircuitBuilder,
    kind: AdderKind,
    control: QubitId,
    a: &BitString,
    y: &[QubitId],
    t: QubitId,
) -> Result<(), ArithError> {
    let n = nonempty("controlled constant comparator", y)?;
    for i in n..a.width() {
        if a.bit(i) {
            return Err(ArithError::ConstantOutOfRange {
                context: "controlled constant comparator",
                constraint: "constant must fit in the register width",
            });
        }
    }
    let bits = a.resized(n);
    let loaded = b.ancilla_reg(n);
    crate::util::load_const_controlled(b, control, &bits, loaded.qubits());
    compare_gt(b, kind, loaded.qubits(), y, t)?;
    crate::util::load_const_controlled(b, control, &bits, loaded.qubits());
    b.release_ancilla_reg(loaded);
    Ok(())
}

/// Emits `t ⊕= 1[x ≤ y]` — the opposite comparison, obtained by
/// post-composing the comparator with an X on `t` (Remark 2.39).
///
/// # Errors
///
/// Returns [`ArithError::WidthMismatch`] unless `x.len() == y.len()`.
pub fn compare_le(
    b: &mut CircuitBuilder,
    kind: AdderKind,
    x: &[QubitId],
    y: &[QubitId],
    t: QubitId,
) -> Result<(), ArithError> {
    compare_gt(b, kind, x, y, t)?;
    b.x(t);
    Ok(())
}

/// Emits `t ⊕= 1[x > y]` for operands of *unequal* width
/// `y.len() == x.len() + 1` (Remark 2.32): compare against the low bits
/// and absorb `y`'s top bit as a negated control, costing one extra
/// Toffoli instead of a padded register.
///
/// # Errors
///
/// Returns [`ArithError::WidthMismatch`] unless `y.len() == x.len() + 1`.
pub fn compare_gt_mixed(
    b: &mut CircuitBuilder,
    kind: AdderKind,
    x: &[QubitId],
    y: &[QubitId],
    t: QubitId,
) -> Result<(), ArithError> {
    let n = nonempty("mixed-width comparator", x)?;
    crate::util::expect_width("mixed-width comparator second operand", y, n + 1)?;
    // 1[x > y] = ¬y_n · 1[x > y_{0..n}] since x < 2^n.
    let top = y[n];
    b.x(top);
    controlled_compare_gt(b, kind, top, x, &y[..n], t)?;
    b.x(top);
    Ok(())
}

/// Emits `t ⊕= 1[x > y]` via a full subtract–copy–add (Prop 2.25): the
/// generic comparator costing one adder plus one subtractor, used by the
/// original five-adder VBE modular adder.
///
/// `y` must have the extra headroom qubit (`y.len() == x.len() + 1`) so the
/// difference's sign bit exists; the comparison is against `y`'s full
/// `(n+1)`-bit value.
///
/// # Errors
///
/// Returns [`ArithError::WidthMismatch`] unless `y.len() == x.len() + 1`.
pub fn compare_gt_full(
    b: &mut CircuitBuilder,
    kind: AdderKind,
    x: &[QubitId],
    y: &[QubitId],
    t: QubitId,
) -> Result<(), ArithError> {
    let n = nonempty("full comparator", x)?;
    crate::util::expect_width("full comparator second operand", y, n + 1)?;
    crate::adders::sub(b, kind, x, y)?;
    b.cx(y[n], t);
    crate::adders::add(b, kind, x, y)
}

/// A standalone comparator circuit plus its registers.
#[derive(Clone, Debug)]
pub struct Comparator {
    /// The full circuit.
    pub circuit: Circuit,
    /// First operand `x`.
    pub x: Register,
    /// Second operand `y`.
    pub y: Register,
    /// Target bit receiving `1[x > y]`.
    pub t: QubitId,
}

/// Builds a standalone comparator `t ⊕= 1[x > y]`.
///
/// # Errors
///
/// Returns [`ArithError`] for `n = 0` or oversized Draper widths.
///
/// # Examples
///
/// ```
/// use mbu_arith::{compare, AdderKind};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cmp = compare::comparator(AdderKind::Gidney, 16)?;
/// assert_eq!(cmp.circuit.counts().toffoli, 16); // n Toffolis
/// # Ok(())
/// # }
/// ```
pub fn comparator(kind: AdderKind, n: usize) -> Result<Comparator, ArithError> {
    let mut b = CircuitBuilder::new();
    let x = b.qreg("x", n);
    let y = b.qreg("y", n);
    let t = b.qubit();
    compare_gt(&mut b, kind, x.qubits(), y.qubits(), t)?;
    Ok(Comparator {
        circuit: b.finish(),
        x,
        y,
        t,
    })
}

/// A standalone constant comparator plus its registers.
#[derive(Clone, Debug)]
pub struct ConstComparator {
    /// The full circuit.
    pub circuit: Circuit,
    /// The compared register.
    pub y: Register,
    /// Target bit receiving `1[y < a]`.
    pub t: QubitId,
}

/// Builds a standalone constant comparator `t ⊕= 1[y < a]`.
///
/// # Errors
///
/// Returns [`ArithError`] if `a` does not fit in `n` bits.
pub fn const_comparator(kind: AdderKind, n: usize, a: u128) -> Result<ConstComparator, ArithError> {
    let bits = crate::util::const_bits("constant comparator", a, n.max(1))?;
    let mut b = CircuitBuilder::new();
    let y = b.qreg("y", n);
    let t = b.qubit();
    compare_lt_const(&mut b, kind, &bits, y.qubits(), t)?;
    Ok(ConstComparator {
        circuit: b.finish(),
        y,
        t,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbu_sim::{BasisTracker, StateVector};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const RIPPLE_KINDS: [AdderKind; 3] = [AdderKind::Vbe, AdderKind::Cdkpm, AdderKind::Gidney];

    fn run_ripple(
        circuit: &Circuit,
        inputs: &[(&[QubitId], u128)],
        out: QubitId,
        seed: u64,
    ) -> bool {
        circuit.validate().unwrap();
        let mut sim = BasisTracker::zeros(circuit.num_qubits());
        for (reg, v) in inputs {
            sim.set_value(reg, *v).unwrap();
        }
        let mut rng = StdRng::seed_from_u64(seed);
        sim.run(circuit, &mut rng).unwrap();
        assert!(sim.global_phase().is_zero());
        sim.bit(out).unwrap()
    }

    #[test]
    fn comparators_exhaustive_all_ripple_kinds() {
        let n = 3usize;
        for kind in RIPPLE_KINDS {
            for x in 0..(1u128 << n) {
                for y in 0..(1u128 << n) {
                    let cmp = comparator(kind, n).unwrap();
                    let got = run_ripple(
                        &cmp.circuit,
                        &[(cmp.x.qubits(), x), (cmp.y.qubits(), y)],
                        cmp.t,
                        1,
                    );
                    assert_eq!(got, x > y, "{kind}: {x}>{y}");
                }
            }
        }
    }

    #[test]
    fn draper_comparator_exhaustive() {
        let n = 2usize;
        for x in 0..(1u64 << n) {
            for y in 0..(1u64 << n) {
                let cmp = comparator(AdderKind::Draper, n).unwrap();
                cmp.circuit.validate().unwrap();
                let mut sv = StateVector::zeros(cmp.circuit.num_qubits()).unwrap();
                sv.prepare_basis(StateVector::index_with(&[
                    (cmp.x.qubits(), x),
                    (cmp.y.qubits(), y),
                ]))
                .unwrap();
                let mut rng = StdRng::seed_from_u64(0);
                sv.run(&cmp.circuit, &mut rng).unwrap();
                let (idx, _) = sv.as_basis(1e-9).unwrap();
                assert_eq!(
                    StateVector::register_value(idx, &[cmp.t]),
                    u64::from(x > y),
                    "{x}>{y}"
                );
            }
        }
    }

    #[test]
    fn const_comparator_matches_reference() {
        let n = 3usize;
        for kind in RIPPLE_KINDS {
            for a in 0..(1u128 << n) {
                for y in 0..(1u128 << n) {
                    let cmp = const_comparator(kind, n, a).unwrap();
                    let got = run_ripple(&cmp.circuit, &[(cmp.y.qubits(), y)], cmp.t, 2);
                    assert_eq!(got, y < a, "{kind}: {y}<{a}");
                }
            }
        }
    }

    #[test]
    fn const_comparator_uses_2a_x_gates() {
        let n = 5usize;
        let a = 0b10101u128; // |a| = 3
        let cmp = const_comparator(AdderKind::Cdkpm, n, a).unwrap();
        let counts = cmp.circuit.counts();
        // 2|a| loads + 2n complements inside the comparator.
        assert_eq!(counts.x, 2 * 3 + 2 * n as u64);
    }

    #[test]
    fn controlled_compare_gt_truth_table() {
        let n = 3usize;
        for kind in RIPPLE_KINDS {
            for ctrl in [0u128, 1] {
                for (x, y) in [(5u128, 2u128), (2, 5), (4, 4)] {
                    let mut b = CircuitBuilder::new();
                    let c = b.qubit();
                    let xr = b.qreg("x", n);
                    let yr = b.qreg("y", n);
                    let t = b.qubit();
                    controlled_compare_gt(&mut b, kind, c, xr.qubits(), yr.qubits(), t).unwrap();
                    let circ = b.finish();
                    let got = run_ripple(
                        &circ,
                        &[(&[c], ctrl), (xr.qubits(), x), (yr.qubits(), y)],
                        t,
                        3,
                    );
                    assert_eq!(got, ctrl == 1 && x > y, "{kind} c={ctrl} {x}>{y}");
                }
            }
        }
    }

    #[test]
    fn controlled_const_comparator_truth_table() {
        let n = 3usize;
        let a = 5u128;
        for kind in RIPPLE_KINDS {
            for ctrl in [0u128, 1] {
                for y in [0u128, 4, 5, 7] {
                    let mut b = CircuitBuilder::new();
                    let c = b.qubit();
                    let yr = b.qreg("y", n);
                    let t = b.qubit();
                    let bits = BitString::from_u128(a, n);
                    controlled_compare_lt_const(&mut b, kind, c, &bits, yr.qubits(), t).unwrap();
                    let circ = b.finish();
                    let got = run_ripple(&circ, &[(&[c], ctrl), (yr.qubits(), y)], t, 4);
                    assert_eq!(got, ctrl == 1 && y < a, "{kind} c={ctrl} {y}<{a}");
                }
            }
        }
    }

    #[test]
    fn comparator_double_application_cancels() {
        // Comparators are self-adjoint Ug oracles: applying twice is the
        // identity on t — the property the MBU lemma relies on.
        let n = 4usize;
        for kind in RIPPLE_KINDS {
            let mut b = CircuitBuilder::new();
            let xr = b.qreg("x", n);
            let yr = b.qreg("y", n);
            let t = b.qubit();
            compare_gt(&mut b, kind, xr.qubits(), yr.qubits(), t).unwrap();
            compare_gt(&mut b, kind, xr.qubits(), yr.qubits(), t).unwrap();
            let circ = b.finish();
            let got = run_ripple(&circ, &[(xr.qubits(), 9), (yr.qubits(), 4)], t, 5);
            assert!(!got, "{kind}: double comparison must cancel");
        }
    }

    #[test]
    fn compare_le_is_the_negation() {
        let n = 3usize;
        for kind in RIPPLE_KINDS {
            for (x, y) in [(2u128, 5u128), (5, 2), (4, 4)] {
                let mut b = CircuitBuilder::new();
                let xr = b.qreg("x", n);
                let yr = b.qreg("y", n);
                let t = b.qubit();
                compare_le(&mut b, kind, xr.qubits(), yr.qubits(), t).unwrap();
                let circ = b.finish();
                let got = run_ripple(&circ, &[(xr.qubits(), x), (yr.qubits(), y)], t, 6);
                assert_eq!(got, x <= y, "{kind}: {x} <= {y}");
            }
        }
    }

    #[test]
    fn mixed_width_comparator_exhaustive() {
        // Remark 2.32: x is n bits, y is n+1 bits.
        let n = 2usize;
        for kind in RIPPLE_KINDS {
            for x in 0..(1u128 << n) {
                for y in 0..(1u128 << (n + 1)) {
                    let mut b = CircuitBuilder::new();
                    let xr = b.qreg("x", n);
                    let yr = b.qreg("y", n + 1);
                    let t = b.qubit();
                    compare_gt_mixed(&mut b, kind, xr.qubits(), yr.qubits(), t).unwrap();
                    let circ = b.finish();
                    let got = run_ripple(&circ, &[(xr.qubits(), x), (yr.qubits(), y)], t, 7);
                    assert_eq!(got, x > y, "{kind}: {x} > {y}");
                }
            }
        }
    }

    #[test]
    fn mixed_width_costs_one_extra_toffoli() {
        let n = 8usize;
        let mut b = CircuitBuilder::new();
        let xr = b.qreg("x", n);
        let yr = b.qreg("y", n + 1);
        let t = b.qubit();
        compare_gt_mixed(&mut b, AdderKind::Cdkpm, xr.qubits(), yr.qubits(), t).unwrap();
        let mixed = b.finish().counts().toffoli;
        let plain = comparator(AdderKind::Cdkpm, n)
            .unwrap()
            .circuit
            .counts()
            .toffoli;
        assert_eq!(mixed, plain + 1);
    }

    #[test]
    fn full_comparator_matches_half_comparator() {
        // Prop 2.25 (adder + subtractor) agrees with the half-subtractor
        // comparator on the low bits whenever y's top bit is clear.
        let n = 3usize;
        for kind in RIPPLE_KINDS {
            for x in 0..(1u128 << n) {
                for y in 0..(1u128 << n) {
                    let mut b = CircuitBuilder::new();
                    let xr = b.qreg("x", n);
                    let yr = b.qreg("y", n + 1);
                    let t = b.qubit();
                    compare_gt_full(&mut b, kind, xr.qubits(), yr.qubits(), t).unwrap();
                    let circ = b.finish();
                    let got = run_ripple(&circ, &[(xr.qubits(), x), (yr.qubits(), y)], t, 8);
                    assert_eq!(got, x > y, "{kind}: {x} > {y}");
                }
            }
        }
    }

    #[test]
    fn full_comparator_restores_y() {
        let n = 5usize;
        let (x, y) = (21u128, 13u128);
        let mut b = CircuitBuilder::new();
        let xr = b.qreg("x", n);
        let yr = b.qreg("y", n + 1);
        let t = b.qubit();
        compare_gt_full(&mut b, AdderKind::Gidney, xr.qubits(), yr.qubits(), t).unwrap();
        let circ = b.finish();
        let mut sim = BasisTracker::zeros(circ.num_qubits());
        sim.set_value(xr.qubits(), x).unwrap();
        sim.set_value(yr.qubits(), y).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        sim.run(&circ, &mut rng).unwrap();
        assert_eq!(sim.value(yr.qubits()).unwrap(), y);
        assert_eq!(sim.bit(t).unwrap(), x > y);
        assert!(sim.global_phase().is_zero());
    }

    #[test]
    fn oversized_constant_rejected() {
        assert!(matches!(
            const_comparator(AdderKind::Cdkpm, 3, 9),
            Err(ArithError::ConstantOutOfRange { .. })
        ));
    }

    #[test]
    fn comparator_toffoli_counts_per_family() {
        let n = 8usize;
        assert_eq!(
            comparator(AdderKind::Cdkpm, n)
                .unwrap()
                .circuit
                .counts()
                .toffoli,
            2 * n as u64
        );
        assert_eq!(
            comparator(AdderKind::Gidney, n)
                .unwrap()
                .circuit
                .counts()
                .toffoli,
            n as u64
        );
        assert_eq!(
            comparator(AdderKind::Vbe, n)
                .unwrap()
                .circuit
                .counts()
                .toffoli,
            4 * n as u64 - 2
        );
        assert_eq!(
            comparator(AdderKind::Draper, n)
                .unwrap()
                .circuit
                .counts()
                .toffoli,
            0
        );
    }
}
