//! The paper's closed-form resource formulas, as code.
//!
//! Every row of Tables 1–6 is reproduced here exactly as printed, so the
//! benchmark harness can show *paper formula* and *measured-from-circuit*
//! side by side. `w` denotes `|p|`, the Hamming weight of the modulus, and
//! `wa` denotes `|a|` for constant operands.
//!
//! The paper's formulas occasionally drop small additive terms (its own
//! Prop 2.2 says "4n Tof" for a circuit with 4n−2); EXPERIMENTS.md records
//! every deviation between these formulas and our constructed circuits.

use crate::AdderKind;

/// A row of Table 1: modular-addition cost in the VBE architecture.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Table1Cost {
    /// Total logical qubits.
    pub logical_qubits: f64,
    /// Toffoli gates (expected value when `mbu` was requested).
    pub toffoli: f64,
    /// CNOT + CZ gates.
    pub cnot_cz: f64,
    /// X gates.
    pub x: f64,
    /// `QFT_{n+1}` units (Draper rows only; 0 elsewhere).
    pub qft: f64,
    /// `PCQFT_{n+1}` units (Draper rows only).
    pub pcqft: f64,
}

/// The modular-adder architectures of Table 1.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Table1Row {
    /// "(5 adder) VBE": original \[VBE96\] with a two-adder final comparator.
    Vbe5,
    /// "(4 adder) VBE": carry-chain final comparator.
    Vbe4,
    /// CDKPM everywhere (Prop 3.4 / Thm 4.3).
    Cdkpm,
    /// Gidney everywhere (Prop 3.5 / Thm 4.4).
    Gidney,
    /// Gidney + CDKPM hybrid (Thm 3.6 / Thm 4.5).
    CdkpmGidney,
    /// Draper/Beauregard QFT modular adder (Prop 3.7 / Thm 4.6).
    Draper,
    /// Draper amortised over repeated additions ("Draper (Expect)").
    DraperExpect,
}

impl Table1Row {
    /// All rows, in the paper's order.
    pub const ALL: [Table1Row; 7] = [
        Table1Row::Vbe5,
        Table1Row::Vbe4,
        Table1Row::Cdkpm,
        Table1Row::Gidney,
        Table1Row::CdkpmGidney,
        Table1Row::Draper,
        Table1Row::DraperExpect,
    ];

    /// The row's label as printed in the paper.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Table1Row::Vbe5 => "(5 adder) VBE",
            Table1Row::Vbe4 => "(4 adder) VBE",
            Table1Row::Cdkpm => "CDKPM",
            Table1Row::Gidney => "Gidney",
            Table1Row::CdkpmGidney => "CDKPM+Gidney",
            Table1Row::Draper => "Draper",
            Table1Row::DraperExpect => "Draper (Expect)",
        }
    }
}

/// Table 1: cost of modular addition for a given architecture, width `n`,
/// modulus Hamming weight `w = |p|`, with or without MBU.
#[must_use]
pub fn table1(row: Table1Row, n: f64, w: f64, mbu: bool) -> Table1Cost {
    let (logical_qubits, toffoli, cnot_cz, x, qft, pcqft) = match (row, mbu) {
        (Table1Row::Vbe5, false) => (
            4.0 * n + 2.0,
            20.0 * n + 10.0,
            20.0 * n + 2.0 * w + 22.0,
            w + 2.0,
            0.0,
            0.0,
        ),
        (Table1Row::Vbe5, true) => (
            4.0 * n + 2.0,
            16.0 * n + 8.0,
            16.0 * n + 2.0 * w + 18.0,
            w + 2.5,
            0.0,
            0.0,
        ),
        (Table1Row::Vbe4, false) => (
            4.0 * n + 2.0,
            16.0 * n + 4.0,
            20.0 * n + 2.0 * w + 18.0,
            2.0 * w + 1.0,
            0.0,
            0.0,
        ),
        (Table1Row::Vbe4, true) => (
            4.0 * n + 2.0,
            14.0 * n + 4.0,
            17.0 * n + 2.0 * w + 15.5,
            2.0 * w + 1.5,
            0.0,
            0.0,
        ),
        (Table1Row::Cdkpm, false) => (
            3.0 * n + 2.0,
            8.0 * n,
            16.0 * n + 2.0 * w + 4.0,
            2.0 * w + 1.0,
            0.0,
            0.0,
        ),
        (Table1Row::Cdkpm, true) => (
            3.0 * n + 2.0,
            7.0 * n,
            14.0 * n + 2.0 * w + 3.5,
            2.0 * w + 1.5,
            0.0,
            0.0,
        ),
        (Table1Row::Gidney, false) => (
            4.0 * n + 2.0,
            4.0 * n,
            26.0 * n + 2.0 * w + 4.0,
            2.0 * w + 1.0,
            0.0,
            0.0,
        ),
        (Table1Row::Gidney, true) => (
            4.0 * n + 2.0,
            3.5 * n,
            22.75 * n + 2.0 * w + 3.5,
            2.0 * w + 1.5,
            0.0,
            0.0,
        ),
        (Table1Row::CdkpmGidney, false) => (
            3.0 * n + 2.0,
            6.0 * n,
            21.0 * n + 2.0 * w + 4.0,
            2.0 * w + 1.0,
            0.0,
            0.0,
        ),
        (Table1Row::CdkpmGidney, true) => (
            3.0 * n + 2.0,
            5.5 * n,
            17.75 * n + 2.0 * w + 3.5,
            2.0 * w + 1.5,
            0.0,
            0.0,
        ),
        (Table1Row::Draper, false) => (2.0 * n + 2.0, 0.0, 0.0, 0.0, 10.0, 1.0),
        (Table1Row::Draper, true) => (2.0 * n + 2.0, 0.0, 0.0, 0.0, 8.0, 1.0),
        (Table1Row::DraperExpect, false) => (2.0 * n + 2.0, 0.0, 0.0, 0.0, 8.0, 1.0),
        (Table1Row::DraperExpect, true) => (2.0 * n + 2.0, 0.0, 0.0, 0.0, 6.0, 1.0),
    };
    Table1Cost {
        logical_qubits,
        toffoli,
        cnot_cz,
        x,
        qft,
        pcqft,
    }
}

/// A row of Tables 2–6: a primitive's cost.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct PrimitiveCost {
    /// Toffoli gates.
    pub toffoli: f64,
    /// Ancilla qubits.
    pub ancillas: f64,
    /// CNOT gates.
    pub cnot: f64,
    /// `QFT_{n+1}` units (Draper rows).
    pub qft: f64,
}

/// Table 2: plain adders (Props 2.2–2.5).
#[must_use]
pub fn table2_plain_adder(kind: AdderKind, n: f64) -> PrimitiveCost {
    match kind {
        AdderKind::Vbe => PrimitiveCost {
            toffoli: 4.0 * n,
            ancillas: n,
            cnot: 4.0 * n + 4.0,
            qft: 0.0,
        },
        AdderKind::Cdkpm => PrimitiveCost {
            toffoli: 2.0 * n,
            ancillas: 1.0,
            cnot: 4.0 * n + 1.0,
            qft: 0.0,
        },
        AdderKind::Gidney => PrimitiveCost {
            toffoli: n,
            ancillas: n,
            cnot: 6.0 * n - 1.0,
            qft: 0.0,
        },
        AdderKind::Draper => PrimitiveCost {
            toffoli: 0.0,
            ancillas: 0.0,
            cnot: 0.0,
            qft: 3.0,
        },
    }
}

/// Table 3: controlled adders (Thm 2.12, Prop 2.11, Thm 2.14).
#[must_use]
pub fn table3_controlled_adder(kind: AdderKind, n: f64) -> PrimitiveCost {
    match kind {
        AdderKind::Cdkpm => PrimitiveCost {
            toffoli: 3.0 * n,
            ancillas: 1.0,
            cnot: 4.0 * n + 1.0,
            qft: 0.0,
        },
        AdderKind::Gidney => PrimitiveCost {
            toffoli: 2.0 * n,
            ancillas: n + 1.0,
            cnot: 7.0 * n - 1.0,
            qft: 0.0,
        },
        AdderKind::Draper => PrimitiveCost {
            toffoli: n,
            ancillas: 1.0,
            cnot: 0.0,
            qft: 3.0,
        },
        // Cor 2.10: any adder + n ancillas + n extra Toffolis.
        AdderKind::Vbe => PrimitiveCost {
            toffoli: 4.0 * n + 2.0 * n,
            ancillas: 2.0 * n,
            cnot: 4.0 * n + 4.0,
            qft: 0.0,
        },
    }
}

/// Table 4: adders by a constant (Props 2.16–2.17).
#[must_use]
pub fn table4_const_adder(kind: AdderKind, n: f64) -> PrimitiveCost {
    match kind {
        AdderKind::Cdkpm => PrimitiveCost {
            toffoli: 2.0 * n,
            ancillas: n + 1.0,
            cnot: 4.0 * n + 1.0,
            qft: 0.0,
        },
        AdderKind::Gidney => PrimitiveCost {
            toffoli: n,
            ancillas: 2.0 * n,
            cnot: 6.0 * n - 1.0,
            qft: 0.0,
        },
        AdderKind::Draper => PrimitiveCost {
            toffoli: 0.0,
            ancillas: 0.0,
            cnot: 0.0,
            qft: 2.0, // plus one ΦADD(a)
        },
        AdderKind::Vbe => PrimitiveCost {
            toffoli: 4.0 * n,
            ancillas: 2.0 * n,
            cnot: 4.0 * n + 4.0,
            qft: 0.0,
        },
    }
}

/// Table 5: controlled adders by a constant `a` (Props 2.19–2.20); the
/// control adds `2·wa` CNOTs, where `wa = |a|`.
#[must_use]
pub fn table5_controlled_const_adder(kind: AdderKind, n: f64, wa: f64) -> PrimitiveCost {
    let base = table4_const_adder(kind, n);
    match kind {
        AdderKind::Draper => base,
        _ => PrimitiveCost {
            cnot: base.cnot + 2.0 * wa,
            ..base
        },
    }
}

/// Table 6: comparators (Props 2.26–2.28).
#[must_use]
pub fn table6_comparator(kind: AdderKind, n: f64) -> PrimitiveCost {
    match kind {
        AdderKind::Cdkpm => PrimitiveCost {
            toffoli: 2.0 * n,
            ancillas: 1.0,
            cnot: 4.0 * n + 1.0,
            qft: 0.0,
        },
        AdderKind::Gidney => PrimitiveCost {
            toffoli: n,
            ancillas: n,
            cnot: 6.0 * n + 1.0,
            qft: 0.0,
        },
        AdderKind::Draper => PrimitiveCost {
            toffoli: 0.0,
            ancillas: 1.0,
            cnot: 1.0,
            qft: 6.0,
        },
        AdderKind::Vbe => PrimitiveCost {
            toffoli: 4.0 * n,
            ancillas: n,
            cnot: 4.0 * n + 4.0,
            qft: 0.0,
        },
    }
}

/// The headline §1.1 MBU saving for a Table-1 row: the relative Toffoli
/// reduction `1 − Tof_MBU / Tof_plain`.
#[must_use]
pub fn headline_toffoli_saving(row: Table1Row, n: f64, w: f64) -> f64 {
    let plain = table1(row, n, w, false).toffoli;
    let with_mbu = table1(row, n, w, true).toffoli;
    if plain == 0.0 {
        0.0
    } else {
        1.0 - with_mbu / plain
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_printed_formulas_at_n_16() {
        let n = 16.0;
        let w = 9.0;
        let c = table1(Table1Row::Cdkpm, n, w, false);
        assert_eq!(c.toffoli, 128.0);
        assert_eq!(c.logical_qubits, 50.0);
        assert_eq!(c.cnot_cz, 16.0 * n + 2.0 * w + 4.0);

        let g = table1(Table1Row::Gidney, n, w, true);
        assert_eq!(g.toffoli, 56.0);

        let d = table1(Table1Row::Draper, n, w, true);
        assert_eq!(d.qft, 8.0);
    }

    #[test]
    fn mbu_savings_land_in_the_claimed_bands() {
        // §1.1: "10% to 15% for modular adders based on \[VBE96\]" (the
        // CDKPM/Gidney instantiations) and ≈20% for the original 5-adder
        // VBE row.
        let n = 64.0;
        let w = 33.0;
        for row in [Table1Row::Cdkpm, Table1Row::Gidney, Table1Row::Vbe4] {
            let s = headline_toffoli_saving(row, n, w);
            assert!((0.08..=0.16).contains(&s), "{row:?}: {s}");
        }
        let s5 = headline_toffoli_saving(Table1Row::Vbe5, n, w);
        assert!((0.18..=0.22).contains(&s5), "Vbe5: {s5}");
    }

    #[test]
    fn table_rows_are_internally_consistent() {
        let n = 32.0;
        // Controlled costs dominate plain costs.
        for kind in [AdderKind::Cdkpm, AdderKind::Gidney] {
            assert!(
                table3_controlled_adder(kind, n).toffoli >= table2_plain_adder(kind, n).toffoli
            );
        }
        // The control on a constant adder costs CNOTs only.
        let t4 = table4_const_adder(AdderKind::Cdkpm, n);
        let t5 = table5_controlled_const_adder(AdderKind::Cdkpm, n, 10.0);
        assert_eq!(t5.toffoli, t4.toffoli);
        assert_eq!(t5.cnot, t4.cnot + 20.0);
    }

    #[test]
    fn labels_cover_all_rows() {
        for row in Table1Row::ALL {
            assert!(!row.label().is_empty());
        }
    }
}
