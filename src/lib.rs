//! Facade over the `mbu` workspace: a single dependency pulling in every
//! layer of the reproduction of *"Measurement-based uncomputation of
//! quantum circuits for modular arithmetic"* (Luongo, Miti, Narasimhachar,
//! Sireesh, DAC 2025 / arXiv:2407.20167).
//!
//! The workspace is layered bottom-up:
//!
//! | Re-export | Crate | Role |
//! |---|---|---|
//! | [`bitstring`] | `mbu-bitstring` | classical reference arithmetic (§1.3, Appendix A) |
//! | [`circuit`] | `mbu-circuit` | adaptive-circuit IR, builder, resource accounting, and the [`circuit::CompiledCircuit`] lower → passes → execute pipeline |
//! | [`arith`] | `mbu-arith` | every adder/comparator/modular construction of the paper |
//! | [`sim`] | `mbu-sim` | basis tracker + stride-kernel state vector behind the [`sim::Simulator`] trait (interpreted [`sim::Simulator::run`] and compiled [`sim::Simulator::run_compiled`] execution), the [`sim::ShotRunner`] ensemble engine, and the [`sim::BranchEnsemble`] branch-tree engine (exact distributions / bit-compatible sampling) |
//! | [`bench`] | `mbu-bench` | table/figure regeneration harness |
//!
//! This crate also owns the cross-crate integration tests (`tests/`) and
//! the runnable examples (`examples/`).
//!
//! # Examples
//!
//! ```
//! use mbu::arith::{modular, AdderKind, Uncompute};
//! use mbu::sim::{BasisTracker, ShotRunner, Simulator};
//!
//! let spec = modular::ModAddSpec::uniform(AdderKind::Cdkpm, Uncompute::Mbu);
//! let layout = modular::modadd_circuit(&spec, 4, 13).unwrap();
//! let ensemble = ShotRunner::new(64)
//!     .run(&layout.circuit, || {
//!         let mut sim = BasisTracker::zeros(layout.circuit.num_qubits());
//!         sim.set_value(layout.x.qubits(), 7);
//!         sim.set_value(layout.y.qubits(), 9);
//!         Box::new(sim)
//!     })
//!     .unwrap();
//! assert_eq!(ensemble.shots(), 64);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mbu_arith as arith;
pub use mbu_bench as bench;
pub use mbu_bitstring as bitstring;
pub use mbu_circuit as circuit;
pub use mbu_sim as sim;
