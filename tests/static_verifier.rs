//! Acceptance suite for the static verifier on the paper's workloads.
//!
//! The compiler's Layer-2 equivalence checker must *prove* — without
//! simulating a single amplitude — that the peephole window, both fusion
//! passes and the dead-qubit reclamation pass preserve every Table 1–6
//! circuit at the paper's benchmark width n = 64. The proof obligation is
//! discharged symbolically: the checker walks the lowered and the
//! optimised instruction streams in lockstep and keeps their difference
//! operator in the exact ring `Z[e^{2πiθ}, 1/√2]`, so `Equal` here is a
//! theorem about the unitaries, not a float comparison at one input.
//!
//! The suite also pins the *localisation* contract: a single mutated
//! instruction in an otherwise-identical stream must be flagged at its
//! exact program counter, on randomly chosen instructions across gate
//! families (angle bumps, basis swaps, operand swaps).

use mbu_arith::{adders, compare, resources::Table1Row, AdderKind, Uncompute};
use mbu_bench::{benchmark_modulus, build_row_circuit};
use mbu_circuit::{
    check_equivalence, check_equivalence_with, Angle, Circuit, CompiledCircuit, Equivalence, Gate,
    Instr, PassConfig, ProgramView, QubitId,
};
use proptest::prelude::*;

/// The paper's headline benchmark width (Table 1 reports n = 64 rows).
const N: usize = 64;

const ALL_KINDS: [AdderKind; 4] = [
    AdderKind::Vbe,
    AdderKind::Cdkpm,
    AdderKind::Gidney,
    AdderKind::Draper,
];

/// Proves each optimising configuration equivalent to the plain lowering
/// of `circuit`, symbolically.
fn prove_passes(circuit: &Circuit, label: &str) {
    let lowered = CompiledCircuit::lower(circuit).unwrap();
    let configs = [
        // The peephole window alone (cancellation, rotation merging,
        // identity removal), fusion and reclamation off.
        (
            "peephole",
            PassConfig {
                fuse_max_qubits: 0,
                reclaim_dead_qubits: false,
                ..PassConfig::default()
            },
        ),
        // Both fusion passes alone (dense blocks and permutation runs),
        // with the peephole window off.
        (
            "fusion",
            PassConfig {
                fuse_max_qubits: 3,
                ..PassConfig::none()
            },
        ),
        // The default pipeline: peephole + fusion + reclamation.
        ("default", PassConfig::default()),
    ];
    for (name, config) in configs {
        let compiled = CompiledCircuit::with_config(circuit, &config).unwrap();
        let verdict = check_equivalence(&lowered, &compiled);
        assert!(
            verdict.is_equal(),
            "{label} [{name}] failed the symbolic proof: {verdict}"
        );
    }
}

/// Tables 2–6: every standalone primitive at n = 64, every architecture.
#[test]
fn table_2_to_6_primitives_prove_equal_at_n64() {
    let a = benchmark_modulus(N); // a dense-bit 64-bit constant
    for kind in ALL_KINDS {
        let label = |what: &str| format!("{kind:?} {what} (n = {N})");
        prove_passes(
            &adders::plain_adder(kind, N).unwrap().circuit,
            &label("plain adder"),
        );
        prove_passes(
            &adders::subtractor(kind, N).unwrap().circuit,
            &label("subtractor"),
        );
        prove_passes(
            &adders::controlled_adder(kind, N).unwrap().circuit,
            &label("controlled adder"),
        );
        prove_passes(
            &adders::const_adder(kind, N, a).unwrap().circuit,
            &label("const adder"),
        );
        prove_passes(
            &adders::controlled_const_adder(kind, N, a).unwrap().circuit,
            &label("controlled const adder"),
        );
        prove_passes(
            &compare::comparator(kind, N).unwrap().circuit,
            &label("comparator"),
        );
    }
}

/// Table 1: every MBU modular-adder architecture row at n = 64, against
/// the benchmark modulus (the largest prime below 2^64).
#[test]
fn table1_modadd_rows_prove_equal_at_n64() {
    let p = benchmark_modulus(N);
    let rows = [
        Table1Row::Vbe5,
        Table1Row::Vbe4,
        Table1Row::Cdkpm,
        Table1Row::Gidney,
        Table1Row::CdkpmGidney,
        Table1Row::Draper,
    ];
    for row in rows {
        let layout = build_row_circuit(row, Uncompute::Mbu, N, p).unwrap();
        prove_passes(&layout.circuit, &format!("{row:?} modadd (n = {N})"));
    }
}

/// The careful profile (tests run with debug assertions on) verifies
/// every compile end to end and stamps the stats line.
#[test]
fn compiled_programs_arrive_verified_under_the_careful_profile() {
    let adder = adders::plain_adder(AdderKind::Cdkpm, 8).unwrap();
    let compiled = CompiledCircuit::compile(&adder.circuit).unwrap();
    compiled
        .verify()
        .expect("a fresh compile re-verifies clean");
    assert!(compiled.stats().verified, "careful profile verifies inline");
    assert!(
        compiled.stats().to_string().contains("verified"),
        "the stats line surfaces the verification outcome"
    );
}

/// Layer 1 pinpoints an injected malformed operand at its exact pc.
#[test]
fn validator_pinpoints_an_injected_out_of_range_operand() {
    let adder = adders::plain_adder(AdderKind::Gidney, 8).unwrap();
    let compiled = CompiledCircuit::lower(&adder.circuit).unwrap();
    let mut instrs = compiled.instrs().to_vec();
    let target = instrs.len() / 2;
    instrs[target] = Instr::Gate(Gate::X(QubitId(u32::MAX)));
    let view = ProgramView::new(
        compiled.num_qubits(),
        compiled.num_clbits(),
        &instrs,
        compiled.fused_unitaries(),
    );
    let findings = mbu_circuit::validate(&view);
    assert!(!findings.is_empty(), "the bad operand must be flagged");
    assert_eq!(findings[0].pc(), Some(target), "flagged at the exact pc");
}

/// The gate-family pools a random mutation picks its target from.
fn phase_pcs(instrs: &[Instr]) -> Vec<usize> {
    instrs
        .iter()
        .enumerate()
        .filter(|(_, i)| {
            matches!(
                i,
                Instr::Gate(Gate::Phase(..) | Gate::CPhase(..) | Gate::CcPhase(..))
            )
        })
        .map(|(pc, _)| pc)
        .collect()
}

fn x_pcs(instrs: &[Instr]) -> Vec<usize> {
    instrs
        .iter()
        .enumerate()
        .filter(|(_, i)| matches!(i, Instr::Gate(Gate::X(_))))
        .map(|(pc, _)| pc)
        .collect()
}

fn cx_pcs(instrs: &[Instr]) -> Vec<usize> {
    instrs
        .iter()
        .enumerate()
        .filter(|(_, i)| matches!(i, Instr::Gate(Gate::Cx(..))))
        .map(|(pc, _)| pc)
        .collect()
}

/// Bumps a phase-family angle by a quarter turn — always a different
/// unitary, never out of the dyadic domain for adder angles.
fn bump_angle(instr: &Instr) -> Instr {
    let quarter = Angle::turn_over_power_of_two(2);
    let bump = |theta: &Angle| {
        theta
            .checked_add(quarter)
            .expect("adder angles are shallow")
    };
    match instr {
        Instr::Gate(Gate::Phase(q, theta)) => Instr::Gate(Gate::Phase(*q, bump(theta))),
        Instr::Gate(Gate::CPhase(a, b, theta)) => Instr::Gate(Gate::CPhase(*a, *b, bump(theta))),
        Instr::Gate(Gate::CcPhase(a, b, c, theta)) => {
            Instr::Gate(Gate::CcPhase(*a, *b, *c, bump(theta)))
        }
        other => unreachable!("not a phase-family instruction: {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A single mutated instruction is flagged at its exact pc: the
    /// difference operator leaves the identity right there and the
    /// checker's first-divergence bookkeeping reports that pair.
    #[test]
    fn random_single_instruction_mutations_are_localised_exactly(
        idx in 0usize..10_000,
        family in 0u8..3,
    ) {
        // Draper is phase-rich; Gidney is X/CX-rich with MBU measurement
        // barriers and conditional fixups in the stream.
        let kind = if family == 0 { AdderKind::Draper } else { AdderKind::Gidney };
        let adder = adders::plain_adder(kind, 8).unwrap();
        let compiled = CompiledCircuit::lower(&adder.circuit).unwrap();
        let instrs = compiled.instrs().to_vec();
        let pool = match family {
            0 => phase_pcs(&instrs),
            1 => x_pcs(&instrs),
            _ => cx_pcs(&instrs),
        };
        prop_assume!(!pool.is_empty());
        let pc = pool[idx % pool.len()];
        let mut mutated = instrs.clone();
        mutated[pc] = match family {
            0 => bump_angle(&instrs[pc]),
            1 => {
                let Instr::Gate(Gate::X(q)) = instrs[pc] else { unreachable!() };
                Instr::Gate(Gate::Z(q))
            }
            _ => {
                let Instr::Gate(Gate::Cx(c, t)) = instrs[pc] else { unreachable!() };
                Instr::Gate(Gate::Cx(t, c))
            }
        };
        let nq = compiled.num_qubits();
        let nc = compiled.num_clbits();
        let fused = compiled.fused_unitaries();
        let pre = ProgramView::new(nq, nc, &instrs, fused);
        let post = ProgramView::new(nq, nc, &mutated, fused);
        let verdict = check_equivalence_with(&pre, &post, &Default::default());
        let Equivalence::Diverged { pre_pc, post_pc, .. } = verdict else {
            panic!("a mutated stream must diverge, got {verdict}");
        };
        prop_assert_eq!(pre_pc, pc, "pre-stream pc");
        prop_assert_eq!(post_pc, pc, "post-stream pc");
    }
}
