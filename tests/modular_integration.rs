//! Integration tests for the §3 modular adders: all architectures at
//! realistic widths, chained operation, and property-based checks.

use mbu_arith::{
    modular::{self, beauregard, ModAddSpec},
    AdderKind, Uncompute,
};
use mbu_circuit::{Circuit, QubitId};
use mbu_sim::{BasisTracker, StateVector};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run_tracker(
    circuit: &Circuit,
    inputs: &[(&[QubitId], u128)],
    out: &[QubitId],
    seed: u64,
) -> u128 {
    circuit.validate().expect("circuit must validate");
    let mut sim = BasisTracker::zeros(circuit.num_qubits());
    for (reg, v) in inputs {
        sim.set_value(reg, *v).unwrap();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    sim.run(circuit, &mut rng).expect("supported circuit");
    assert!(sim.global_phase().is_zero(), "phase must cancel");
    sim.value(out).expect("classical output")
}

fn all_specs(unc: Uncompute) -> Vec<(&'static str, ModAddSpec)> {
    vec![
        ("vbe5", ModAddSpec::vbe5(unc)),
        ("vbe4", ModAddSpec::vbe4(unc)),
        ("cdkpm", ModAddSpec::cdkpm(unc)),
        ("gidney", ModAddSpec::gidney(unc)),
        ("gidney+cdkpm", ModAddSpec::gidney_cdkpm(unc)),
    ]
}

#[test]
fn modadd_at_crypto_relevant_width() {
    // 61-bit Mersenne prime; values near the modulus stress the reduction.
    let n = 61usize;
    let p = (1u128 << 61) - 1;
    let cases = [
        (p - 1, p - 1),
        (p / 2, p / 2 + 1),
        (0, p - 1),
        (1, 1),
        (123_456_789_012_345, 987_654_321_098_765),
    ];
    for unc in [Uncompute::Unitary, Uncompute::Mbu] {
        for (name, spec) in all_specs(unc) {
            for &(x, y) in &cases {
                let layout = modular::modadd_circuit(&spec, n, p).unwrap();
                let got = run_tracker(
                    &layout.circuit,
                    &[(layout.x.qubits(), x), (layout.y.qubits(), y)],
                    layout.y.qubits(),
                    x as u64 ^ y as u64,
                );
                assert_eq!(got, (x + y) % p, "{name} {unc}: ({x}+{y}) mod {p}");
            }
        }
    }
}

#[test]
fn chained_modadds_accumulate() {
    // Apply the modular adder repeatedly — ancilla reuse and flag
    // uncomputation must hold across iterations.
    let n = 16usize;
    let p = 65_521u128; // largest 16-bit prime
    let spec = ModAddSpec::gidney_cdkpm(Uncompute::Mbu);
    let x = 40_000u128;
    let rounds = 5;

    let mut b = mbu_circuit::CircuitBuilder::new();
    let xr = b.qreg("x", n);
    let yr = b.qreg("y", n + 1);
    let p_bits = mbu_bitstring::BitString::from_u128(p, n);
    for _ in 0..rounds {
        modular::modadd(&mut b, &spec, xr.qubits(), yr.qubits(), &p_bits).unwrap();
    }
    let circuit = b.finish();
    for seed in 0..4 {
        let got = run_tracker(
            &circuit,
            &[(xr.qubits(), x), (yr.qubits(), 0)],
            yr.qubits(),
            seed,
        );
        assert_eq!(got, x * rounds as u128 % p);
    }
}

#[test]
fn modadd_const_all_architectures_wide() {
    let n = 32usize;
    let p = 4_294_967_291u128; // 2^32 − 5
    let a = 3_000_000_019u128;
    let x = 4_000_000_000u128;
    for unc in [Uncompute::Unitary, Uncompute::Mbu] {
        for (name, spec) in all_specs(unc) {
            let layout = modular::modadd_const_circuit(&spec, n, a, p).unwrap();
            let got = run_tracker(
                &layout.circuit,
                &[(layout.x.qubits(), x)],
                layout.x.qubits(),
                11,
            );
            assert_eq!(got, (x + a) % p, "{name} {unc}");
        }
        // Takahashi with each ripple family.
        for kind in [AdderKind::Vbe, AdderKind::Cdkpm, AdderKind::Gidney] {
            let layout = modular::modadd_const_takahashi_circuit(kind, unc, n, a, p).unwrap();
            let got = run_tracker(
                &layout.circuit,
                &[(layout.x.qubits(), x)],
                layout.x.qubits(),
                13,
            );
            assert_eq!(got, (x + a) % p, "takahashi {kind} {unc}");
        }
    }
}

#[test]
fn takahashi_beats_vbe_architecture_on_toffolis() {
    // Prop 3.15 merges the first two VBE-architecture subroutines; the
    // Toffoli count must strictly improve for the same adder family.
    let n = 24usize;
    let p = 16_777_213u128;
    let a = 9_999_991u128;
    for kind in [AdderKind::Cdkpm, AdderKind::Gidney] {
        let spec = ModAddSpec::uniform(kind, Uncompute::Unitary);
        let vbe_arch = modular::modadd_const_circuit(&spec, n, a, p)
            .unwrap()
            .circuit
            .counts()
            .toffoli;
        let takahashi = modular::modadd_const_takahashi_circuit(kind, Uncompute::Unitary, n, a, p)
            .unwrap()
            .circuit
            .counts()
            .toffoli;
        assert!(
            takahashi < vbe_arch,
            "{kind}: Takahashi {takahashi} !< VBE-arch {vbe_arch}"
        );
    }
}

#[test]
fn beauregard_modadd_preserves_superpositions() {
    // Run the QFT modular adder on a superposed addend register and check
    // every component of the output state exactly.
    let n = 2usize;
    let p = 3u64;
    for unc in [Uncompute::Unitary, Uncompute::Mbu] {
        let layout = beauregard::modadd_circuit(unc, n, u128::from(p)).unwrap();
        let mut full = Circuit::new(layout.circuit.num_qubits(), layout.circuit.num_clbits());
        // x ∈ {0,1,2} uniform is awkward; superpose x over {0,1} with one H.
        full.push(mbu_circuit::Op::Gate(mbu_circuit::Gate::H(layout.x[0])));
        for op in layout.circuit.ops() {
            full.push(op.clone());
        }
        let y0 = 2u64;
        for seed in 0..10 {
            let mut sv = StateVector::zeros(full.num_qubits()).unwrap();
            sv.prepare_basis(StateVector::index_with(&[(layout.y.qubits(), y0)]))
                .unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            sv.run(&full, &mut rng).unwrap();
            let r = std::f64::consts::FRAC_1_SQRT_2;
            for x0 in 0..2u64 {
                let idx = StateVector::index_with(&[
                    (layout.x.qubits(), x0),
                    (layout.y.qubits(), (x0 + y0) % p),
                ]);
                let a = sv.amplitude(idx);
                assert!(
                    (a.re - r).abs() < 1e-6 && a.im.abs() < 1e-6,
                    "{unc} seed {seed} x={x0}: {a}"
                );
            }
        }
    }
}

#[test]
fn table1_qubit_counts_scale_as_printed() {
    // Table 1 "Logical Qubits": CDKPM rows 3n+2, Gidney/VBE rows 4n+2.
    // Our circuits include the same registers; allow a ±2 implementation
    // delta but require the leading coefficient to match.
    for n in [16usize, 32, 64] {
        let q = |spec: &ModAddSpec| {
            modular::modadd_circuit(spec, n, (1u128 << n) - 5)
                .unwrap()
                .circuit
                .num_qubits() as i64
        };
        let cdkpm = q(&ModAddSpec::cdkpm(Uncompute::Unitary));
        let gidney = q(&ModAddSpec::gidney(Uncompute::Unitary));
        let vbe = q(&ModAddSpec::vbe4(Uncompute::Unitary));
        assert!(
            (cdkpm - (3 * n as i64 + 2)).abs() <= 2,
            "CDKPM qubits {cdkpm} vs 3n+2 at n={n}"
        );
        assert!(
            (gidney - (4 * n as i64 + 2)).abs() <= 2,
            "Gidney qubits {gidney} vs 4n+2 at n={n}"
        );
        assert!(
            (vbe - (4 * n as i64 + 2)).abs() <= 2,
            "VBE qubits {vbe} vs 4n+2 at n={n}"
        );
    }
}

#[test]
fn mbu_never_changes_results_only_costs() {
    // For identical inputs and seeds, Unitary and MBU variants must give
    // identical arithmetic results.
    let n = 12usize;
    let p = 4093u128;
    for (x, y) in [(4092u128, 4092u128), (17, 2000), (0, 0)] {
        for (name, spec_u) in all_specs(Uncompute::Unitary) {
            let spec_m = ModAddSpec {
                uncompute: Uncompute::Mbu,
                ..spec_u
            };
            let lu = modular::modadd_circuit(&spec_u, n, p).unwrap();
            let lm = modular::modadd_circuit(&spec_m, n, p).unwrap();
            for seed in 0..4 {
                let a = run_tracker(
                    &lu.circuit,
                    &[(lu.x.qubits(), x), (lu.y.qubits(), y)],
                    lu.y.qubits(),
                    seed,
                );
                let b = run_tracker(
                    &lm.circuit,
                    &[(lm.x.qubits(), x), (lm.y.qubits(), y)],
                    lm.y.qubits(),
                    seed,
                );
                assert_eq!(a, b, "{name} seed {seed}");
                assert_eq!(a, (x + y) % p);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn prop_modadd_matches_reference(
        n in 2usize..=20,
        p_raw in 2u64..u64::MAX,
        x_raw in 0u64..u64::MAX,
        y_raw in 0u64..u64::MAX,
        spec_idx in 0usize..5,
        mbu in proptest::bool::ANY,
        seed in 0u64..1000,
    ) {
        let unc = if mbu { Uncompute::Mbu } else { Uncompute::Unitary };
        let spec = all_specs(unc)[spec_idx].1;
        let p = u128::from(p_raw) % ((1 << n) - 2) + 2;
        let x = u128::from(x_raw) % p;
        let y = u128::from(y_raw) % p;
        let layout = modular::modadd_circuit(&spec, n, p).unwrap();
        let got = run_tracker(
            &layout.circuit,
            &[(layout.x.qubits(), x), (layout.y.qubits(), y)],
            layout.y.qubits(),
            seed,
        );
        prop_assert_eq!(got, (x + y) % p);
    }

    #[test]
    fn prop_modadd_const_matches_reference(
        n in 2usize..=16,
        p_raw in 2u64..u64::MAX,
        a_raw in 0u64..u64::MAX,
        x_raw in 0u64..u64::MAX,
        takahashi in proptest::bool::ANY,
        mbu in proptest::bool::ANY,
        seed in 0u64..1000,
    ) {
        let unc = if mbu { Uncompute::Mbu } else { Uncompute::Unitary };
        let p = u128::from(p_raw) % ((1 << n) - 2) + 2;
        let a = u128::from(a_raw) % p;
        let x = u128::from(x_raw) % p;
        let layout = if takahashi {
            modular::modadd_const_takahashi_circuit(AdderKind::Cdkpm, unc, n, a, p).unwrap()
        } else {
            modular::modadd_const_circuit(&ModAddSpec::cdkpm(unc), n, a, p).unwrap()
        };
        let got = run_tracker(
            &layout.circuit,
            &[(layout.x.qubits(), x)],
            layout.x.qubits(),
            seed,
        );
        prop_assert_eq!(got, (x + a) % p);
    }

    #[test]
    fn prop_controlled_modadd(
        n in 2usize..=14,
        p_raw in 2u64..u64::MAX,
        x_raw in 0u64..u64::MAX,
        y_raw in 0u64..u64::MAX,
        ctrl in proptest::bool::ANY,
        spec_idx in 0usize..5,
        seed in 0u64..1000,
    ) {
        let spec = all_specs(Uncompute::Mbu)[spec_idx].1;
        let p = u128::from(p_raw) % ((1 << n) - 2) + 2;
        let x = u128::from(x_raw) % p;
        let y = u128::from(y_raw) % p;
        let layout = modular::controlled_modadd_circuit(&spec, n, p).unwrap();
        let control = layout.control.unwrap();
        let got = run_tracker(
            &layout.circuit,
            &[
                (&[control], u128::from(ctrl)),
                (layout.x.qubits(), x),
                (layout.y.qubits(), y),
            ],
            layout.y.qubits(),
            seed,
        );
        let expected = if ctrl { (x + y) % p } else { y };
        prop_assert_eq!(got, expected);
    }
}
