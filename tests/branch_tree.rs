//! Branch-tree execution vs per-shot Monte Carlo.
//!
//! Two contracts hold the branch engine to the shot engine:
//!
//! * **statistical** — the exact distribution's frequencies are what the
//!   Monte-Carlo frequencies converge to: on random MBU modular adders,
//!   every outcome/record frequency of [`BranchEnsemble::distribution`]
//!   agrees with a seeded [`ShotRunner`] ensemble within a Chernoff-style
//!   tolerance;
//! * **bit-level** — the sampled mode is not merely statistically right:
//!   with the same master seed it reproduces the [`ShotRunner`]'s
//!   classical aggregates **bit for bit** (records, outcome counts,
//!   executed-count means and variances), across both kernel modes,
//!   reclamation on/off and fusion on/off — the replayed per-shot RNG
//!   streams draw against the very probabilities the sampling path
//!   computes.

use mbu_arith::{
    modular::{self, ModAddSpec},
    Uncompute,
};
use mbu_circuit::PassConfig;
use mbu_sim::{
    BasisTracker, BranchEnsemble, Ensemble, KernelMode, ShotRunner, Simulator, StateVector,
};
use proptest::prelude::*;

fn arch_spec(arch: u8, unc: Uncompute) -> ModAddSpec {
    match arch % 3 {
        0 => ModAddSpec::cdkpm(unc),
        1 => ModAddSpec::gidney(unc),
        _ => ModAddSpec::gidney_cdkpm(unc),
    }
}

/// Architectures whose MBU variants fork only a handful of times (the
/// flag measurement plus the comparator flags): the regime where branch
/// trees stay tiny. Gidney-style adders measure one ancilla per AND, so
/// their trees legitimately blow the node budget — that path is covered
/// by the Monte-Carlo-fallback assertions instead.
fn few_fork_spec(arch: u8, unc: Uncompute) -> ModAddSpec {
    match arch % 3 {
        0 => ModAddSpec::cdkpm(unc),
        1 => ModAddSpec::vbe5(unc),
        _ => ModAddSpec::vbe4(unc),
    }
}

fn unfused_passes() -> PassConfig {
    PassConfig {
        fuse_max_qubits: 0,
        ..PassConfig::default()
    }
}

fn fused_passes() -> PassConfig {
    PassConfig {
        fuse_max_qubits: 3,
        ..PassConfig::default()
    }
}

/// The classical face of an ensemble, peak-memory stats excluded: the
/// branch engine shares trajectories across shots, so "per-shot peak
/// amplitudes" is the one statistic it deliberately does not reproduce.
fn classical_view(e: &Ensemble) -> impl PartialEq + std::fmt::Debug {
    let records: Vec<(Vec<Option<bool>>, u64)> = e
        .record_frequencies()
        .map(|(r, n)| (r.to_vec(), n))
        .collect();
    (e.shots(), e.mean(), e.variance(), records)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Chernoff-style agreement: the exact branch-tree distribution is the
    /// limit the Monte-Carlo frequencies fluctuate around. With N shots a
    /// frequency deviates from its true value by more than
    /// 5·√(1/4N) with probability < 2·e^{-12.5} per bit — negligible over
    /// these case counts, so the bound is a hard assertion.
    #[test]
    fn exact_distribution_matches_monte_carlo_frequencies(
        n in 2usize..=3,
        pk in 0u128..1_000_000,
        xk in 0u128..1_000_000,
        yk in 0u128..1_000_000,
        arch in 0u8..3,
        seed in 0u64..u64::MAX,
    ) {
        let pmax = (1u128 << n) - 1;
        let p = 2 + pk % (pmax - 1);
        let x = xk % p;
        let y = yk % p;
        let spec = few_fork_spec(arch, Uncompute::Mbu);
        let layout = modular::modadd_circuit(&spec, n, p).unwrap();
        let nq = layout.circuit.num_qubits();
        let input = StateVector::index_with(&[
            (layout.x.qubits(), u64::try_from(x).unwrap()),
            (layout.y.qubits(), u64::try_from(y).unwrap()),
        ]);

        let factory_send = || {
            Box::new(StateVector::basis(nq, input).unwrap()) as Box<dyn Simulator + Send>
        };
        let dist = BranchEnsemble::new(0)
            .with_passes(fused_passes())
            .distribution(&layout.circuit, factory_send)
            .unwrap();
        prop_assert!(dist.pruned_mass() < 1e-9, "only rounding residues prune");
        prop_assert!((dist.total_weight() - 1.0).abs() < 1e-9);

        const SHOTS: u64 = 400;
        let mc = ShotRunner::new(SHOTS)
            .with_master_seed(seed)
            .with_passes(fused_passes())
            .run(&layout.circuit, || Box::new(StateVector::basis(nq, input).unwrap()))
            .unwrap();
        let tol = 5.0 * (0.25 / SHOTS as f64).sqrt();
        for clbit in 0..mc.num_clbits() {
            match (dist.outcome_frequency(clbit), mc.outcome_frequency(clbit)) {
                (None, None) => {}
                (Some(exact), Some(sampled)) => prop_assert!(
                    (exact - sampled).abs() <= tol,
                    "clbit {clbit}: exact {exact} vs sampled {sampled} (tol {tol})"
                ),
                (e, s) => prop_assert!(false, "clbit {clbit} written in one engine only: {e:?} vs {s:?}"),
            }
        }
        // Expected executed Toffolis agree too (the paper's headline stat).
        let exact_tof = dist.mean_counts().toffoli;
        let mc_tof = mc.mean().toffoli;
        let worst_case = layout.circuit.counts().toffoli as f64;
        prop_assert!(
            (exact_tof - mc_tof).abs() <= tol * worst_case.max(1.0),
            "E[Toffoli]: exact {exact_tof} vs sampled {mc_tof}"
        );
    }

    /// Bit-compatibility: branch-tree sampling replays the ShotRunner's
    /// aggregates exactly, for every engine configuration — kernel mode ×
    /// reclamation × fusion — and several master seeds.
    #[test]
    fn sampled_branch_trees_are_bit_identical_to_per_shot_runs(
        n in 2usize..=3,
        pk in 0u128..1_000_000,
        xk in 0u128..1_000_000,
        yk in 0u128..1_000_000,
        arch in 0u8..3,
        seed in 0u64..u64::MAX,
    ) {
        let pmax = (1u128 << n) - 1;
        let p = 2 + pk % (pmax - 1);
        let x = xk % p;
        let y = yk % p;
        let spec = arch_spec(arch, Uncompute::Mbu);
        let layout = modular::modadd_circuit(&spec, n, p).unwrap();
        let nq = layout.circuit.num_qubits();
        let input = StateVector::index_with(&[
            (layout.x.qubits(), u64::try_from(x).unwrap()),
            (layout.y.qubits(), u64::try_from(y).unwrap()),
        ]);

        for mode in [KernelMode::Stride, KernelMode::Scan] {
            for reclaim in [true, false] {
                for passes in [unfused_passes(), fused_passes()] {
                    // A tight node budget keeps the Gidney-style cases
                    // (one fork per AND) from building thousands of nodes
                    // before falling back: the fallback *is* the
                    // ShotRunner, so bit-identity must hold either way.
                    let branch = BranchEnsemble::new(64)
                        .with_master_seed(seed)
                        .with_node_budget(256)
                        .with_passes(passes)
                        .run(&layout.circuit, || {
                            Box::new(
                                StateVector::basis(nq, input)
                                    .unwrap()
                                    .with_kernel_mode(mode)
                                    .with_reclamation(reclaim),
                            ) as Box<dyn Simulator + Send>
                        })
                        .unwrap();
                    let per_shot = ShotRunner::new(64)
                        .with_master_seed(seed)
                        .with_passes(passes)
                        .run(&layout.circuit, || {
                            Box::new(
                                StateVector::basis(nq, input)
                                    .unwrap()
                                    .with_kernel_mode(mode)
                                    .with_reclamation(reclaim),
                            )
                        })
                        .unwrap();
                    prop_assert_eq!(
                        classical_view(&branch),
                        classical_view(&per_shot),
                        "{:?} reclaim={} fuse={}",
                        mode,
                        reclaim,
                        passes.fuse_max_qubits
                    );
                }
            }
        }
    }
}

#[test]
fn full_expansion_matches_the_default_floor_on_mbu_adders() {
    // `MBU_BRANCH_EPS=0` (exercised as an explicit with_eps(0.0) and by
    // the CI env leg) only keeps additional measure-zero branches: on MBU
    // modadds the surviving frequencies are identical to the default
    // floor's, and the fully expanded tree carries no pruned mass.
    let spec = ModAddSpec::cdkpm(Uncompute::Mbu);
    let layout = modular::modadd_circuit(&spec, 2, 3).unwrap();
    let nq = layout.circuit.num_qubits();
    let factory = || Box::new(StateVector::basis(nq, 0).unwrap()) as Box<dyn Simulator + Send>;
    let default_floor = BranchEnsemble::new(0)
        .distribution(&layout.circuit, factory)
        .unwrap();
    let full = BranchEnsemble::new(0)
        .with_eps(0.0)
        .distribution(&layout.circuit, factory)
        .unwrap();
    assert_eq!(full.pruned_mass(), 0.0, "nothing possible is pruned");
    assert!(full.num_leaves() >= default_floor.num_leaves());
    for clbit in 0..default_floor.num_clbits() {
        let d = default_floor.outcome_frequency(clbit);
        let f = full.outcome_frequency(clbit);
        match (d, f) {
            (None, None) => {}
            (Some(d), Some(f)) => assert!((d - f).abs() < 1e-9, "clbit {clbit}: {d} vs {f}"),
            other => panic!("clbit {clbit} diverged: {other:?}"),
        }
    }
}

#[test]
fn tracker_chains_run_exact_tables_at_full_width() {
    // The basis tracker forks in O(1) per qubit, so exact Table-1
    // distributions work at n = 16 (52+ qubits) where a state vector
    // cannot even allocate — and the exact expected Toffoli count equals
    // the analytic `expected_counts` the golden tests pin.
    let spec = ModAddSpec::cdkpm(Uncompute::Mbu);
    let layout = modular::modadd_circuit(&spec, 16, 65521).unwrap();
    let nq = layout.circuit.num_qubits();
    let x = layout.x.qubits().to_vec();
    let y = layout.y.qubits().to_vec();
    let dist = BranchEnsemble::new(0)
        .distribution(&layout.circuit, move || {
            let mut sim = BasisTracker::zeros(nq);
            sim.set_value(&x, 7).unwrap();
            sim.set_value(&y, 9).unwrap();
            Box::new(sim) as Box<dyn Simulator + Send>
        })
        .unwrap();
    assert!(dist.num_leaves() >= 2, "the MBU flag forks");
    assert_eq!(dist.pruned_mass(), 0.0);
    let expected = layout.circuit.expected_counts();
    let exact = dist.mean_counts();
    assert!(
        (exact.toffoli - expected.toffoli).abs() < 1e-9,
        "exact E[Toffoli] {} vs analytic {}",
        exact.toffoli,
        expected.toffoli
    );
    assert!(
        (exact.cx - expected.cx).abs() < 1e-9,
        "exact E[CNOT] {} vs analytic {}",
        exact.cx,
        expected.cx
    );
}

#[test]
fn sampled_tracker_chains_match_shot_runner_bitwise() {
    // Two-stage chain on the tracker: sampled branch trees and per-shot
    // execution must agree classically, bit for bit.
    let spec = ModAddSpec::cdkpm(Uncompute::Mbu);
    let chain = modular::modadd_chain_circuit(&spec, 4, 13, 2).unwrap();
    let nq = chain.circuit.num_qubits();
    let x = chain.x.qubits().to_vec();
    let y = chain.y.qubits().to_vec();
    let factory = {
        let (x, y) = (x.clone(), y.clone());
        move || {
            let mut sim = BasisTracker::zeros(nq);
            sim.set_value(&x, 7).unwrap();
            sim.set_value(&y, 11).unwrap();
            Box::new(sim) as Box<dyn Simulator + Send>
        }
    };
    for seed in [1u64, 42, 0xDEAD] {
        let branch = BranchEnsemble::new(300)
            .with_master_seed(seed)
            .run(&chain.circuit, &factory)
            .unwrap();
        let per_shot = ShotRunner::new(300)
            .with_master_seed(seed)
            .run(&chain.circuit, || {
                let mut sim = BasisTracker::zeros(nq);
                sim.set_value(&x, 7).unwrap();
                sim.set_value(&y, 11).unwrap();
                Box::new(sim)
            })
            .unwrap();
        assert_eq!(
            classical_view(&branch),
            classical_view(&per_shot),
            "seed {seed}"
        );
        // Peak occupancy survives trajectory sharing: each leaf carries
        // its own occupancy high-water (an MBU garbage qubit is in |±⟩
        // at the mark), so the tree reports the same census the per-shot
        // engine takes.
        assert_eq!(branch.peak_amplitudes(), Some(2), "seed {seed}");
        assert_eq!(per_shot.peak_amplitudes(), Some(2), "seed {seed}");
    }
}
