//! Cross-validation of the sparse basis-map backend against the dense
//! statevector, bit for bit.
//!
//! `SparseVector` stores only the occupied basis states, so its costs
//! scale with the entanglement a circuit actually creates rather than
//! with `2^n` — but it is allowed no observable deviation from the dense
//! engine on circuits both can run. These tests pin that contract on
//! random MBU modular adders across every architecture, against every
//! dense engine variant (kernel mode × fusion × reclamation): identical
//! classical records and executed counts, identical RNG consumption,
//! bitwise-identical amplitudes on the shared support, and identical
//! branch-tree distributions. The one *intended* divergence — a definite
//! measurement consumes no randomness on the sparse backend, mirroring
//! `Fork::Definite` — is pinned by a word-counting RNG regression test.

use std::collections::BTreeMap;

use mbu_arith::{
    adders::draper,
    modular::{self, ModAddSpec},
    Uncompute,
};
use mbu_circuit::{Basis, CircuitBuilder, CompiledCircuit, PassConfig};
use mbu_sim::{
    phase_to_dense, BackendKind, BasisTracker, BranchDistribution, BranchEnsemble, Ensemble,
    KernelMode, PhaseAccumulator, ShotRunner, Simulator, SparseVector, StateVector,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

fn arch_spec(arch: u8) -> ModAddSpec {
    match arch % 5 {
        0 => ModAddSpec::vbe5(Uncompute::Mbu),
        1 => ModAddSpec::vbe4(Uncompute::Mbu),
        2 => ModAddSpec::cdkpm(Uncompute::Mbu),
        3 => ModAddSpec::gidney(Uncompute::Mbu),
        _ => ModAddSpec::gidney_cdkpm(Uncompute::Mbu),
    }
}

fn unfused_passes() -> PassConfig {
    PassConfig {
        fuse_max_qubits: 0,
        ..PassConfig::default()
    }
}

fn fused_passes() -> PassConfig {
    PassConfig {
        fuse_max_qubits: 3,
        ..PassConfig::default()
    }
}

proptest! {
    // Each case runs one sparse simulation and eight dense variants
    // (2 kernel modes × reclamation on/off × fused/unfused) of the same
    // seeded modadd. Restricted to the reset-free architectures
    // (VBE5/VBE4/CDKPM): every measurement there lands on an H-fanned
    // qubit at p = 1/2, so the sparse definite-measurement shortcut
    // never fires and the RNG streams stay in lockstep with the dense
    // engine. The Gidney architectures reset just-measured (definite)
    // qubits — the dense engine draws for those resets and the sparse
    // backend intentionally does not — and are covered by the
    // functional and distribution tests below instead.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn sparse_matches_every_dense_engine_variant_bit_for_bit(
        n in 2usize..=3,
        pk in 0u128..1_000_000,
        xk in 0u128..1_000_000,
        yk in 0u128..1_000_000,
        arch in 0u8..3,
        seed in 0u64..u64::MAX,
    ) {
        let pmax = (1u128 << n) - 1;
        let p = 2 + pk % (pmax - 1);
        let x = xk % p;
        let y = yk % p;
        let spec = arch_spec(arch);
        let layout = modular::modadd_circuit(&spec, n, p).unwrap();
        let nq = layout.circuit.num_qubits();
        let unfused = CompiledCircuit::with_config(&layout.circuit, &unfused_passes()).unwrap();
        let fused = CompiledCircuit::with_config(&layout.circuit, &fused_passes()).unwrap();

        // One sparse run; every dense variant must agree with it.
        let mut sp = SparseVector::zeros(nq).unwrap();
        sp.set_value(layout.x.qubits(), x).unwrap();
        sp.set_value(layout.y.qubits(), y).unwrap();
        let mut rng_sp = StdRng::seed_from_u64(seed);
        let ex_sp = sp.run_compiled(&unfused, &mut rng_sp).unwrap();
        let tail_sp = rng_sp.next_u64();
        prop_assert_eq!(sp.value(layout.x.qubits()).unwrap(), x);
        prop_assert_eq!(sp.value(layout.y.qubits()).unwrap(), (x + y) % p);
        // MBU collapses every garbage qubit: the final state is one
        // basis state, whatever `2^nq` is.
        prop_assert_eq!(sp.occupied(), 1, "arch {}", arch);

        let input = StateVector::index_with(&[
            (layout.x.qubits(), u64::try_from(x).unwrap()),
            (layout.y.qubits(), u64::try_from(y).unwrap()),
        ]);
        for mode in [KernelMode::Stride, KernelMode::Scan] {
            for reclaim in [true, false] {
                for compiled in [&unfused, &fused] {
                    let mut sv = StateVector::basis(nq, input)
                        .unwrap()
                        .with_kernel_mode(mode)
                        .with_reclamation(reclaim)
                        .with_amp_threads(1);
                    let mut rng_sv = StdRng::seed_from_u64(seed);
                    let ex_sv = sv.run_compiled(compiled, &mut rng_sv).unwrap();

                    // Identical records, counts and RNG consumption: a
                    // modadd only ever measures H-fanned qubits, so the
                    // sparse definite-measurement shortcut never fires
                    // and the streams stay in lockstep.
                    prop_assert_eq!(&ex_sp, &ex_sv, "{:?} reclaim={}", mode, reclaim);
                    prop_assert_eq!(
                        tail_sp,
                        rng_sv.next_u64(),
                        "{:?} reclaim={}: RNG streams diverged",
                        mode,
                        reclaim
                    );
                    prop_assert_eq!(sv.value(layout.x.qubits()).unwrap(), x);
                    prop_assert_eq!(sv.value(layout.y.qubits()).unwrap(), (x + y) % p);

                    // Bitwise-identical amplitudes on the full index
                    // range (reclamation compacts the dense array, so
                    // only the uncompacted variants expose all of it).
                    if !reclaim {
                        let amps = sv.amplitudes();
                        let mut dense_occupied = 0usize;
                        for (i, a) in amps.iter().enumerate() {
                            let s = sp.amplitude(i as u128);
                            if a.re == 0.0 && a.im == 0.0 {
                                // Dense zeros may be negatively signed;
                                // the sparse map culls them entirely.
                                prop_assert!(
                                    s.re == 0.0 && s.im == 0.0,
                                    "{:?}: spurious sparse amp {}",
                                    mode,
                                    i
                                );
                            } else {
                                dense_occupied += 1;
                                prop_assert_eq!(
                                    a.re.to_bits(),
                                    s.re.to_bits(),
                                    "{:?}: re of amp {}",
                                    mode,
                                    i
                                );
                                prop_assert_eq!(
                                    a.im.to_bits(),
                                    s.im.to_bits(),
                                    "{:?}: im of amp {}",
                                    mode,
                                    i
                                );
                            }
                        }
                        prop_assert_eq!(sp.occupied(), dense_occupied);
                    }
                }
            }
        }
    }
}

proptest! {
    // The Gidney architectures reset definite qubits, which consumes
    // dense RNG words but (by design) no sparse ones — so the streams
    // part ways and per-outcome comparison is meaningless. What must
    // still hold on every trajectory: both backends compute the paper's
    // modular sum, and MBU leaves the sparse state fully collapsed.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn gidney_architectures_agree_functionally(
        n in 2usize..=3,
        pk in 0u128..1_000_000,
        xk in 0u128..1_000_000,
        yk in 0u128..1_000_000,
        arch in 3u8..5,
        seed in 0u64..u64::MAX,
    ) {
        let pmax = (1u128 << n) - 1;
        let p = 2 + pk % (pmax - 1);
        let x = xk % p;
        let y = yk % p;
        let spec = arch_spec(arch);
        let layout = modular::modadd_circuit(&spec, n, p).unwrap();
        let nq = layout.circuit.num_qubits();
        let compiled = CompiledCircuit::compile(&layout.circuit).unwrap();

        let mut sp = SparseVector::zeros(nq).unwrap();
        sp.set_value(layout.x.qubits(), x).unwrap();
        sp.set_value(layout.y.qubits(), y).unwrap();
        let mut rng_sp = StdRng::seed_from_u64(seed);
        sp.run_compiled(&compiled, &mut rng_sp).unwrap();
        prop_assert_eq!(sp.value(layout.x.qubits()).unwrap(), x);
        prop_assert_eq!(sp.value(layout.y.qubits()).unwrap(), (x + y) % p);
        prop_assert_eq!(sp.occupied(), 1, "arch {}", arch);

        let mut sv = StateVector::zeros(nq).unwrap();
        sv.set_value(layout.x.qubits(), x).unwrap();
        sv.set_value(layout.y.qubits(), y).unwrap();
        let mut rng_sv = StdRng::seed_from_u64(seed);
        sv.run_compiled(&compiled, &mut rng_sv).unwrap();
        prop_assert_eq!(sv.value(layout.x.qubits()).unwrap(), x);
        prop_assert_eq!(sv.value(layout.y.qubits()).unwrap(), (x + y) % p);
    }
}

proptest! {
    // The phase backend's native workload: random Draper wrapping
    // adders, where the QFT interior is pure dyadic bookkeeping. On
    // basis inputs every backend must land on the exact wrapped sum with
    // a single occupied branch; on a superposed control, the phase
    // backend's enumerated amplitudes must agree with the dense engine's
    // to floating-point accuracy (the dyadic accumulators evaluate each
    // total phase in one `cis`, where the sweeping engines multiply
    // rotation by rotation — same state, different rounding paths).
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn draper_adders_agree_across_phase_sparse_and_dense(
        n in 2usize..=4,
        xk in 0u128..16,
        yk in 0u128..16,
        superpose in proptest::bool::ANY,
    ) {
        let (x, y) = (xk % (1 << n), yk % (1 << n));
        let mut b = CircuitBuilder::new();
        let xr = b.qreg("x", n);
        let yr = b.qreg("y", n);
        if superpose {
            b.h(xr[0]);
        }
        draper::wrapping_add(&mut b, xr.qubits(), yr.qubits()).unwrap();
        let circuit = b.finish();
        let nq = circuit.num_qubits();
        let compiled = CompiledCircuit::compile(&circuit).unwrap();

        let mut ph = PhaseAccumulator::zeros(nq).unwrap();
        let mut sp = SparseVector::zeros(nq).unwrap();
        let mut sv = StateVector::zeros(nq).unwrap();
        for sim in [&mut ph as &mut dyn Simulator, &mut sp, &mut sv] {
            sim.set_value(xr.qubits(), x).unwrap();
            sim.set_value(yr.qubits(), y).unwrap();
        }
        for (name, sim) in [
            ("phase", &mut ph as &mut dyn Simulator),
            ("sparse", &mut sp),
            ("dense", &mut sv),
        ] {
            let mut rng = StdRng::seed_from_u64(1);
            sim.run_compiled(&compiled, &mut rng).unwrap();
            if !superpose {
                prop_assert_eq!(
                    sim.value(yr.qubits()).unwrap(),
                    (x + y) % (1 << n),
                    "{}", name
                );
                prop_assert_eq!(sim.value(xr.qubits()).unwrap(), x, "{}", name);
            }
        }
        if !superpose {
            prop_assert_eq!(ph.occupied(), 1);
        }
        // Amplitude-level agreement, superposed or not.
        let ph_amps = phase_to_dense(&ph).unwrap().amplitudes();
        let sv_amps = sv.amplitudes();
        for (i, (a, d)) in ph_amps.iter().zip(&sv_amps).enumerate() {
            prop_assert!(
                (a.re - d.re).abs() < 1e-12 && (a.im - d.im).abs() < 1e-12,
                "amp {}: phase {:?} vs dense {:?}", i, a, d
            );
        }
    }
}

proptest! {
    // The Beauregard MBU modular adder measures mid-circuit (the MBU
    // flag), so trajectories may differ draw by draw — but the paper's
    // functional claim is trajectory-independent: |x⟩|y⟩ → |x⟩|(x+y) mod
    // p⟩ with everything else collapsed, on the phase backend exactly as
    // on the sparse map.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn beauregard_mbu_agrees_functionally_on_phase(
        n in 2usize..=3,
        pk in 0u128..1_000_000,
        xk in 0u128..1_000_000,
        yk in 0u128..1_000_000,
        seed in 0u64..u64::MAX,
    ) {
        let pmax = (1u128 << n) - 1;
        let p = 2 + pk % (pmax - 1);
        let x = xk % p;
        let y = yk % p;
        let layout = modular::beauregard::modadd_circuit(Uncompute::Mbu, n, p).unwrap();
        let nq = layout.circuit.num_qubits();
        let compiled = CompiledCircuit::compile(&layout.circuit).unwrap();

        let mut ph = PhaseAccumulator::zeros(nq).unwrap();
        ph.set_value(layout.x.qubits(), x).unwrap();
        ph.set_value(layout.y.qubits(), y).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        ph.run_compiled(&compiled, &mut rng).unwrap();
        prop_assert_eq!(ph.value(layout.x.qubits()).unwrap(), x);
        prop_assert_eq!(ph.value(layout.y.qubits()).unwrap(), (x + y) % p);
        prop_assert_eq!(ph.occupied(), 1, "MBU leaves a basis state");
    }
}

/// The classical face of an ensemble — peak-memory statistics excluded,
/// because the backends legitimately report different occupancy numbers
/// (dense peak amplitudes vs sparse occupied states).
fn classical_view(e: &Ensemble) -> impl PartialEq + std::fmt::Debug {
    let records: Vec<(Vec<Option<bool>>, u64)> = e
        .record_frequencies()
        .map(|(r, n)| (r.to_vec(), n))
        .collect();
    (e.shots(), e.mean(), e.variance(), records)
}

#[test]
fn shot_ensembles_agree_across_backends_with_shared_seeds() {
    // A 2-stage MBU modadd chain: the sparse and dense shot engines see
    // the same per-shot RNG streams, so their classical aggregates must
    // be bit-identical — outcome frequencies included.
    let spec = ModAddSpec::cdkpm(Uncompute::Mbu);
    let chain = modular::modadd_chain_circuit(&spec, 2, 3, 2).unwrap();
    let nq = chain.circuit.num_qubits();
    let dense_factory = || {
        let mut sv = StateVector::zeros(nq).unwrap();
        sv.set_value(chain.x.qubits(), 2).unwrap();
        sv.set_value(chain.y.qubits(), 1).unwrap();
        Box::new(sv) as Box<dyn Simulator>
    };
    let sparse_factory = || {
        let mut sp = SparseVector::zeros(nq).unwrap();
        sp.set_value(chain.x.qubits(), 2).unwrap();
        sp.set_value(chain.y.qubits(), 1).unwrap();
        Box::new(sp) as Box<dyn Simulator>
    };

    let dense = ShotRunner::new(64)
        .with_master_seed(11)
        .run(&chain.circuit, dense_factory)
        .unwrap();
    let sparse = ShotRunner::new(64)
        .with_master_seed(11)
        .run(&chain.circuit, sparse_factory)
        .unwrap();
    assert_eq!(classical_view(&dense), classical_view(&sparse));
    for clbit in 0..dense.num_clbits() {
        assert_eq!(
            dense.outcome_frequency(clbit),
            sparse.outcome_frequency(clbit),
            "clbit {clbit}"
        );
    }
    // Both report a peak, and the sparse peak is the entangled-support
    // high-water mark — far below the dense array's 2^nq amplitudes.
    assert_eq!(dense.peak_amplitudes(), Some(1u64 << nq));
    let sparse_peak = sparse.peak_amplitudes().expect("sparse reports a peak");
    assert!(
        sparse_peak < 1u64 << nq,
        "sparse peak {sparse_peak} should undercut 2^{nq}"
    );
}

/// The branch tree's exact distribution is RNG-free, so it must coincide
/// across backends down to the last weight bit.
fn freq_map(d: &BranchDistribution) -> BTreeMap<Vec<Option<bool>>, u64> {
    d.record_frequencies()
        .map(|(r, w)| (r.to_vec(), w.to_bits()))
        .collect()
}

#[test]
fn branch_distributions_coincide_across_backends() {
    for arch in 0..5u8 {
        let spec = arch_spec(arch);
        let layout = modular::modadd_circuit(&spec, 2, 3).unwrap();
        let nq = layout.circuit.num_qubits();
        let dense_factory = || {
            let mut sv = StateVector::zeros(nq).unwrap();
            sv.set_value(layout.x.qubits(), 2).unwrap();
            sv.set_value(layout.y.qubits(), 1).unwrap();
            Box::new(sv) as Box<dyn Simulator + Send>
        };
        let sparse_factory = || {
            let mut sp = SparseVector::zeros(nq).unwrap();
            sp.set_value(layout.x.qubits(), 2).unwrap();
            sp.set_value(layout.y.qubits(), 1).unwrap();
            Box::new(sp) as Box<dyn Simulator + Send>
        };

        let runner = BranchEnsemble::new(1);
        let dense = runner.distribution(&layout.circuit, dense_factory).unwrap();
        let sparse = runner
            .distribution(&layout.circuit, sparse_factory)
            .unwrap();
        assert_eq!(freq_map(&dense), freq_map(&sparse), "arch {arch}");
        assert_eq!(dense.num_leaves(), sparse.num_leaves(), "arch {arch}");
        assert_eq!(
            dense.total_weight().to_bits(),
            sparse.total_weight().to_bits(),
            "arch {arch}"
        );
        assert_eq!(dense.mean_counts(), sparse.mean_counts(), "arch {arch}");
        for clbit in 0..dense.num_clbits() {
            assert_eq!(
                dense.outcome_frequency(clbit).map(f64::to_bits),
                sparse.outcome_frequency(clbit).map(f64::to_bits),
                "arch {arch} clbit {clbit}"
            );
        }
    }
}

#[test]
fn definite_measurements_prune_fork_nodes_but_not_outcomes() {
    // X(q0); measure q0 — a definite outcome. Dense forks with a
    // certain split whose dead side is pruned; sparse answers
    // `Fork::Definite` and never forks. Same leaves, fewer nodes.
    let mut b = CircuitBuilder::new();
    let q = b.qreg("q", 2);
    b.x(q[0]);
    b.measure(q[0], Basis::Z);
    b.h(q[1]);
    b.measure(q[1], Basis::Z);
    let circuit = b.finish();

    let runner = BranchEnsemble::new(1);
    let dense = runner
        .distribution(&circuit, || {
            Box::new(StateVector::zeros(2).unwrap()) as Box<dyn Simulator + Send>
        })
        .unwrap();
    let sparse = runner
        .distribution(&circuit, || {
            Box::new(SparseVector::zeros(2).unwrap()) as Box<dyn Simulator + Send>
        })
        .unwrap();
    assert_eq!(freq_map(&dense), freq_map(&sparse));
    assert_eq!(dense.num_leaves(), 2);
    assert_eq!(sparse.num_leaves(), 2);
    assert!(
        sparse.fork_nodes() < dense.fork_nodes(),
        "sparse should skip the certain fork: {} vs {}",
        sparse.fork_nodes(),
        dense.fork_nodes()
    );
}

#[test]
fn branch_sampled_mode_matches_the_shot_runner_on_sparse() {
    // BranchEnsemble's sampled mode promises bit-identical classical
    // aggregates to an equally seeded ShotRunner; that contract must
    // hold on the sparse backend too, forks and all.
    let spec = ModAddSpec::gidney(Uncompute::Mbu);
    let layout = modular::modadd_circuit(&spec, 2, 3).unwrap();
    let nq = layout.circuit.num_qubits();
    let factory = || {
        let mut sp = SparseVector::zeros(nq).unwrap();
        sp.set_value(layout.x.qubits(), 1).unwrap();
        sp.set_value(layout.y.qubits(), 2).unwrap();
        Box::new(sp) as Box<dyn Simulator + Send>
    };

    let branch = BranchEnsemble::new(96)
        .with_master_seed(5)
        .run(&layout.circuit, factory)
        .unwrap();
    let per_shot = ShotRunner::new(96)
        .with_master_seed(5)
        .run(&layout.circuit, || factory() as Box<dyn Simulator>)
        .unwrap();
    assert_eq!(classical_view(&branch), classical_view(&per_shot));
    for clbit in 0..branch.num_clbits() {
        assert_eq!(
            branch.outcome_frequency(clbit),
            per_shot.outcome_frequency(clbit),
            "clbit {clbit}"
        );
    }
    // Shared-trajectory execution reports peaks too, via each leaf's
    // occupancy high-water mark — the same census the per-shot engine
    // takes on the sparse map.
    assert!(branch.peak_amplitudes().is_some());
    assert!(per_shot.peak_amplitudes().is_some());
}

/// An `StdRng` wrapper that counts how many words the simulator draws.
struct CountingRng {
    inner: StdRng,
    words: u64,
}

impl CountingRng {
    fn seeded(seed: u64) -> Self {
        Self {
            inner: StdRng::seed_from_u64(seed),
            words: 0,
        }
    }
}

impl RngCore for CountingRng {
    fn next_u32(&mut self) -> u32 {
        self.words += 1;
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.words += 1;
        self.inner.next_u64()
    }
}

#[test]
fn definite_measurements_consume_no_rng_on_sparse_or_tracker() {
    // Regression for the definite-measurement RNG leak: measuring a
    // qubit whose outcome is certain must not advance the stream on the
    // sparse backend (mirroring `Fork::Definite`), exactly as the basis
    // tracker behaves — while the dense engine draws for every measure.
    // One circuit, one definite measure, one genuine coin flip.
    let mut b = CircuitBuilder::new();
    let q = b.qreg("q", 2);
    b.x(q[0]);
    b.measure(q[0], Basis::Z); // definite: |1⟩
    b.h(q[1]);
    b.measure(q[1], Basis::Z); // p = 1/2
    let circuit = b.finish();
    let compiled = CompiledCircuit::compile(&circuit).unwrap();

    let mut sp = SparseVector::zeros(2).unwrap();
    let mut rng_sp = CountingRng::seeded(3);
    let ex_sp = sp.run_compiled(&compiled, &mut rng_sp).unwrap();

    let mut tracker = BasisTracker::zeros(2);
    let mut rng_tr = CountingRng::seeded(3);
    let ex_tr = tracker.run_compiled(&compiled, &mut rng_tr).unwrap();

    let mut sv = StateVector::zeros(2).unwrap();
    let mut rng_sv = CountingRng::seeded(3);
    let ex_sv = sv.run_compiled(&compiled, &mut rng_sv).unwrap();

    assert_eq!(rng_sp.words, 1, "sparse: only the coin flip draws");
    assert_eq!(rng_tr.words, 1, "tracker: only the coin flip draws");
    assert_eq!(rng_sv.words, 2, "dense: every measure draws");
    // Same words drawn at the same stream position: identical records
    // and identical post-run positions for the two frugal backends.
    assert_eq!(ex_sp, ex_tr);
    assert_eq!(rng_sp.inner.next_u64(), rng_tr.inner.next_u64());
    // And the definite outcome itself never wavers.
    assert!(ex_sp.outcome(0).unwrap());
    assert!(ex_sv.outcome(0).unwrap());
}

#[test]
fn env_selected_backend_computes_the_modular_sum() {
    // Whatever `MBU_BACKEND` selects — dense, sparse or tracker — the
    // knob-built simulator runs the same MBU modadd to the same answer.
    // (CI exercises this test under every setting of the knob.)
    let spec = ModAddSpec::cdkpm(Uncompute::Mbu);
    let (n, p, x, y) = (3usize, 5u128, 4u128, 3u128);
    let layout = modular::modadd_circuit(&spec, n, p).unwrap();
    let compiled = CompiledCircuit::compile(&layout.circuit).unwrap();

    let kind = BackendKind::from_env();
    let mut sim = kind.build(layout.circuit.num_qubits()).unwrap();
    sim.set_value(layout.x.qubits(), x).unwrap();
    sim.set_value(layout.y.qubits(), y).unwrap();
    let mut rng = StdRng::seed_from_u64(1);
    sim.run_compiled(&compiled, &mut rng).unwrap();
    assert_eq!(sim.value(layout.x.qubits()).unwrap(), x, "{kind}");
    assert_eq!(sim.value(layout.y.qubits()).unwrap(), (x + y) % p, "{kind}");
}
