//! Cross-validation of the two simulation backends, plus failure-injection
//! tests that prove the verification machinery actually catches bugs.
//!
//! The `BasisTracker` is the workhorse for wide circuits; its correctness
//! is established here by agreement with the exact `StateVector` on
//! thousands of randomly generated Toffoli-family circuits, including MBU
//! fragments. The failure-injection tests then deliberately break an MBU
//! correction and assert that the phase/amplitude checks used throughout
//! the test suite flag the damage — silence would mean our green tests
//! prove nothing.

use mbu_arith::AdderKind;
use mbu_circuit::{Basis, Circuit, CircuitBuilder, QubitId};
use mbu_sim::{BasisTracker, ShotRunner, StateVector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a random circuit in the tracker's supported fragment:
/// permutation gates, diagonal gates, and complete Gidney-style
/// AND-compute/AND-uncompute pairs.
fn random_fragment_circuit(num_qubits: usize, num_gates: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CircuitBuilder::new();
    let q = b.qreg("q", num_qubits);
    let pick = |rng: &mut StdRng, exclude: &[usize]| -> QubitId {
        loop {
            let i = rng.gen_range(0..num_qubits);
            if !exclude.contains(&i) {
                return q[i];
            }
        }
    };
    for _ in 0..num_gates {
        match rng.gen_range(0..7) {
            0 => {
                let a = rng.gen_range(0..num_qubits);
                b.x(q[a]);
            }
            1 => {
                let a = rng.gen_range(0..num_qubits);
                b.z(q[a]);
            }
            2 => {
                let a = rng.gen_range(0..num_qubits);
                let t = pick(&mut rng, &[a]);
                b.cx(q[a], t);
            }
            3 => {
                let a = rng.gen_range(0..num_qubits);
                let t = pick(&mut rng, &[a]);
                b.cz(q[a], t);
            }
            4 => {
                let a = rng.gen_range(0..num_qubits);
                let c2 = pick(&mut rng, &[a]);
                let t = pick(&mut rng, &[a, c2.index()]);
                b.ccx(q[a], c2, t);
            }
            5 => {
                let a = rng.gen_range(0..num_qubits);
                let c2 = pick(&mut rng, &[a]);
                let t = pick(&mut rng, &[a, c2.index()]);
                b.ccz(q[a], c2, t);
            }
            _ => {
                // A complete AND compute/uncompute pair on a fresh ancilla.
                let x = rng.gen_range(0..num_qubits);
                let y = pick(&mut rng, &[x]);
                let anc = b.ancilla();
                b.ccx(q[x], y, anc);
                b.h(anc);
                let m = b.measure(anc, Basis::Z);
                let (_, fix) = b.record(|bb| bb.cz(q[x], y));
                b.emit_conditional(m, &fix);
                b.reset(anc);
                b.release_ancilla(anc);
            }
        }
    }
    b.finish()
}

#[test]
fn tracker_and_statevector_agree_on_random_circuits() {
    let num_qubits = 6usize;
    for seed in 0..120u64 {
        let circuit = random_fragment_circuit(num_qubits, 40, seed);
        circuit.validate().unwrap();
        let width = circuit.num_qubits();
        let input = (seed * 37) % (1 << num_qubits);

        let mut tracker = BasisTracker::zeros(width);
        tracker
            .set_value(
                &(0..num_qubits as u32).map(QubitId).collect::<Vec<_>>(),
                u128::from(input),
            )
            .unwrap();
        let mut rng_a = StdRng::seed_from_u64(seed ^ 0xABCD);
        tracker.run(&circuit, &mut rng_a).unwrap();

        let mut sv = StateVector::zeros(width).unwrap();
        sv.prepare_basis(input).unwrap();
        let mut rng_b = StdRng::seed_from_u64(seed ^ 0xABCD);
        sv.run(&circuit, &mut rng_b).unwrap();

        // Same RNG stream → identical outcomes → identical final states.
        let (idx, amp) = sv.as_basis(1e-9).expect("fragment keeps basis states");
        let tracker_bits: Vec<QubitId> = (0..width as u32).map(QubitId).collect();
        let tracker_value = tracker.value(&tracker_bits[..width.min(127)]).unwrap();
        assert_eq!(
            u128::from(idx),
            tracker_value,
            "seed {seed}: value mismatch"
        );
        let phase = tracker.global_phase().radians();
        let expected_amp = mbu_sim::Complex::cis(phase);
        assert!(
            (amp - expected_amp).norm() < 1e-9,
            "seed {seed}: phase mismatch (tracker {phase}, sv {amp})"
        );
    }
}

#[test]
fn injected_missing_x_in_mbu_correction_is_caught() {
    // The MBU correction is H·Ug·H·X. Drop the final X: on outcome 1 the
    // garbage qubit ends in |1⟩ instead of |0⟩ — the tracker must see it.
    let mut b = CircuitBuilder::new();
    let q = b.qreg("q", 2);
    let (_, ug) = b.record(|bb| bb.cx(q[0], q[1]));
    b.emit(&ug);
    b.h(q[1]);
    let m = b.measure(q[1], Basis::Z);
    let (_, bad_fix) = b.record(|bb| {
        bb.h(q[1]);
        bb.emit(&ug);
        bb.h(q[1]);
        // missing: bb.x(q[1]);
    });
    b.emit_conditional(m, &bad_fix);
    let circuit = b.finish();

    let (_, observations) = ShotRunner::new(32)
        .run_probed(
            &circuit,
            || {
                let mut sim = BasisTracker::zeros(2);
                sim.set_bit(q[0], true).unwrap();
                Box::new(sim)
            },
            |sim, ex| (ex.outcome(0).unwrap(), sim.bit(q[1]).unwrap()),
        )
        .unwrap();
    let caught = observations
        .iter()
        .any(|(outcome, leftover)| *outcome && *leftover); // |1⟩ left behind
    assert!(caught, "the verification must detect the missing X");
}

#[test]
fn injected_missing_phase_fix_is_caught_by_global_phase() {
    // Skip the Ug phase-kickback step entirely: on outcome 1 the state
    // keeps a (−1)^{g(x)} phase. On a basis input with g = 1 this is a
    // global phase π — invisible to value checks, visible to the tracker's
    // exact phase.
    let mut b = CircuitBuilder::new();
    let q = b.qreg("q", 2);
    let (_, ug) = b.record(|bb| bb.cx(q[0], q[1]));
    b.emit(&ug);
    b.h(q[1]);
    let m = b.measure(q[1], Basis::Z);
    let (_, bad_fix) = b.record(|bb| {
        // Correct protocol: H, Ug, H, X. Broken: reset the bit but skip
        // the phase kickback.
        bb.x(q[1]);
    });
    b.emit_conditional(m, &bad_fix);
    let circuit = b.finish();

    let (_, observations) = ShotRunner::new(32)
        .run_probed(
            &circuit,
            || {
                let mut sim = BasisTracker::zeros(2);
                sim.set_bit(q[0], true).unwrap(); // g(x) = 1
                Box::new(sim)
            },
            |sim, ex| {
                assert!(!sim.bit(q[1]).unwrap(), "value looks fine either way");
                let phase = sim.global_phase().expect("tracker phase is exact");
                (ex.outcome(0).unwrap(), phase)
            },
        )
        .unwrap();
    let caught = observations
        .iter()
        .any(|(outcome, phase)| *outcome && !phase.is_zero());
    assert!(caught, "the phase check must detect the skipped kickback");
}

#[test]
fn injected_wrong_oracle_is_caught_on_superpositions() {
    // Use the wrong Ug (identity on the data) in the correction: basis
    // inputs still look right, but a superposed input keeps broken relative
    // phases that the state vector sees.
    let mut b = CircuitBuilder::new();
    let q = b.qreg("q", 2);
    b.h(q[0]); // superpose the data qubit
    let (_, ug) = b.record(|bb| bb.cx(q[0], q[1]));
    b.emit(&ug);
    b.h(q[1]);
    let m = b.measure(q[1], Basis::Z);
    let (_, bad_fix) = b.record(|bb| {
        bb.h(q[1]);
        // wrong oracle: acts on q[1] alone, no data dependence
        bb.x(q[1]);
        bb.h(q[1]);
        bb.x(q[1]);
    });
    b.emit_conditional(m, &bad_fix);
    let circuit = b.finish();

    let mut caught = false;
    for seed in 0..48 {
        let mut sv = StateVector::zeros(2).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let ex = sv.run(&circuit, &mut rng).unwrap();
        if ex.outcome(0).unwrap() {
            // Correct MBU would leave (|0⟩+|1⟩)/√2 ⊗ |0⟩: both amplitudes
            // +1/√2. The broken correction leaves a relative sign.
            let a0 = sv.amplitude(0b00);
            let a1 = sv.amplitude(0b01);
            caught |= (a0 - a1).norm() > 1e-6;
        }
    }
    assert!(caught, "superposition checks must detect the wrong oracle");
}

#[test]
fn injected_dropped_cz_in_gidney_uncompute_is_caught() {
    // Build a Gidney adder, then strip every classically-controlled CZ
    // from its op list. Values still come out right on basis inputs, but
    // the phase breaks on half the measurement outcomes.
    let adder = mbu_arith::adders::plain_adder(AdderKind::Gidney, 4).unwrap();
    let stripped: Vec<mbu_circuit::Op> = adder
        .circuit
        .ops()
        .iter()
        .filter(|op| !matches!(op, mbu_circuit::Op::Conditional { .. }))
        .cloned()
        .collect();
    let broken = Circuit::from_ops(
        adder.circuit.num_qubits(),
        adder.circuit.num_clbits(),
        stripped,
    );
    let (_, phases) = ShotRunner::new(32)
        .run_probed(
            &broken,
            || {
                let mut sim = BasisTracker::zeros(broken.num_qubits());
                sim.set_value(adder.x.qubits(), 0b1011).unwrap();
                sim.set_value(adder.y.qubits(), 0b0110).unwrap();
                Box::new(sim)
            },
            |sim, _| {
                // Sum is still correct...
                assert_eq!(sim.value(adder.y.qubits()).unwrap(), 0b1011 + 0b0110);
                sim.global_phase().expect("tracker phase is exact")
            },
        )
        .unwrap();
    // ...but the phase is damaged whenever an AND uncompute drew 1.
    let caught = phases.iter().any(|phase| !phase.is_zero());
    assert!(caught, "phase tracking must catch the dropped CZ fixups");
}

#[test]
fn two_backends_agree_on_a_full_mbu_modular_adder() {
    use mbu_arith::modular::{self, ModAddSpec};
    use mbu_arith::Uncompute;
    let n = 4usize;
    let p = 13u128;
    let spec = ModAddSpec::cdkpm(Uncompute::Mbu);
    let layout = modular::modadd_circuit(&spec, n, p).unwrap();
    for seed in 0..24u64 {
        let (x, y) = ((seed as u128 * 5) % p, (seed as u128 * 7 + 3) % p);
        let mut tracker = BasisTracker::zeros(layout.circuit.num_qubits());
        tracker.set_value(layout.x.qubits(), x).unwrap();
        tracker.set_value(layout.y.qubits(), y).unwrap();
        let mut rng_a = StdRng::seed_from_u64(seed);
        tracker.run(&layout.circuit, &mut rng_a).unwrap();

        let mut sv = StateVector::zeros(layout.circuit.num_qubits()).unwrap();
        sv.prepare_basis(StateVector::index_with(&[
            (layout.x.qubits(), x as u64),
            (layout.y.qubits(), y as u64),
        ]))
        .unwrap();
        let mut rng_b = StdRng::seed_from_u64(seed);
        sv.run(&layout.circuit, &mut rng_b).unwrap();

        let (idx, amp) = sv.as_basis(1e-9).unwrap();
        assert_eq!(
            u128::from(StateVector::register_value(idx, layout.y.qubits())),
            (x + y) % p
        );
        assert_eq!(tracker.value(layout.y.qubits()).unwrap(), (x + y) % p);
        assert!((amp.re - 1.0).abs() < 1e-9 && amp.im.abs() < 1e-9);
        assert!(tracker.global_phase().is_zero());
    }
}
