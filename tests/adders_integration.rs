//! Cross-crate integration tests for the §2 primitives: every adder family
//! against the classical reference model, at widths far beyond what the
//! in-module exhaustive tests cover, plus property-based tests.

use mbu_arith::{adders, compare, AdderKind};
use mbu_bitstring::BitString;
use mbu_circuit::{Circuit, CircuitBuilder, Gate, Op, QubitId};
use mbu_sim::{BasisTracker, StateVector};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const RIPPLE_KINDS: [AdderKind; 3] = [AdderKind::Vbe, AdderKind::Cdkpm, AdderKind::Gidney];

fn run_tracker(
    circuit: &Circuit,
    inputs: &[(&[QubitId], u128)],
    out: &[QubitId],
    seed: u64,
) -> u128 {
    circuit.validate().expect("circuit must validate");
    let mut sim = BasisTracker::zeros(circuit.num_qubits());
    for (reg, v) in inputs {
        sim.set_value(reg, *v).unwrap();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    sim.run(circuit, &mut rng)
        .expect("tracker must support the circuit");
    assert!(sim.global_phase().is_zero(), "no residual phase");
    sim.value(out).expect("output must be classical")
}

#[test]
fn adders_agree_with_bitstring_model_at_width_96() {
    let n = 96usize;
    let m = 1u128 << 97;
    let x = (1u128 << 95) | 0xDEAD_BEEF_DEAD_BEEF;
    let y = (1u128 << 96) - 12_345; // exercises long carry chains
    for kind in RIPPLE_KINDS {
        let adder = adders::plain_adder(kind, n).unwrap();
        let got = run_tracker(
            &adder.circuit,
            &[(adder.x.qubits(), x), (adder.y.qubits(), y)],
            adder.y.qubits(),
            3,
        );
        // Cross-check against the BitString reference model.
        let bx = BitString::from_u128(x, n);
        let by = BitString::from_u128(y, n + 1);
        let reference = by.wrapping_add(&bx.resized(n + 1));
        assert_eq!(got, reference.to_u128(), "{kind}");
        assert_eq!(got, (x + y) % m, "{kind}");
    }
}

#[test]
fn add_sub_round_trip_at_width_200() {
    // Beyond-u128 widths: drive the registers bit by bit.
    let n = 200usize;
    for kind in [AdderKind::Cdkpm, AdderKind::Gidney] {
        let mut b = CircuitBuilder::new();
        let xr = b.qreg("x", n);
        let yr = b.qreg("y", n + 1);
        adders::add(&mut b, kind, xr.qubits(), yr.qubits()).unwrap();
        adders::sub(&mut b, kind, xr.qubits(), yr.qubits()).unwrap();
        let circuit = b.finish();

        let mut sim = BasisTracker::zeros(circuit.num_qubits());
        // x = alternating bits, y = every third bit.
        for (i, q) in xr.iter().enumerate() {
            sim.set_bit(q, i % 2 == 0).unwrap();
        }
        let y_bits: Vec<bool> = (0..=n).map(|i| i % 3 == 1).collect();
        for (i, q) in yr.iter().enumerate() {
            sim.set_bit(q, y_bits[i]).unwrap();
        }
        let mut rng = StdRng::seed_from_u64(17);
        sim.run(&circuit, &mut rng).unwrap();
        assert_eq!(sim.bits(yr.qubits()).unwrap(), y_bits, "{kind}");
        assert!(sim.global_phase().is_zero());
    }
}

#[test]
fn mixed_kind_chains_compose() {
    // Add with one family, subtract with another: the shared register
    // conventions make families interchangeable mid-circuit.
    let n = 24usize;
    let (x, y) = (0xABCDEF_u128, 0x123456_u128);
    let mut b = CircuitBuilder::new();
    let xr = b.qreg("x", n);
    let yr = b.qreg("y", n + 1);
    adders::add(&mut b, AdderKind::Gidney, xr.qubits(), yr.qubits()).unwrap();
    adders::add(&mut b, AdderKind::Cdkpm, xr.qubits(), yr.qubits()).unwrap();
    adders::sub(&mut b, AdderKind::Vbe, xr.qubits(), yr.qubits()).unwrap();
    let circuit = b.finish();
    let got = run_tracker(
        &circuit,
        &[(xr.qubits(), x), (yr.qubits(), y)],
        yr.qubits(),
        5,
    );
    assert_eq!(got, x + y); // net effect: one addition
}

#[test]
fn comparator_against_subtraction_top_bit() {
    // Definition 2.24 ties the comparator to the subtractor's sign bit;
    // check the two implementations agree on random inputs.
    let n = 40usize;
    let pairs = [
        (0x12_3456_7890u128, 0x0FF_FFFF_FFFFu128),
        (0xFF_FFFF_FFFFu128, 0x12_3456_7890u128),
        (42, 42),
        (0, (1 << 40) - 1),
    ];
    for kind in RIPPLE_KINDS {
        for &(x, y) in &pairs {
            let cmp = compare::comparator(kind, n).unwrap();
            let got = run_tracker(
                &cmp.circuit,
                &[(cmp.x.qubits(), x), (cmp.y.qubits(), y)],
                &[cmp.t],
                9,
            );
            let sub = adders::subtractor(kind, n).unwrap();
            let diff = run_tracker(
                &sub.circuit,
                &[(sub.x.qubits(), x), (sub.y.qubits(), y)],
                sub.y.qubits(),
                9,
            );
            assert_eq!(got == 1, diff >> n == 1, "{kind}: {x} vs {y}");
            assert_eq!(got == 1, x > y, "{kind}");
        }
    }
}

#[test]
fn draper_adder_on_superposed_target() {
    // Linearity: adding x into a superposed y must produce the superposed
    // sums with uniform amplitudes and no phase damage.
    let n = 3usize;
    let mut b = CircuitBuilder::new();
    let xr = b.qreg("x", n);
    let yr = b.qreg("y", n + 1);
    for q in yr.iter().take(n) {
        b.h(q);
    }
    adders::add(&mut b, AdderKind::Draper, xr.qubits(), yr.qubits()).unwrap();
    let circuit = b.finish();

    let x0 = 5u64;
    let mut sv = StateVector::zeros(circuit.num_qubits()).unwrap();
    sv.prepare_basis(StateVector::index_with(&[(xr.qubits(), x0)]))
        .unwrap();
    let mut rng = StdRng::seed_from_u64(0);
    sv.run(&circuit, &mut rng).unwrap();
    let expected_amp = 1.0 / ((1u64 << n) as f64).sqrt();
    for y0 in 0..(1u64 << n) {
        let idx = StateVector::index_with(&[(xr.qubits(), x0), (yr.qubits(), x0 + y0)]);
        let a = sv.amplitude(idx);
        assert!(
            (a.re - expected_amp).abs() < 1e-9 && a.im.abs() < 1e-9,
            "y={y0}: {a}"
        );
    }
}

#[test]
fn controlled_adders_on_superposed_control() {
    // |+⟩-controlled addition creates an entangled sum state; verify both
    // branches' amplitudes for every family.
    let n = 3usize;
    for kind in [
        AdderKind::Cdkpm,
        AdderKind::Vbe,
        AdderKind::Gidney,
        AdderKind::Draper,
    ] {
        let ca = adders::controlled_adder(kind, n).unwrap();
        let mut full = Circuit::new(ca.circuit.num_qubits(), ca.circuit.num_clbits());
        full.push(Op::Gate(Gate::H(ca.control)));
        for op in ca.circuit.ops() {
            full.push(op.clone());
        }
        let (x0, y0) = (3u64, 2u64);
        for seed in 0..6 {
            let mut sv = StateVector::zeros(full.num_qubits()).unwrap();
            sv.prepare_basis(StateVector::index_with(&[
                (ca.x.qubits(), x0),
                (ca.y.qubits(), y0),
            ]))
            .unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            sv.run(&full, &mut rng).unwrap();
            let idx_off = StateVector::index_with(&[
                (&[ca.control], 0),
                (ca.x.qubits(), x0),
                (ca.y.qubits(), y0),
            ]);
            let idx_on = StateVector::index_with(&[
                (&[ca.control], 1),
                (ca.x.qubits(), x0),
                (ca.y.qubits(), x0 + y0),
            ]);
            let a0 = sv.amplitude(idx_off);
            let a1 = sv.amplitude(idx_on);
            let r = std::f64::consts::FRAC_1_SQRT_2;
            assert!(
                (a0.re - r).abs() < 1e-9 && a0.im.abs() < 1e-9,
                "{kind} seed {seed}: off-branch {a0}"
            );
            assert!(
                (a1.re - r).abs() < 1e-9 && a1.im.abs() < 1e-9,
                "{kind} seed {seed}: on-branch {a1}"
            );
        }
    }
}

#[test]
fn vbe_matches_cdkpm_matches_gidney_on_many_inputs() {
    // Differential testing: the three ripple families must agree with each
    // other on every input (they implement the same unitary map).
    let n = 10usize;
    let mut lcg = 0x2545F4914F6CDD1Du128;
    for _ in 0..50 {
        lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1);
        let x = lcg % (1 << n);
        lcg = lcg.wrapping_mul(6364136223846793005).wrapping_add(1);
        let y = lcg % (1 << (n + 1));
        let mut outputs = Vec::new();
        for kind in RIPPLE_KINDS {
            let adder = adders::plain_adder(kind, n).unwrap();
            outputs.push(run_tracker(
                &adder.circuit,
                &[(adder.x.qubits(), x), (adder.y.qubits(), y)],
                adder.y.qubits(),
                lcg as u64,
            ));
        }
        assert!(
            outputs.windows(2).all(|w| w[0] == w[1]),
            "families disagree on {x}+{y}: {outputs:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn prop_add_matches_integers(
        n in 1usize..=20,
        x_raw in 0u64..u64::MAX,
        y_raw in 0u64..u64::MAX,
        kind_idx in 0usize..3,
        seed in 0u64..1000,
    ) {
        let kind = RIPPLE_KINDS[kind_idx];
        let x = u128::from(x_raw) % (1 << n);
        let y = u128::from(y_raw) % (1 << (n + 1));
        let adder = adders::plain_adder(kind, n).unwrap();
        let got = run_tracker(
            &adder.circuit,
            &[(adder.x.qubits(), x), (adder.y.qubits(), y)],
            adder.y.qubits(),
            seed,
        );
        prop_assert_eq!(got, (x + y) % (1 << (n + 1)));
    }

    #[test]
    fn prop_sub_inverts_add(
        n in 1usize..=20,
        x_raw in 0u64..u64::MAX,
        y_raw in 0u64..u64::MAX,
        kind_idx in 0usize..3,
        seed in 0u64..1000,
    ) {
        let kind = RIPPLE_KINDS[kind_idx];
        let x = u128::from(x_raw) % (1 << n);
        let y = u128::from(y_raw) % (1 << (n + 1));
        let mut b = CircuitBuilder::new();
        let xr = b.qreg("x", n);
        let yr = b.qreg("y", n + 1);
        adders::add(&mut b, kind, xr.qubits(), yr.qubits()).unwrap();
        adders::sub(&mut b, kind, xr.qubits(), yr.qubits()).unwrap();
        let circuit = b.finish();
        let got = run_tracker(
            &circuit,
            &[(xr.qubits(), x), (yr.qubits(), y)],
            yr.qubits(),
            seed,
        );
        prop_assert_eq!(got, y);
    }

    #[test]
    fn prop_const_adders_match(
        n in 1usize..=16,
        a_raw in 0u64..u64::MAX,
        y_raw in 0u64..u64::MAX,
        kind_idx in 0usize..3,
        seed in 0u64..1000,
    ) {
        let kind = RIPPLE_KINDS[kind_idx];
        let a = u128::from(a_raw) % (1 << n);
        let y = u128::from(y_raw) % (1 << n);
        let ca = adders::const_adder(kind, n, a).unwrap();
        let got = run_tracker(&ca.circuit, &[(ca.y.qubits(), y)], ca.y.qubits(), seed);
        prop_assert_eq!(got, a + y);
    }

    #[test]
    fn prop_comparators_match(
        n in 1usize..=20,
        x_raw in 0u64..u64::MAX,
        y_raw in 0u64..u64::MAX,
        kind_idx in 0usize..3,
        seed in 0u64..1000,
    ) {
        let kind = RIPPLE_KINDS[kind_idx];
        let x = u128::from(x_raw) % (1 << n);
        let y = u128::from(y_raw) % (1 << n);
        let cmp = compare::comparator(kind, n).unwrap();
        let got = run_tracker(
            &cmp.circuit,
            &[(cmp.x.qubits(), x), (cmp.y.qubits(), y)],
            &[cmp.t],
            seed,
        );
        prop_assert_eq!(got == 1, x > y);
    }

    #[test]
    fn prop_gidney_ancillas_return_to_zero(
        n in 2usize..=16,
        x_raw in 0u64..u64::MAX,
        seed in 0u64..1000,
    ) {
        // After add+sub the pool ancillas must all read |0⟩.
        let x = u128::from(x_raw) % (1 << n);
        let mut b = CircuitBuilder::new();
        let xr = b.qreg("x", n);
        let yr = b.qreg("y", n + 1);
        adders::add(&mut b, AdderKind::Gidney, xr.qubits(), yr.qubits()).unwrap();
        adders::sub(&mut b, AdderKind::Gidney, xr.qubits(), yr.qubits()).unwrap();
        let circuit = b.finish();
        let mut sim = BasisTracker::zeros(circuit.num_qubits());
        sim.set_value(xr.qubits(), x).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        sim.run(&circuit, &mut rng).unwrap();
        for q in ((2 * n + 1) as u32..circuit.num_qubits() as u32).map(QubitId) {
            prop_assert_eq!(sim.bit(q).unwrap(), false);
        }
    }

    #[test]
    fn prop_controlled_const_adder(
        n in 1usize..=14,
        a_raw in 0u64..u64::MAX,
        y_raw in 0u64..u64::MAX,
        ctrl in proptest::bool::ANY,
        kind_idx in 0usize..3,
        seed in 0u64..1000,
    ) {
        let kind = RIPPLE_KINDS[kind_idx];
        let a = u128::from(a_raw) % (1 << n);
        let y = u128::from(y_raw) % (1 << n);
        let ca = adders::controlled_const_adder(kind, n, a).unwrap();
        let got = run_tracker(
            &ca.circuit,
            &[(&[ca.control], u128::from(ctrl)), (ca.y.qubits(), y)],
            ca.y.qubits(),
            seed,
        );
        prop_assert_eq!(got, y + a * u128::from(ctrl));
    }
}
