//! Observational invisibility of the SoA/SIMD amplitude kernels.
//!
//! `MBU_SIMD` (and the [`StateVector::with_simd`] builder) switches the
//! dense engine between lane-grouped SoA enumeration and the seed's
//! per-amplitude scalar walk. The switch reorders *iteration*, never
//! arithmetic: every per-amplitude operation keeps its exact sequence of
//! floating-point steps, and every reduction keeps ascending-index
//! order. So SIMD on vs off must be **bit-identical** — amplitudes, RNG
//! consumption, classical records, executed counts and ensemble
//! aggregates — across kernel modes, fusion on/off, reclamation on/off
//! and amplitude-lane counts, on the paper's random MBU modular adders.
//!
//! The second proptest drives tiny adaptive circuits (1–3 qubits, 2–8
//! amplitudes) where whole states are shorter than one 8-wide lane
//! group, plus mid-circuit measurement and reset: the remainder-handling
//! edge the wide modadds never hit. Reclamation in the first proptest
//! covers the post-`Drop` compacted lengths.

use mbu_arith::{
    modular::{self, ModAddSpec},
    Uncompute,
};
use mbu_circuit::{Angle, Basis, Circuit, ClbitId, CompiledCircuit, Gate, Op, PassConfig, QubitId};
use mbu_sim::{Ensemble, KernelMode, ShotRunner, Simulator, StateVector};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

fn arch_spec(arch: u8, unc: Uncompute) -> ModAddSpec {
    match arch % 3 {
        0 => ModAddSpec::cdkpm(unc),
        1 => ModAddSpec::gidney(unc),
        _ => ModAddSpec::gidney_cdkpm(unc),
    }
}

fn passes(fuse: usize) -> PassConfig {
    PassConfig {
        fuse_max_qubits: fuse,
        ..PassConfig::default()
    }
}

/// Asserts bit-identical state and draws between a finished SIMD run and
/// its scalar twin.
fn assert_bit_identical(
    label: &str,
    sv_simd: &StateVector,
    sv_scalar: &StateVector,
    rng_simd: &mut StdRng,
    rng_scalar: &mut StdRng,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(
        rng_simd.next_u64(),
        rng_scalar.next_u64(),
        "{}: RNG streams diverged",
        label
    );
    let amps_simd = sv_simd.amplitudes();
    let amps_scalar = sv_scalar.amplitudes();
    prop_assert_eq!(amps_simd.len(), amps_scalar.len(), "{}: lengths", label);
    for (i, (a, b)) in amps_simd.iter().zip(&amps_scalar).enumerate() {
        prop_assert_eq!(a.re.to_bits(), b.re.to_bits(), "{}: re of amp {}", label, i);
        prop_assert_eq!(a.im.to_bits(), b.im.to_bits(), "{}: im of amp {}", label, i);
    }
    Ok(())
}

proptest! {
    // Each case simulates an up-to-18-qubit modadd 16 times (2 kernel
    // modes × fused/unfused × reclamation on/off × SIMD on/off).
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn simd_switch_is_bit_invisible_on_mbu_modadds(
        n in 2usize..=4,
        pk in 0u128..1_000_000,
        xk in 0u128..1_000_000,
        yk in 0u128..1_000_000,
        arch in 0u8..3,
        lane_pick in 0usize..2,
        seed in 0u64..u64::MAX,
    ) {
        let lanes = [1usize, 4][lane_pick];
        let pmax = (1u128 << n) - 1;
        let p = 2 + pk % (pmax - 1);
        let x = xk % p;
        let y = yk % p;
        let spec = arch_spec(arch, Uncompute::Mbu);
        let layout = modular::modadd_circuit(&spec, n, p).unwrap();
        let nq = layout.circuit.num_qubits();
        let input = StateVector::index_with(&[
            (layout.x.qubits(), u64::try_from(x).unwrap()),
            (layout.y.qubits(), u64::try_from(y).unwrap()),
        ]);

        for fuse in [0usize, 3] {
            let compiled =
                CompiledCircuit::with_config(&layout.circuit, &passes(fuse)).unwrap();
            for mode in [KernelMode::Stride, KernelMode::Scan] {
                for reclaim in [true, false] {
                    let label = format!("fuse={fuse} {mode:?} reclaim={reclaim} lanes={lanes}");
                    let build = |simd: bool| {
                        StateVector::basis(nq, input)
                            .unwrap()
                            .with_kernel_mode(mode)
                            .with_reclamation(reclaim)
                            .with_amp_threads(lanes)
                            .with_simd(simd)
                    };

                    let mut sv_simd = build(true);
                    let mut rng_simd = StdRng::seed_from_u64(seed);
                    let ex_simd = sv_simd.run_compiled(&compiled, &mut rng_simd).unwrap();

                    let mut sv_scalar = build(false);
                    let mut rng_scalar = StdRng::seed_from_u64(seed);
                    let ex_scalar =
                        sv_scalar.run_compiled(&compiled, &mut rng_scalar).unwrap();

                    prop_assert_eq!(&ex_simd, &ex_scalar, "{}", &label);
                    assert_bit_identical(
                        &label,
                        &sv_simd,
                        &sv_scalar,
                        &mut rng_simd,
                        &mut rng_scalar,
                    )?;
                    // Both still compute the paper's modular sum.
                    prop_assert_eq!(sv_simd.value(layout.x.qubits()).unwrap(), x);
                    prop_assert_eq!(sv_simd.value(layout.y.qubits()).unwrap(), (x + y) % p);
                }
            }
        }
    }
}

/// Builds a tiny adaptive circuit over `nq` qubits from raw specs: every
/// gate family, Z/X measurements and resets.
fn tiny_circuit(nq: usize, specs: &[(u8, u32, u32, u32)]) -> Circuit {
    let nqu = u32::try_from(nq).unwrap();
    let mut ops = Vec::new();
    let mut next_clbit = 0u32;
    for &(kind, a, b, c) in specs {
        let qa = QubitId(a % nqu);
        let qb = QubitId((qa.0 + 1 + b % nqu.max(2).saturating_sub(1)) % nqu.max(2));
        let theta = Angle::from_fraction(u128::from(c % 16), 2);
        match kind % 12 {
            0 => ops.push(Op::Gate(Gate::X(qa))),
            1 => ops.push(Op::Gate(Gate::Z(qa))),
            2 => ops.push(Op::Gate(Gate::H(qa))),
            3 => ops.push(Op::Gate(Gate::Phase(qa, theta))),
            4 | 5 if nq >= 2 && qa != qb => ops.push(Op::Gate(if kind % 12 == 4 {
                Gate::Cx(qa, qb)
            } else {
                Gate::Cz(qa, qb)
            })),
            6 if nq >= 2 && qa != qb => ops.push(Op::Gate(Gate::Swap(qa, qb))),
            7 if nq >= 2 && qa != qb => ops.push(Op::Gate(Gate::CPhase(qa, qb, theta))),
            8 | 9 => {
                let clbit = ClbitId(next_clbit);
                next_clbit += 1;
                ops.push(Op::Measure {
                    qubit: qa,
                    basis: if kind % 12 == 8 { Basis::Z } else { Basis::X },
                    clbit,
                });
            }
            10 => ops.push(Op::Reset(qa)),
            _ => ops.push(Op::Gate(Gate::H(qa))),
        }
    }
    Circuit::from_ops(nq, next_clbit as usize, ops)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whole states below one lane group: 1–3 qubits is 2–8 amplitudes,
    /// so the SoA kernels run nothing but their remainder paths here.
    #[test]
    fn simd_switch_is_bit_invisible_below_one_lane_group(
        nq in 1usize..=3,
        specs in collection::vec((0u8..12, 0u32..8, 0u32..8, 0u32..16), 0..24usize),
        seed in 0u64..u64::MAX,
    ) {
        let circuit = tiny_circuit(nq, &specs);

        let mut sv_simd = StateVector::zeros(nq).unwrap().with_simd(true);
        let mut rng_simd = StdRng::seed_from_u64(seed);
        let ex_simd = sv_simd.run(&circuit, &mut rng_simd).unwrap();

        let mut sv_scalar = StateVector::zeros(nq).unwrap().with_simd(false);
        let mut rng_scalar = StdRng::seed_from_u64(seed);
        let ex_scalar = sv_scalar.run(&circuit, &mut rng_scalar).unwrap();

        prop_assert_eq!(&ex_simd, &ex_scalar);
        assert_bit_identical(
            "tiny",
            &sv_simd,
            &sv_scalar,
            &mut rng_simd,
            &mut rng_scalar,
        )?;
    }
}

/// The classical face of an ensemble (peak-memory stats excluded).
fn classical_view(e: &Ensemble) -> impl PartialEq + std::fmt::Debug {
    let records: Vec<(Vec<Option<bool>>, u64)> = e
        .record_frequencies()
        .map(|(r, n)| (r.to_vec(), n))
        .collect();
    (e.shots(), e.mean(), e.variance(), records)
}

#[test]
fn ensemble_aggregates_survive_the_simd_switch() {
    // A 2-stage MBU modadd chain under the shot engine: aggregates from
    // factories differing only in `with_simd` must be bit-identical.
    let spec = ModAddSpec::cdkpm(Uncompute::Mbu);
    let chain = modular::modadd_chain_circuit(&spec, 2, 3, 2).unwrap();
    let nq = chain.circuit.num_qubits();
    let factory = |simd: bool| {
        let chain = &chain;
        move || {
            let mut sv = StateVector::zeros(nq).unwrap().with_simd(simd);
            sv.set_value(chain.x.qubits(), 2).unwrap();
            sv.set_value(chain.y.qubits(), 1).unwrap();
            Box::new(sv) as Box<dyn Simulator>
        }
    };

    let on = ShotRunner::new(48)
        .run(&chain.circuit, factory(true))
        .unwrap();
    let off = ShotRunner::new(48)
        .run(&chain.circuit, factory(false))
        .unwrap();
    assert_eq!(classical_view(&on), classical_view(&off));
    for clbit in 0..on.num_clbits() {
        assert_eq!(
            on.outcome_frequency(clbit),
            off.outcome_frequency(clbit),
            "clbit {clbit}"
        );
    }
}
