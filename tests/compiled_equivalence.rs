//! Equivalence proptests for the compiled execution engine.
//!
//! Three layers of guarantee, from strongest to weakest:
//!
//! * **lowering is exact**: for random adaptive circuits, executing the
//!   lowered instruction stream produces bit-identical amplitudes,
//!   classical records and executed counts to the interpreted tree walk,
//!   given the same RNG stream;
//! * **default passes are exact up to float re-association**: cancelling a
//!   gate pair skips two floating-point rounding steps, so amplitudes are
//!   compared within 1e-9 — but measurement outcomes and classical records
//!   must match exactly;
//! * **aggressive passes are exact up to global phase**: phase-dead
//!   elimination may rotate the collapsed state by a global phase, and
//!   nothing else.
//!
//! Plus the paper's workload: random MBU modular adders must compute
//! `(x + y) mod p` identically under interpreted and compiled execution.

use mbu_arith::{
    modular::{self, ModAddSpec},
    Uncompute,
};
use mbu_circuit::{Angle, Basis, Circuit, ClbitId, CompiledCircuit, Gate, Op, PassConfig, QubitId};
use mbu_sim::{Executed, Simulator, StateVector};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One raw entry of a generated program; [`build_circuit`] maps it onto
/// in-range, distinct qubits.
type Spec = (u8, u32, u32, u32, u32);

/// Builds a random adaptive circuit over `nq` qubits from raw specs:
/// unitary gates of every family, mid-circuit measurements in both bases,
/// resets, and conditional blocks over previously written classical bits.
fn build_circuit(nq: usize, specs: &[Spec]) -> Circuit {
    let nqu = u32::try_from(nq).unwrap();
    let mut ops = Vec::new();
    let mut written: Vec<ClbitId> = Vec::new();
    let mut next_clbit = 0u32;
    for &(kind, a, b, c, k) in specs {
        let qa = QubitId(a % nqu);
        let qb = QubitId((qa.0 + 1 + b % (nqu - 1)) % nqu);
        let rest: Vec<u32> = (0..nqu).filter(|x| *x != qa.0 && *x != qb.0).collect();
        let theta = Angle::from_fraction(u128::from(c % 16), 1 + k % 4);
        let gate = match kind % 11 {
            0 => Gate::X(qa),
            1 => Gate::Z(qa),
            2 => Gate::H(qa),
            3 => Gate::Phase(qa, theta),
            4 => Gate::Cx(qa, qb),
            5 => Gate::Cz(qa, qb),
            6 => Gate::Swap(qa, qb),
            7 => Gate::CPhase(qa, qb, theta),
            n3 @ 8..=10 => {
                if rest.is_empty() {
                    Gate::Cx(qa, qb) // 2-qubit fallback on narrow circuits
                } else {
                    let qc = QubitId(rest[c as usize % rest.len()]);
                    match n3 {
                        8 => Gate::Ccx(qa, qb, qc),
                        9 => Gate::Ccz(qa, qb, qc),
                        _ => Gate::CcPhase(qa, qb, qc, theta),
                    }
                }
            }
            _ => unreachable!(),
        };
        match kind {
            0..=10 => ops.push(Op::Gate(gate)),
            11 | 12 => {
                let clbit = ClbitId(next_clbit);
                next_clbit += 1;
                written.push(clbit);
                ops.push(Op::Measure {
                    qubit: qa,
                    basis: if kind == 11 { Basis::Z } else { Basis::X },
                    clbit,
                });
            }
            13 => ops.push(Op::Reset(qa)),
            _ => {
                // Conditional over a previously written bit, guarding the
                // generated gate; degrades to a bare gate when nothing has
                // been measured yet.
                if let Some(clbit) = written.get(b as usize % written.len().max(1)) {
                    ops.push(Op::Conditional {
                        clbit: *clbit,
                        ops: vec![Op::Gate(gate)],
                    });
                } else {
                    ops.push(Op::Gate(gate));
                }
            }
        }
    }
    Circuit::from_ops(nq, next_clbit as usize, ops)
}

/// Runs `circuit` interpreted on a fresh state vector.
fn run_interpreted(circuit: &Circuit, nq: usize, seed: u64) -> (StateVector, Executed) {
    let mut sv = StateVector::zeros(nq).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let ex = sv.run(circuit, &mut rng).unwrap();
    (sv, ex)
}

/// Runs a compiled program on a fresh state vector.
fn run_compiled(compiled: &CompiledCircuit, nq: usize, seed: u64) -> (StateVector, Executed) {
    let mut sv = StateVector::zeros(nq).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let ex = sv.run_compiled(compiled, &mut rng).unwrap();
    (sv, ex)
}

fn max_amp_diff(a: &StateVector, b: &StateVector) -> f64 {
    a.amplitudes()
        .iter()
        .zip(b.amplitudes())
        .map(|(x, y)| (*x - y).norm())
        .fold(0.0, f64::max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lowering_is_bit_exact(
        nq in 2usize..=5,
        specs in collection::vec((0u8..16, 0u32..64, 0u32..64, 0u32..64, 0u32..8), 0..40usize),
        seed in 0u64..u64::MAX,
    ) {
        let circuit = build_circuit(nq, &specs);
        let compiled = CompiledCircuit::lower(&circuit).unwrap();
        let (sv_i, ex_i) = run_interpreted(&circuit, nq, seed);
        let (sv_c, ex_c) = run_compiled(&compiled, nq, seed);
        // Same draws, same ops: everything identical, bit for bit.
        prop_assert_eq!(&ex_i, &ex_c);
        for (i, (x, y)) in sv_i.amplitudes().iter().zip(sv_c.amplitudes()).enumerate() {
            prop_assert_eq!(x.re.to_bits(), y.re.to_bits(), "re of amp {}", i);
            prop_assert_eq!(x.im.to_bits(), y.im.to_bits(), "im of amp {}", i);
        }
    }

    #[test]
    fn default_passes_preserve_state_and_record(
        nq in 2usize..=5,
        specs in collection::vec((0u8..16, 0u32..64, 0u32..64, 0u32..64, 0u32..8), 0..40usize),
        seed in 0u64..u64::MAX,
    ) {
        let circuit = build_circuit(nq, &specs);
        let compiled = CompiledCircuit::compile(&circuit).unwrap();
        let (sv_i, ex_i) = run_interpreted(&circuit, nq, seed);
        let (sv_c, ex_c) = run_compiled(&compiled, nq, seed);
        // Passes remove gates, so executed counts may shrink — but the
        // measurement record (and therefore the control flow) must match
        // exactly, and amplitudes up to float re-association.
        prop_assert_eq!(&ex_i.classical, &ex_c.classical);
        let diff = max_amp_diff(&sv_i, &sv_c);
        prop_assert!(diff < 1e-9, "max amplitude diff {}", diff);
        let removed = compiled.stats().removed();
        let total = compiled.stats().lowered_instrs as u64;
        prop_assert!(removed <= total);
    }

    #[test]
    fn aggressive_passes_preserve_up_to_global_phase(
        nq in 2usize..=5,
        specs in collection::vec((0u8..16, 0u32..64, 0u32..64, 0u32..64, 0u32..8), 0..40usize),
        seed in 0u64..u64::MAX,
    ) {
        let circuit = build_circuit(nq, &specs);
        let compiled = CompiledCircuit::with_config(&circuit, &PassConfig::aggressive()).unwrap();
        let (sv_i, ex_i) = run_interpreted(&circuit, nq, seed);
        let (sv_c, ex_c) = run_compiled(&compiled, nq, seed);
        // Measurement probabilities are untouched by phase-dead removal, so
        // with equal RNG streams every outcome matches exactly.
        prop_assert_eq!(&ex_i.classical, &ex_c.classical);
        // The states may differ by exactly one global phase factor.
        let pivot = sv_i
            .amplitudes()
            .iter()
            .enumerate()
            .find(|(_, a)| a.norm() > 1e-6)
            .map(|(i, _)| i);
        if let Some(i) = pivot {
            let a = sv_i.amplitude(i as u64);
            let b = sv_c.amplitude(i as u64);
            let phase = b * a.conj().scale(1.0 / a.norm_sqr());
            prop_assert!((phase.norm() - 1.0).abs() < 1e-6, "|phase| = {}", phase.norm());
            for (j, (x, y)) in sv_i.amplitudes().iter().zip(sv_c.amplitudes()).enumerate() {
                let rotated = phase * *x;
                prop_assert!(
                    (rotated - y).norm() < 1e-9,
                    "amp {}: {} vs {} (phase {})", j, rotated, y, phase
                );
            }
        }
    }

}

proptest! {
    // Fewer cases: each one simulates up to an 18-qubit Gidney modadd.
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn mbu_modadd_compiled_matches_interpreted(
        n in 2usize..=4,
        pk in 0u128..1_000_000,
        xk in 0u128..1_000_000,
        yk in 0u128..1_000_000,
        arch in 0u8..3,
        seed in 0u64..u64::MAX,
    ) {
        let pmax = (1u128 << n) - 1;
        let p = 2 + pk % (pmax - 1); // 2 ..= 2^n - 1
        let x = xk % p;
        let y = yk % p;
        let spec = match arch {
            0 => ModAddSpec::cdkpm(Uncompute::Mbu),
            1 => ModAddSpec::gidney(Uncompute::Mbu),
            _ => ModAddSpec::gidney_cdkpm(Uncompute::Mbu),
        };
        let layout = modular::modadd_circuit(&spec, n, p).unwrap();
        let nq = layout.circuit.num_qubits();
        let input = StateVector::index_with(&[
            (layout.x.qubits(), u64::try_from(x).unwrap()),
            (layout.y.qubits(), u64::try_from(y).unwrap()),
        ]);

        let compiled = CompiledCircuit::lower(&layout.circuit).unwrap();
        let mut sv_i = StateVector::basis(nq, input).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let ex_i = sv_i.run(&layout.circuit, &mut rng).unwrap();
        let mut sv_c = StateVector::basis(nq, input).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let ex_c = sv_c.run_compiled(&compiled, &mut rng).unwrap();

        prop_assert_eq!(&ex_i, &ex_c);
        let diff = max_amp_diff(&sv_i, &sv_c);
        prop_assert_eq!(diff, 0.0, "lowered execution must be bit-exact");
        // And both must compute the paper's modular sum.
        prop_assert_eq!(sv_c.value(layout.x.qubits()).unwrap(), x);
        prop_assert_eq!(sv_c.value(layout.y.qubits()).unwrap(), (x + y) % p);

        // The optimised program agrees too (same RNG stream, exact passes).
        let optimised = CompiledCircuit::compile(&layout.circuit).unwrap();
        let mut sv_o = StateVector::basis(nq, input).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let ex_o = sv_o.run_compiled(&optimised, &mut rng).unwrap();
        prop_assert_eq!(&ex_i.classical, &ex_o.classical);
        prop_assert!(max_amp_diff(&sv_i, &sv_o) < 1e-9);
        prop_assert_eq!(sv_o.value(layout.y.qubits()).unwrap(), (x + y) % p);
    }
}

#[test]
fn shotrunner_with_passes_matches_interpreted_distribution() {
    // The runner's opt-in passes must not shift outcome frequencies: the
    // per-shot RNG streams are identical and every Born probability is
    // preserved, so the classical aggregates match the pass-free runner's
    // exactly.
    use mbu_sim::{BasisTracker, ShotRunner};
    let spec = ModAddSpec::cdkpm(Uncompute::Mbu);
    let layout = modular::modadd_circuit(&spec, 4, 13).unwrap();
    let factory = || {
        let mut sim = BasisTracker::zeros(layout.circuit.num_qubits());
        sim.set_value(layout.x.qubits(), 7).unwrap();
        sim.set_value(layout.y.qubits(), 9).unwrap();
        Box::new(sim) as Box<dyn Simulator>
    };
    let plain = ShotRunner::new(400).run(&layout.circuit, factory).unwrap();
    let optimised = ShotRunner::new(400)
        .with_passes(PassConfig::default())
        .run(&layout.circuit, factory)
        .unwrap();
    assert_eq!(plain.shots(), optimised.shots());
    for clbit in 0..plain.num_clbits() {
        assert_eq!(
            plain.outcome_ones(clbit),
            optimised.outcome_ones(clbit),
            "clbit {clbit}"
        );
        assert_eq!(plain.outcome_writes(clbit), optimised.outcome_writes(clbit));
    }
}
