//! Golden resource counts for the paper's Tables 1–6.
//!
//! Unlike `counts_vs_paper.rs` — which compares measured counts against the
//! paper's *printed formulas* with the slack policy of EXPERIMENTS.md —
//! this suite pins the **exact** counts our constructed circuits produce at
//! fixed sizes. The formulas tolerate small constant drift; these goldens
//! do not: any change to the construction code (`adders`, `compare`,
//! `modular`, `counts.rs`, `resources.rs`) that shifts a single gate fails
//! loudly here and must be acknowledged by re-pinning the value.
//!
//! Every expected-count golden (`etof`, `ecx`) is a finite sum of
//! `k / 2^level` terms, exactly representable in an `f64`, so `assert_eq!`
//! on floats is sound.

use mbu_arith::{
    adders, compare,
    modular::{self, ModAddSpec},
    AdderKind, Uncompute,
};
use mbu_circuit::Circuit;

/// One pinned row: the exact fingerprint of a constructed circuit.
struct Golden {
    tag: &'static str,
    q: usize,
    tof: u64,
    cx: u64,
    cz: u64,
    x: u64,
    h: u64,
    cphase: u64,
    mz: u64,
    mx: u64,
    reset: u64,
    etof: f64,
    ecx: f64,
}

fn check(circuit: &Circuit, g: &Golden) {
    let c = circuit.counts();
    let e = circuit.expected_counts();
    assert_eq!(circuit.num_qubits(), g.q, "{}: logical qubits", g.tag);
    assert_eq!(c.toffoli, g.tof, "{}: Toffoli", g.tag);
    assert_eq!(c.cx, g.cx, "{}: CNOT", g.tag);
    assert_eq!(c.cz, g.cz, "{}: CZ", g.tag);
    assert_eq!(c.x, g.x, "{}: X", g.tag);
    assert_eq!(c.h, g.h, "{}: H", g.tag);
    assert_eq!(c.cphase, g.cphase, "{}: C-R", g.tag);
    assert_eq!(c.measure_z, g.mz, "{}: Z measurements", g.tag);
    assert_eq!(c.measure_x, g.mx, "{}: X measurements", g.tag);
    assert_eq!(c.reset, g.reset, "{}: resets", g.tag);
    assert_eq!(e.toffoli, g.etof, "{}: E[Toffoli]", g.tag);
    assert_eq!(e.cx, g.ecx, "{}: E[CNOT]", g.tag);
}

/// Shorthand: most rows have no rotations.
#[allow(clippy::too_many_arguments)]
fn row(
    tag: &'static str,
    q: usize,
    tof: u64,
    cx: u64,
    cz: u64,
    x: u64,
    h: u64,
    mz: u64,
    reset: u64,
    etof: f64,
    ecx: f64,
) -> Golden {
    Golden {
        tag,
        q,
        tof,
        cx,
        cz,
        x,
        h,
        cphase: 0,
        mz,
        mx: 0,
        reset,
        etof,
        ecx,
    }
}

#[test]
fn table2_plain_adders_golden() {
    // (kind, n, golden). Ancillas (Table 2's column) are derivable:
    // q − (2n+1) registers for |x⟩ and |y⟩ (the target is n+1 wide).
    let cases = [
        (
            AdderKind::Vbe,
            8,
            row("vbe8", 25, 30, 32, 0, 0, 0, 0, 0, 30.0, 32.0),
        ),
        (
            AdderKind::Cdkpm,
            8,
            row("cdkpm8", 18, 16, 33, 0, 0, 0, 0, 0, 16.0, 33.0),
        ),
        (
            AdderKind::Gidney,
            8,
            row("gidney8", 24, 8, 42, 7, 0, 7, 7, 7, 8.0, 42.0),
        ),
        (
            AdderKind::Vbe,
            16,
            row("vbe16", 49, 62, 64, 0, 0, 0, 0, 0, 62.0, 64.0),
        ),
        (
            AdderKind::Cdkpm,
            16,
            row("cdkpm16", 34, 32, 65, 0, 0, 0, 0, 0, 32.0, 65.0),
        ),
        (
            AdderKind::Gidney,
            16,
            row("gidney16", 48, 16, 90, 15, 0, 15, 15, 15, 16.0, 90.0),
        ),
        (
            AdderKind::Vbe,
            32,
            row("vbe32", 97, 126, 128, 0, 0, 0, 0, 0, 126.0, 128.0),
        ),
        (
            AdderKind::Cdkpm,
            32,
            row("cdkpm32", 66, 64, 129, 0, 0, 0, 0, 0, 64.0, 129.0),
        ),
        (
            AdderKind::Gidney,
            32,
            row("gidney32", 96, 32, 186, 31, 0, 31, 31, 31, 32.0, 186.0),
        ),
    ];
    for (kind, n, golden) in &cases {
        let adder = adders::plain_adder(*kind, *n).unwrap();
        check(&adder.circuit, golden);
        // Table 2 ancilla column: VBE uses n, CDKPM 1, Gidney n−1.
        let ancillas = adder.circuit.num_qubits() - (2 * n + 1);
        let expect = match kind {
            AdderKind::Vbe => *n,
            AdderKind::Cdkpm => 1,
            AdderKind::Gidney => n - 1,
            AdderKind::Draper => 0,
        };
        assert_eq!(ancillas, expect, "{}: ancillas", golden.tag);
    }
}

#[test]
fn table3_controlled_adders_golden() {
    let cases = [
        (
            AdderKind::Cdkpm,
            8,
            row("ctrl-cdkpm8", 19, 25, 32, 0, 0, 0, 0, 0, 25.0, 32.0),
        ),
        (
            AdderKind::Gidney,
            8,
            row("ctrl-gidney8", 26, 17, 42, 8, 0, 8, 8, 8, 17.0, 42.0),
        ),
        (
            AdderKind::Cdkpm,
            24,
            row("ctrl-cdkpm24", 51, 73, 96, 0, 0, 0, 0, 0, 73.0, 96.0),
        ),
        (
            AdderKind::Gidney,
            24,
            row("ctrl-gidney24", 74, 49, 138, 24, 0, 24, 24, 24, 49.0, 138.0),
        ),
    ];
    for (kind, n, golden) in &cases {
        check(
            &adders::controlled_adder(*kind, *n).unwrap().circuit,
            golden,
        );
    }
    // Draper's controlled adder trades everything for controlled rotations.
    for (n, golden) in [
        (
            8,
            Golden {
                tag: "ctrl-draper8",
                q: 19,
                tof: 8,
                cx: 0,
                cz: 8,
                x: 0,
                h: 26,
                cphase: 116,
                mz: 8,
                mx: 0,
                reset: 8,
                etof: 8.0,
                ecx: 0.0,
            },
        ),
        (
            24,
            Golden {
                tag: "ctrl-draper24",
                q: 51,
                tof: 24,
                cx: 0,
                cz: 24,
                x: 0,
                h: 74,
                cphase: 924,
                mz: 24,
                mx: 0,
                reset: 24,
                etof: 24.0,
                ecx: 0.0,
            },
        ),
    ] {
        check(
            &adders::controlled_adder(AdderKind::Draper, n)
                .unwrap()
                .circuit,
            &golden,
        );
    }
}

#[test]
fn table4_and_5_const_adders_golden() {
    let n = 16usize;
    let a = 0xBEEFu128 & ((1 << n) - 1); // |a| = 13 set bits
    let cases = [
        (
            AdderKind::Cdkpm,
            false,
            row("const-cdkpm", 34, 32, 65, 0, 26, 0, 0, 0, 32.0, 65.0),
        ),
        (
            AdderKind::Cdkpm,
            true,
            row("cconst-cdkpm", 35, 32, 91, 0, 0, 0, 0, 0, 32.0, 91.0),
        ),
        (
            AdderKind::Gidney,
            false,
            row("const-gidney", 48, 16, 90, 15, 26, 15, 15, 15, 16.0, 90.0),
        ),
        (
            AdderKind::Gidney,
            true,
            row("cconst-gidney", 49, 16, 116, 15, 0, 15, 15, 15, 16.0, 116.0),
        ),
    ];
    for (kind, controlled, golden) in &cases {
        let circuit = if *controlled {
            adders::controlled_const_adder(*kind, n, a).unwrap().circuit
        } else {
            adders::const_adder(*kind, n, a).unwrap().circuit
        };
        check(&circuit, golden);
    }
    // Table 5's "+2|a| CNOT" rule, exactly: 26 X loads become 26 CNOTs.
    let plain = adders::const_adder(AdderKind::Cdkpm, n, a)
        .unwrap()
        .circuit
        .counts();
    let ctrl = adders::controlled_const_adder(AdderKind::Cdkpm, n, a)
        .unwrap()
        .circuit
        .counts();
    assert_eq!(ctrl.cx - plain.cx, 26);
    assert_eq!(plain.x, 26);
    assert_eq!(ctrl.x, 0);
}

#[test]
fn table6_comparators_golden() {
    let cases = [
        (
            AdderKind::Cdkpm,
            8,
            row("cmp-cdkpm8", 18, 16, 33, 0, 16, 0, 0, 0, 16.0, 33.0),
        ),
        (
            AdderKind::Gidney,
            8,
            row("cmp-gidney8", 25, 8, 43, 8, 16, 8, 8, 8, 8.0, 43.0),
        ),
        (
            AdderKind::Cdkpm,
            32,
            row("cmp-cdkpm32", 66, 64, 129, 0, 64, 0, 0, 0, 64.0, 129.0),
        ),
        (
            AdderKind::Gidney,
            32,
            row("cmp-gidney32", 97, 32, 187, 32, 64, 32, 32, 32, 32.0, 187.0),
        ),
    ];
    for (kind, n, golden) in &cases {
        check(&compare::comparator(*kind, *n).unwrap().circuit, golden);
    }
}

#[test]
fn table1_modular_adders_golden() {
    // The headline table at n = 16, p = 65521 (|p| = 13): every VBE-family
    // architecture, with and without MBU. The expected Toffoli golden is
    // the quantity the paper's "in expectation" column reports; pinning it
    // exactly protects both the constructions and the ½-per-conditional
    // weighting in `ExpectedCounts`.
    let n = 16usize;
    let p = 65521u128;
    type SpecFn = fn(Uncompute) -> ModAddSpec;
    let cases: [(&str, SpecFn, [Golden; 2]); 5] = [
        (
            "vbe5",
            ModAddSpec::vbe5,
            [
                row("vbe5", 68, 316, 319, 0, 61, 0, 0, 0, 316.0, 319.0),
                row("vbe5-mbu", 68, 316, 319, 0, 62, 3, 1, 0, 254.0, 254.5),
            ],
        ),
        (
            "vbe4",
            ModAddSpec::vbe4,
            [
                row("vbe4", 68, 254, 222, 0, 93, 0, 0, 0, 254.0, 222.0),
                row("vbe4-mbu", 68, 254, 222, 0, 94, 3, 1, 0, 223.0, 206.0),
            ],
        ),
        (
            "cdkpm",
            ModAddSpec::cdkpm,
            [
                row("cdkpm", 52, 132, 293, 0, 93, 0, 0, 0, 132.0, 293.0),
                row("cdkpm-mbu", 52, 132, 293, 0, 94, 3, 1, 0, 116.0, 260.5),
            ],
        ),
        (
            "gidney",
            ModAddSpec::gidney,
            [
                row("gidney", 68, 65, 397, 64, 93, 64, 64, 64, 65.0, 397.0),
                row("gidney-mbu", 68, 65, 397, 64, 94, 67, 65, 64, 57.0, 351.5),
            ],
        ),
        (
            "hybrid",
            ModAddSpec::gidney_cdkpm,
            [
                row("hybrid", 52, 100, 344, 31, 93, 31, 31, 31, 100.0, 344.0),
                row("hybrid-mbu", 52, 100, 344, 31, 94, 34, 32, 31, 92.0, 298.5),
            ],
        ),
    ];
    for (_, spec, goldens) in &cases {
        for (unc, golden) in [Uncompute::Unitary, Uncompute::Mbu].iter().zip(goldens) {
            let layout = modular::modadd_circuit(&spec(*unc), n, p).unwrap();
            check(&layout.circuit, golden);
        }
    }
}

/// The MBU rows above encode an H count of `unitary + 3` and exactly one
/// extra Z-measurement: Lemma 4.1's flag measurement. Assert the deltas
/// directly so the structural claim survives re-pinning of absolute values.
#[test]
fn table1_mbu_structural_deltas() {
    let n = 16usize;
    let p = 65521u128;
    type SpecFn = fn(Uncompute) -> ModAddSpec;
    let specs: [(&str, SpecFn); 5] = [
        ("vbe5", ModAddSpec::vbe5),
        ("vbe4", ModAddSpec::vbe4),
        ("cdkpm", ModAddSpec::cdkpm),
        ("gidney", ModAddSpec::gidney),
        ("hybrid", ModAddSpec::gidney_cdkpm),
    ];
    for (name, spec) in specs {
        let plain = modular::modadd_circuit(&spec(Uncompute::Unitary), n, p)
            .unwrap()
            .circuit;
        let mbu = modular::modadd_circuit(&spec(Uncompute::Mbu), n, p)
            .unwrap()
            .circuit;
        let (pc, mc) = (plain.counts(), mbu.counts());
        assert_eq!(mc.h, pc.h + 3, "{name}: MBU adds 3 H (basis changes)");
        assert_eq!(
            mc.measurements(),
            pc.measurements() + 1,
            "{name}: MBU adds the flag measurement"
        );
        assert_eq!(mc.x, pc.x + 1, "{name}: MBU adds the flag-reset X");
        // Worst-case Toffolis match; the saving is in expectation.
        assert_eq!(mc.toffoli, pc.toffoli, "{name}: worst case unchanged");
        assert!(
            mbu.expected_counts().toffoli < plain.expected_counts().toffoli,
            "{name}: expected Toffolis must drop under MBU"
        );
    }
}

/// The branch-tree engine's exact mode must *reproduce* the pinned
/// "in expectation" goldens by direct simulation: walking every
/// measurement history once (no RNG is consumed — the API takes none) and
/// weighting executed counts by branch probability gives exactly the
/// analytic `expected_counts` that `table1_modular_adders_golden` pins
/// (E[Toffoli] = 254, 223, 116 for the VBE-family architectures).
///
/// Gidney-style rows fork once per AND measurement — their trees are
/// legitimately exponential and covered by the Monte-Carlo fallback — so
/// this golden runs the single-flag architectures, on the basis tracker
/// at the table's full n = 16 width.
#[test]
fn table1_expected_counts_reproduced_by_branch_tree_exact_mode() {
    use mbu_sim::{BasisTracker, BranchEnsemble, Simulator};

    let n = 16usize;
    let p = 65521u128;
    type SpecFn = fn(Uncompute) -> ModAddSpec;
    let specs: [(&str, SpecFn, f64, f64); 3] = [
        ("vbe5", ModAddSpec::vbe5, 254.0, 254.5),
        ("vbe4", ModAddSpec::vbe4, 223.0, 206.0),
        ("cdkpm", ModAddSpec::cdkpm, 116.0, 260.5),
    ];
    for (name, spec, etof, ecx) in specs {
        let layout = modular::modadd_circuit(&spec(Uncompute::Mbu), n, p).unwrap();
        let nq = layout.circuit.num_qubits();
        let x = layout.x.qubits().to_vec();
        let y = layout.y.qubits().to_vec();
        let dist = BranchEnsemble::new(0)
            .distribution(&layout.circuit, move || {
                let mut sim = BasisTracker::zeros(nq);
                sim.set_value(&x, 7).unwrap();
                sim.set_value(&y, 9).unwrap();
                Box::new(sim) as Box<dyn Simulator + Send>
            })
            .unwrap();
        // One MBU flag measurement: a two-leaf tree, no pruning, weights
        // exactly ½ — the weighted mean is a dyadic sum and matches the
        // pinned golden with `==`, like every other expectation here.
        assert_eq!(dist.fork_nodes(), 1, "{name}: the flag is the only fork");
        assert_eq!(dist.num_leaves(), 2, "{name}");
        assert_eq!(dist.pruned_mass(), 0.0, "{name}");
        let exact = dist.mean_counts();
        assert_eq!(exact.toffoli, etof, "{name}: exact-mode E[Toffoli]");
        assert_eq!(exact.cx, ecx, "{name}: exact-mode E[CNOT]");
        assert_eq!(
            exact.toffoli,
            layout.circuit.expected_counts().toffoli,
            "{name}: simulation agrees with the analytic weighting"
        );
    }
}

#[test]
fn beauregard_draper_golden() {
    // Prop 3.7 structure at n ∈ {4, 8}: pure QFT arithmetic — no Toffolis,
    // 2 CNOTs, 6(n+1) H from 3 QFT + 3 IQFT, and the C-R rotation budget.
    for (n, unitary, mbu) in [
        (
            4usize,
            Golden {
                tag: "beauregard4",
                q: 10,
                tof: 0,
                cx: 2,
                cz: 0,
                x: 2,
                h: 30,
                cphase: 107,
                mz: 0,
                mx: 0,
                reset: 0,
                etof: 0.0,
                ecx: 2.0,
            },
            Golden {
                tag: "beauregard4-mbu",
                q: 10,
                tof: 0,
                cx: 2,
                cz: 0,
                x: 3,
                h: 43,
                cphase: 127,
                mz: 1,
                mx: 0,
                reset: 0,
                etof: 0.0,
                ecx: 1.5,
            },
        ),
        (
            8,
            Golden {
                tag: "beauregard8",
                q: 18,
                tof: 0,
                cx: 2,
                cz: 0,
                x: 2,
                h: 54,
                cphase: 357,
                mz: 0,
                mx: 0,
                reset: 0,
                etof: 0.0,
                ecx: 2.0,
            },
            Golden {
                tag: "beauregard8-mbu",
                q: 18,
                tof: 0,
                cx: 2,
                cz: 0,
                x: 3,
                h: 75,
                cphase: 429,
                mz: 1,
                mx: 0,
                reset: 0,
                etof: 0.0,
                ecx: 1.5,
            },
        ),
    ] {
        let p = (1u128 << n) - 1;
        let u = modular::beauregard::modadd_circuit(Uncompute::Unitary, n, p).unwrap();
        check(&u.circuit, &unitary);
        assert_eq!(u.circuit.num_qubits(), 2 * n + 2, "Table 1: 2n+2 qubits");
        let m = modular::beauregard::modadd_circuit(Uncompute::Mbu, n, p).unwrap();
        check(&m.circuit, &mbu);
    }
}

/// Table 1 at benchmark scale: exact fingerprints of every MBU
/// architecture at n = 64, 256 and 1024. These are the widths the sparse
/// backend simulates functionally (below); pinning the constructions at
/// the same sizes ties the resource table and the simulation together.
#[test]
fn table1_mbu_counts_at_scale_golden() {
    type SpecFn = fn(Uncompute) -> ModAddSpec;
    type Case = (SpecFn, usize, Golden);
    #[rustfmt::skip]
    let cases: [Case; 15] = [
        (ModAddSpec::vbe5, 64,
         row("vbe5-64", 260, 1276, 1277, 0, 252, 3, 1, 0, 1022.0, 1020.5)),
        (ModAddSpec::vbe4, 64,
         row("vbe4-64", 260, 1022, 892, 0, 380, 3, 1, 0, 895.0, 828.0)),
        (ModAddSpec::cdkpm, 64,
         row("cdkpm-64", 196, 516, 1155, 0, 380, 3, 1, 0, 452.0, 1026.5)),
        (ModAddSpec::gidney, 64,
         Golden { tag: "gidney-64", q: 260, tof: 257, cx: 1643, cz: 256,
                  x: 380, h: 259, cphase: 0, mz: 257, mx: 0, reset: 256,
                  etof: 225.0, ecx: 1453.5 }),
        (ModAddSpec::gidney_cdkpm, 64,
         Golden { tag: "hybrid-64", q: 196, tof: 388, cx: 1398, cz: 127,
                  x: 380, h: 130, cphase: 0, mz: 128, mx: 0, reset: 127,
                  etof: 356.0, ecx: 1208.5 }),
        (ModAddSpec::vbe5, 256,
         row("vbe5-256", 1028, 5116, 4867, 0, 770, 3, 1, 0, 4094.0, 3842.5)),
        (ModAddSpec::vbe4, 256,
         row("vbe4-256", 1028, 4094, 3330, 0, 1282, 3, 1, 0, 3583.0, 3074.0)),
        (ModAddSpec::cdkpm, 256,
         row("cdkpm-256", 772, 2052, 4361, 0, 1282, 3, 1, 0, 1796.0, 3848.5)),
        (ModAddSpec::gidney, 256,
         Golden { tag: "gidney-256", q: 1028, tof: 1025, cx: 6385, cz: 1024,
                  x: 1282, h: 1027, cphase: 0, mz: 1025, mx: 0, reset: 1024,
                  etof: 897.0, ecx: 5619.5 }),
        (ModAddSpec::gidney_cdkpm, 256,
         Golden { tag: "hybrid-256", q: 772, tof: 1540, cx: 5372, cz: 511,
                  x: 1282, h: 514, cphase: 0, mz: 512, mx: 0, reset: 511,
                  etof: 1412.0, ecx: 4606.5 }),
        (ModAddSpec::vbe5, 1024,
         row("vbe5-1024", 4100, 20476, 18691, 0, 2306, 3, 1, 0, 16382.0, 14594.5)),
        (ModAddSpec::vbe4, 1024,
         row("vbe4-1024", 4100, 16382, 12546, 0, 4354, 3, 1, 0, 14335.0, 11522.0)),
        (ModAddSpec::cdkpm, 1024,
         row("cdkpm-1024", 3076, 8196, 16649, 0, 4354, 3, 1, 0, 7172.0, 14600.5)),
        (ModAddSpec::gidney, 1024,
         Golden { tag: "gidney-1024", q: 4100, tof: 4097, cx: 24817, cz: 4096,
                  x: 4354, h: 4099, cphase: 0, mz: 4097, mx: 0, reset: 4096,
                  etof: 3585.0, ecx: 21747.5 }),
        (ModAddSpec::gidney_cdkpm, 1024,
         Golden { tag: "hybrid-1024", q: 3076, tof: 6148, cx: 20732, cz: 2047,
                  x: 4354, h: 2050, cphase: 0, mz: 2048, mx: 0, reset: 2047,
                  etof: 5636.0, ecx: 17662.5 }),
    ];
    for (spec, n, golden) in &cases {
        let p = mbu_bench::benchmark_modulus(*n);
        let layout = modular::modadd_circuit(&spec(Uncompute::Mbu), *n, p).unwrap();
        check(&layout.circuit, golden);
    }
}

/// The QFT-arithmetic rows of Table 1 at benchmark scale: exact
/// fingerprints of the Beauregard modular adder at n = 256 and 1024 —
/// the widths the phase backend simulates end-to-end below. The rotation
/// budget is the story: millions of controlled phase rotations and not a
/// single Toffoli, which is why these rows are unreachable for the dense
/// engine and exponential for the sparse map, but O(occupied) bookkeeping
/// for the phase accumulator.
#[test]
fn beauregard_counts_at_scale_golden() {
    for (n, unitary, mbu) in [
        (
            256usize,
            Golden {
                tag: "beauregard256",
                q: 514,
                tof: 0,
                cx: 2,
                cz: 0,
                x: 2,
                h: 1542,
                cphase: 313_343,
                mz: 0,
                mx: 0,
                reset: 0,
                etof: 0.0,
                ecx: 2.0,
            },
            Golden {
                tag: "beauregard256-mbu",
                q: 514,
                tof: 0,
                cx: 2,
                cz: 0,
                x: 3,
                h: 2059,
                cphase: 379_135,
                mz: 1,
                mx: 0,
                reset: 0,
                etof: 0.0,
                ecx: 1.5,
            },
        ),
        (
            1024,
            Golden {
                tag: "beauregard1024",
                q: 2050,
                tof: 0,
                cx: 2,
                cz: 0,
                x: 2,
                h: 6150,
                cphase: 4_840_319,
                mz: 0,
                mx: 0,
                reset: 0,
                etof: 0.0,
                ecx: 2.0,
            },
            Golden {
                tag: "beauregard1024-mbu",
                q: 2050,
                tof: 0,
                cx: 2,
                cz: 0,
                x: 3,
                h: 8203,
                cphase: 5_889_919,
                mz: 1,
                mx: 0,
                reset: 0,
                etof: 0.0,
                ecx: 1.5,
            },
        ),
    ] {
        let p = mbu_bench::benchmark_modulus(n);
        let u = modular::beauregard::modadd_circuit(Uncompute::Unitary, n, p).unwrap();
        check(&u.circuit, &unitary);
        assert_eq!(u.circuit.num_qubits(), 2 * n + 2, "Table 1: 2n+2 qubits");
        let m = modular::beauregard::modadd_circuit(Uncompute::Mbu, n, p).unwrap();
        check(&m.circuit, &mbu);
    }
}

/// And the phase backend *runs* those circuits. The Draper wrapping adder
/// at n = 1024 (2048 qubits, ~1.6M controlled rotations) and the
/// Beauregard MBU modular adder at n = 256 and 1024 execute end-to-end on
/// [`PhaseAccumulator`] and reproduce the exact sums bit for bit, with the
/// occupied-branch peak pinned at 1–2: the QFT interior is pure dyadic
/// phase bookkeeping, so occupancy never grows at all. (The circuits run
/// interpreted — at these instruction counts the compile passes, not the
/// simulation, would dominate a debug-profile test run.)
#[test]
fn draper_beauregard_functional_at_scale_on_phase() {
    use mbu_arith::adders::draper;
    use mbu_circuit::CircuitBuilder;
    use mbu_sim::{PhaseAccumulator, Simulator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    // Draper wrapping add, n = 1024: |x⟩|y⟩ → |x⟩|(x + y) mod 2^1024⟩.
    let n = 1024usize;
    let mut b = CircuitBuilder::new();
    let x = b.qreg("x", n);
    let y = b.qreg("y", n);
    draper::wrapping_add(&mut b, x.qubits(), y.qubits()).unwrap();
    let circuit = b.finish();
    let c = circuit.counts();
    assert_eq!(circuit.num_qubits(), 2048, "draper-wrap-1024: qubits");
    assert_eq!(c.h, 2048, "draper-wrap-1024: H (QFT + IQFT)");
    assert_eq!(c.cphase, 1_572_352, "draper-wrap-1024: C-R rotations");
    assert_eq!(c.toffoli, 0, "draper-wrap-1024: no Toffolis at all");
    let xv = (1u128 << 127) - 5;
    let yv = (1u128 << 126) + 3;
    let mut sim = PhaseAccumulator::zeros(circuit.num_qubits()).unwrap();
    sim.set_value(x.qubits(), xv).unwrap();
    sim.set_value(y.qubits(), yv).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    Simulator::run(&mut sim, &circuit, &mut rng).unwrap();
    let want = xv + yv; // both < 2^127: no wrap in a 1024-bit register
    for (i, q) in y.qubits().iter().enumerate() {
        let w = i < 128 && (want >> i) & 1 == 1;
        assert_eq!(sim.bit(*q).unwrap(), w, "draper-wrap-1024: sum bit {i}");
    }
    assert_eq!(sim.occupied(), 1, "draper-wrap-1024: basis in, basis out");
    assert_eq!(
        sim.occupancy_peak(),
        Some(1),
        "draper-wrap-1024: no fan-out"
    );

    // Beauregard MBU modular adder at n = 256 and 1024.
    for n in [256usize, 1024] {
        let p = mbu_bench::benchmark_modulus(n);
        let xv = p - 1;
        let yv = p / 2 + 1;
        let layout = modular::beauregard::modadd_circuit(Uncompute::Mbu, n, p).unwrap();
        let mut sim = PhaseAccumulator::zeros(layout.circuit.num_qubits()).unwrap();
        sim.set_value(layout.x.qubits(), xv).unwrap();
        sim.set_value(layout.y.qubits(), yv).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        Simulator::run(&mut sim, &layout.circuit, &mut rng).unwrap();
        let sum = (xv + yv) % p;
        for (i, q) in layout.x.qubits().iter().enumerate() {
            let w = i < 128 && (xv >> i) & 1 == 1;
            assert_eq!(sim.bit(*q).unwrap(), w, "beauregard-{n}: x bit {i}");
        }
        for (i, q) in layout.y.qubits().iter().enumerate() {
            let w = i < 128 && (sum >> i) & 1 == 1;
            assert_eq!(sim.bit(*q).unwrap(), w, "beauregard-{n}: sum bit {i}");
        }
        assert_eq!(
            sim.occupied(),
            1,
            "beauregard-{n}: MBU leaves a basis state"
        );
        assert_eq!(
            sim.occupancy_peak(),
            Some(2),
            "beauregard-{n}: the MBU flag is the only fan-out"
        );
    }
}

/// The counts above are not just structural claims: the sparse backend
/// *runs* the Table-1 circuits at n = 64, 256 and 1024 and reproduces the
/// paper's modular sum bit for bit. A dense statevector at these widths
/// would need 2^196 … 2^3076 amplitudes; the sparse map's occupancy
/// high-water mark stays in single digits, because a modular adder only
/// ever fans out at the handful of MBU/AND measurements in flight.
#[test]
fn table1_functional_at_scale_on_sparse() {
    use mbu_circuit::CompiledCircuit;
    use mbu_sim::{Simulator, SparseVector};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    type SpecFn = fn(Uncompute) -> ModAddSpec;
    // (architecture, n, pinned occupancy peak for seed 7).
    let runs: [(&'static str, SpecFn, usize, u64); 8] = [
        ("vbe5", ModAddSpec::vbe5, 64, 2),
        ("vbe4", ModAddSpec::vbe4, 64, 2),
        ("cdkpm", ModAddSpec::cdkpm, 64, 2),
        ("gidney", ModAddSpec::gidney, 64, 4),
        ("hybrid", ModAddSpec::gidney_cdkpm, 64, 2),
        ("cdkpm", ModAddSpec::cdkpm, 256, 2),
        ("gidney", ModAddSpec::gidney, 256, 4),
        ("cdkpm", ModAddSpec::cdkpm, 1024, 2),
    ];
    for (name, spec, n, peak) in runs {
        let p = mbu_bench::benchmark_modulus(n);
        let x = p - 1;
        let y = p / 2 + 1;
        let layout = modular::modadd_circuit(&spec(Uncompute::Mbu), n, p).unwrap();
        let nq = layout.circuit.num_qubits();
        let compiled = CompiledCircuit::compile(&layout.circuit).unwrap();

        let mut sp = SparseVector::zeros(nq).unwrap();
        sp.set_value(layout.x.qubits(), x).unwrap();
        sp.set_value(layout.y.qubits(), y).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        sp.run_compiled(&compiled, &mut rng).unwrap();

        // |x⟩|y⟩ → |x⟩|(x + y) mod p⟩, read bit by bit — the registers
        // are wider than any native integer.
        let sum = (x + y) % p;
        for (i, q) in layout.x.qubits().iter().enumerate() {
            let want = i < 128 && (x >> i) & 1 == 1;
            assert_eq!(sp.bit(*q).unwrap(), want, "{name} n={n}: x bit {i}");
        }
        for (i, q) in layout.y.qubits().iter().enumerate() {
            let want = i < 128 && (sum >> i) & 1 == 1;
            assert_eq!(sp.bit(*q).unwrap(), want, "{name} n={n}: sum bit {i}");
        }
        // MBU leaves no superposition behind, and the in-flight peak is
        // the paper's headline: hundreds of qubits, single-digit states.
        assert_eq!(sp.occupied(), 1, "{name} n={n}");
        assert_eq!(sp.peak_amplitudes(), Some(peak), "{name} n={n}");
    }
}
