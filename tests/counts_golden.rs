//! Golden resource counts for the paper's Tables 1–6.
//!
//! Unlike `counts_vs_paper.rs` — which compares measured counts against the
//! paper's *printed formulas* with the slack policy of EXPERIMENTS.md —
//! this suite pins the **exact** counts our constructed circuits produce at
//! fixed sizes. The formulas tolerate small constant drift; these goldens
//! do not: any change to the construction code (`adders`, `compare`,
//! `modular`, `counts.rs`, `resources.rs`) that shifts a single gate fails
//! loudly here and must be acknowledged by re-pinning the value.
//!
//! Every expected-count golden (`etof`, `ecx`) is a finite sum of
//! `k / 2^level` terms, exactly representable in an `f64`, so `assert_eq!`
//! on floats is sound.

use mbu_arith::{
    adders, compare,
    modular::{self, ModAddSpec},
    AdderKind, Uncompute,
};
use mbu_circuit::Circuit;

/// One pinned row: the exact fingerprint of a constructed circuit.
struct Golden {
    tag: &'static str,
    q: usize,
    tof: u64,
    cx: u64,
    cz: u64,
    x: u64,
    h: u64,
    cphase: u64,
    mz: u64,
    mx: u64,
    reset: u64,
    etof: f64,
    ecx: f64,
}

fn check(circuit: &Circuit, g: &Golden) {
    let c = circuit.counts();
    let e = circuit.expected_counts();
    assert_eq!(circuit.num_qubits(), g.q, "{}: logical qubits", g.tag);
    assert_eq!(c.toffoli, g.tof, "{}: Toffoli", g.tag);
    assert_eq!(c.cx, g.cx, "{}: CNOT", g.tag);
    assert_eq!(c.cz, g.cz, "{}: CZ", g.tag);
    assert_eq!(c.x, g.x, "{}: X", g.tag);
    assert_eq!(c.h, g.h, "{}: H", g.tag);
    assert_eq!(c.cphase, g.cphase, "{}: C-R", g.tag);
    assert_eq!(c.measure_z, g.mz, "{}: Z measurements", g.tag);
    assert_eq!(c.measure_x, g.mx, "{}: X measurements", g.tag);
    assert_eq!(c.reset, g.reset, "{}: resets", g.tag);
    assert_eq!(e.toffoli, g.etof, "{}: E[Toffoli]", g.tag);
    assert_eq!(e.cx, g.ecx, "{}: E[CNOT]", g.tag);
}

/// Shorthand: most rows have no rotations.
#[allow(clippy::too_many_arguments)]
fn row(
    tag: &'static str,
    q: usize,
    tof: u64,
    cx: u64,
    cz: u64,
    x: u64,
    h: u64,
    mz: u64,
    reset: u64,
    etof: f64,
    ecx: f64,
) -> Golden {
    Golden {
        tag,
        q,
        tof,
        cx,
        cz,
        x,
        h,
        cphase: 0,
        mz,
        mx: 0,
        reset,
        etof,
        ecx,
    }
}

#[test]
fn table2_plain_adders_golden() {
    // (kind, n, golden). Ancillas (Table 2's column) are derivable:
    // q − (2n+1) registers for |x⟩ and |y⟩ (the target is n+1 wide).
    let cases = [
        (
            AdderKind::Vbe,
            8,
            row("vbe8", 25, 30, 32, 0, 0, 0, 0, 0, 30.0, 32.0),
        ),
        (
            AdderKind::Cdkpm,
            8,
            row("cdkpm8", 18, 16, 33, 0, 0, 0, 0, 0, 16.0, 33.0),
        ),
        (
            AdderKind::Gidney,
            8,
            row("gidney8", 24, 8, 42, 7, 0, 7, 7, 7, 8.0, 42.0),
        ),
        (
            AdderKind::Vbe,
            16,
            row("vbe16", 49, 62, 64, 0, 0, 0, 0, 0, 62.0, 64.0),
        ),
        (
            AdderKind::Cdkpm,
            16,
            row("cdkpm16", 34, 32, 65, 0, 0, 0, 0, 0, 32.0, 65.0),
        ),
        (
            AdderKind::Gidney,
            16,
            row("gidney16", 48, 16, 90, 15, 0, 15, 15, 15, 16.0, 90.0),
        ),
        (
            AdderKind::Vbe,
            32,
            row("vbe32", 97, 126, 128, 0, 0, 0, 0, 0, 126.0, 128.0),
        ),
        (
            AdderKind::Cdkpm,
            32,
            row("cdkpm32", 66, 64, 129, 0, 0, 0, 0, 0, 64.0, 129.0),
        ),
        (
            AdderKind::Gidney,
            32,
            row("gidney32", 96, 32, 186, 31, 0, 31, 31, 31, 32.0, 186.0),
        ),
    ];
    for (kind, n, golden) in &cases {
        let adder = adders::plain_adder(*kind, *n).unwrap();
        check(&adder.circuit, golden);
        // Table 2 ancilla column: VBE uses n, CDKPM 1, Gidney n−1.
        let ancillas = adder.circuit.num_qubits() - (2 * n + 1);
        let expect = match kind {
            AdderKind::Vbe => *n,
            AdderKind::Cdkpm => 1,
            AdderKind::Gidney => n - 1,
            AdderKind::Draper => 0,
        };
        assert_eq!(ancillas, expect, "{}: ancillas", golden.tag);
    }
}

#[test]
fn table3_controlled_adders_golden() {
    let cases = [
        (
            AdderKind::Cdkpm,
            8,
            row("ctrl-cdkpm8", 19, 25, 32, 0, 0, 0, 0, 0, 25.0, 32.0),
        ),
        (
            AdderKind::Gidney,
            8,
            row("ctrl-gidney8", 26, 17, 42, 8, 0, 8, 8, 8, 17.0, 42.0),
        ),
        (
            AdderKind::Cdkpm,
            24,
            row("ctrl-cdkpm24", 51, 73, 96, 0, 0, 0, 0, 0, 73.0, 96.0),
        ),
        (
            AdderKind::Gidney,
            24,
            row("ctrl-gidney24", 74, 49, 138, 24, 0, 24, 24, 24, 49.0, 138.0),
        ),
    ];
    for (kind, n, golden) in &cases {
        check(
            &adders::controlled_adder(*kind, *n).unwrap().circuit,
            golden,
        );
    }
    // Draper's controlled adder trades everything for controlled rotations.
    for (n, golden) in [
        (
            8,
            Golden {
                tag: "ctrl-draper8",
                q: 19,
                tof: 8,
                cx: 0,
                cz: 8,
                x: 0,
                h: 26,
                cphase: 116,
                mz: 8,
                mx: 0,
                reset: 8,
                etof: 8.0,
                ecx: 0.0,
            },
        ),
        (
            24,
            Golden {
                tag: "ctrl-draper24",
                q: 51,
                tof: 24,
                cx: 0,
                cz: 24,
                x: 0,
                h: 74,
                cphase: 924,
                mz: 24,
                mx: 0,
                reset: 24,
                etof: 24.0,
                ecx: 0.0,
            },
        ),
    ] {
        check(
            &adders::controlled_adder(AdderKind::Draper, n)
                .unwrap()
                .circuit,
            &golden,
        );
    }
}

#[test]
fn table4_and_5_const_adders_golden() {
    let n = 16usize;
    let a = 0xBEEFu128 & ((1 << n) - 1); // |a| = 13 set bits
    let cases = [
        (
            AdderKind::Cdkpm,
            false,
            row("const-cdkpm", 34, 32, 65, 0, 26, 0, 0, 0, 32.0, 65.0),
        ),
        (
            AdderKind::Cdkpm,
            true,
            row("cconst-cdkpm", 35, 32, 91, 0, 0, 0, 0, 0, 32.0, 91.0),
        ),
        (
            AdderKind::Gidney,
            false,
            row("const-gidney", 48, 16, 90, 15, 26, 15, 15, 15, 16.0, 90.0),
        ),
        (
            AdderKind::Gidney,
            true,
            row("cconst-gidney", 49, 16, 116, 15, 0, 15, 15, 15, 16.0, 116.0),
        ),
    ];
    for (kind, controlled, golden) in &cases {
        let circuit = if *controlled {
            adders::controlled_const_adder(*kind, n, a).unwrap().circuit
        } else {
            adders::const_adder(*kind, n, a).unwrap().circuit
        };
        check(&circuit, golden);
    }
    // Table 5's "+2|a| CNOT" rule, exactly: 26 X loads become 26 CNOTs.
    let plain = adders::const_adder(AdderKind::Cdkpm, n, a)
        .unwrap()
        .circuit
        .counts();
    let ctrl = adders::controlled_const_adder(AdderKind::Cdkpm, n, a)
        .unwrap()
        .circuit
        .counts();
    assert_eq!(ctrl.cx - plain.cx, 26);
    assert_eq!(plain.x, 26);
    assert_eq!(ctrl.x, 0);
}

#[test]
fn table6_comparators_golden() {
    let cases = [
        (
            AdderKind::Cdkpm,
            8,
            row("cmp-cdkpm8", 18, 16, 33, 0, 16, 0, 0, 0, 16.0, 33.0),
        ),
        (
            AdderKind::Gidney,
            8,
            row("cmp-gidney8", 25, 8, 43, 8, 16, 8, 8, 8, 8.0, 43.0),
        ),
        (
            AdderKind::Cdkpm,
            32,
            row("cmp-cdkpm32", 66, 64, 129, 0, 64, 0, 0, 0, 64.0, 129.0),
        ),
        (
            AdderKind::Gidney,
            32,
            row("cmp-gidney32", 97, 32, 187, 32, 64, 32, 32, 32, 32.0, 187.0),
        ),
    ];
    for (kind, n, golden) in &cases {
        check(&compare::comparator(*kind, *n).unwrap().circuit, golden);
    }
}

#[test]
fn table1_modular_adders_golden() {
    // The headline table at n = 16, p = 65521 (|p| = 13): every VBE-family
    // architecture, with and without MBU. The expected Toffoli golden is
    // the quantity the paper's "in expectation" column reports; pinning it
    // exactly protects both the constructions and the ½-per-conditional
    // weighting in `ExpectedCounts`.
    let n = 16usize;
    let p = 65521u128;
    type SpecFn = fn(Uncompute) -> ModAddSpec;
    let cases: [(&str, SpecFn, [Golden; 2]); 5] = [
        (
            "vbe5",
            ModAddSpec::vbe5,
            [
                row("vbe5", 68, 316, 319, 0, 61, 0, 0, 0, 316.0, 319.0),
                row("vbe5-mbu", 68, 316, 319, 0, 62, 3, 1, 0, 254.0, 254.5),
            ],
        ),
        (
            "vbe4",
            ModAddSpec::vbe4,
            [
                row("vbe4", 68, 254, 222, 0, 93, 0, 0, 0, 254.0, 222.0),
                row("vbe4-mbu", 68, 254, 222, 0, 94, 3, 1, 0, 223.0, 206.0),
            ],
        ),
        (
            "cdkpm",
            ModAddSpec::cdkpm,
            [
                row("cdkpm", 52, 132, 293, 0, 93, 0, 0, 0, 132.0, 293.0),
                row("cdkpm-mbu", 52, 132, 293, 0, 94, 3, 1, 0, 116.0, 260.5),
            ],
        ),
        (
            "gidney",
            ModAddSpec::gidney,
            [
                row("gidney", 68, 65, 397, 64, 93, 64, 64, 64, 65.0, 397.0),
                row("gidney-mbu", 68, 65, 397, 64, 94, 67, 65, 64, 57.0, 351.5),
            ],
        ),
        (
            "hybrid",
            ModAddSpec::gidney_cdkpm,
            [
                row("hybrid", 52, 100, 344, 31, 93, 31, 31, 31, 100.0, 344.0),
                row("hybrid-mbu", 52, 100, 344, 31, 94, 34, 32, 31, 92.0, 298.5),
            ],
        ),
    ];
    for (_, spec, goldens) in &cases {
        for (unc, golden) in [Uncompute::Unitary, Uncompute::Mbu].iter().zip(goldens) {
            let layout = modular::modadd_circuit(&spec(*unc), n, p).unwrap();
            check(&layout.circuit, golden);
        }
    }
}

/// The MBU rows above encode an H count of `unitary + 3` and exactly one
/// extra Z-measurement: Lemma 4.1's flag measurement. Assert the deltas
/// directly so the structural claim survives re-pinning of absolute values.
#[test]
fn table1_mbu_structural_deltas() {
    let n = 16usize;
    let p = 65521u128;
    type SpecFn = fn(Uncompute) -> ModAddSpec;
    let specs: [(&str, SpecFn); 5] = [
        ("vbe5", ModAddSpec::vbe5),
        ("vbe4", ModAddSpec::vbe4),
        ("cdkpm", ModAddSpec::cdkpm),
        ("gidney", ModAddSpec::gidney),
        ("hybrid", ModAddSpec::gidney_cdkpm),
    ];
    for (name, spec) in specs {
        let plain = modular::modadd_circuit(&spec(Uncompute::Unitary), n, p)
            .unwrap()
            .circuit;
        let mbu = modular::modadd_circuit(&spec(Uncompute::Mbu), n, p)
            .unwrap()
            .circuit;
        let (pc, mc) = (plain.counts(), mbu.counts());
        assert_eq!(mc.h, pc.h + 3, "{name}: MBU adds 3 H (basis changes)");
        assert_eq!(
            mc.measurements(),
            pc.measurements() + 1,
            "{name}: MBU adds the flag measurement"
        );
        assert_eq!(mc.x, pc.x + 1, "{name}: MBU adds the flag-reset X");
        // Worst-case Toffolis match; the saving is in expectation.
        assert_eq!(mc.toffoli, pc.toffoli, "{name}: worst case unchanged");
        assert!(
            mbu.expected_counts().toffoli < plain.expected_counts().toffoli,
            "{name}: expected Toffolis must drop under MBU"
        );
    }
}

/// The branch-tree engine's exact mode must *reproduce* the pinned
/// "in expectation" goldens by direct simulation: walking every
/// measurement history once (no RNG is consumed — the API takes none) and
/// weighting executed counts by branch probability gives exactly the
/// analytic `expected_counts` that `table1_modular_adders_golden` pins
/// (E[Toffoli] = 254, 223, 116 for the VBE-family architectures).
///
/// Gidney-style rows fork once per AND measurement — their trees are
/// legitimately exponential and covered by the Monte-Carlo fallback — so
/// this golden runs the single-flag architectures, on the basis tracker
/// at the table's full n = 16 width.
#[test]
fn table1_expected_counts_reproduced_by_branch_tree_exact_mode() {
    use mbu_sim::{BasisTracker, BranchEnsemble, Simulator};

    let n = 16usize;
    let p = 65521u128;
    type SpecFn = fn(Uncompute) -> ModAddSpec;
    let specs: [(&str, SpecFn, f64, f64); 3] = [
        ("vbe5", ModAddSpec::vbe5, 254.0, 254.5),
        ("vbe4", ModAddSpec::vbe4, 223.0, 206.0),
        ("cdkpm", ModAddSpec::cdkpm, 116.0, 260.5),
    ];
    for (name, spec, etof, ecx) in specs {
        let layout = modular::modadd_circuit(&spec(Uncompute::Mbu), n, p).unwrap();
        let nq = layout.circuit.num_qubits();
        let x = layout.x.qubits().to_vec();
        let y = layout.y.qubits().to_vec();
        let dist = BranchEnsemble::new(0)
            .distribution(&layout.circuit, move || {
                let mut sim = BasisTracker::zeros(nq);
                sim.set_value(&x, 7);
                sim.set_value(&y, 9);
                Box::new(sim) as Box<dyn Simulator + Send>
            })
            .unwrap();
        // One MBU flag measurement: a two-leaf tree, no pruning, weights
        // exactly ½ — the weighted mean is a dyadic sum and matches the
        // pinned golden with `==`, like every other expectation here.
        assert_eq!(dist.fork_nodes(), 1, "{name}: the flag is the only fork");
        assert_eq!(dist.num_leaves(), 2, "{name}");
        assert_eq!(dist.pruned_mass(), 0.0, "{name}");
        let exact = dist.mean_counts();
        assert_eq!(exact.toffoli, etof, "{name}: exact-mode E[Toffoli]");
        assert_eq!(exact.cx, ecx, "{name}: exact-mode E[CNOT]");
        assert_eq!(
            exact.toffoli,
            layout.circuit.expected_counts().toffoli,
            "{name}: simulation agrees with the analytic weighting"
        );
    }
}

#[test]
fn beauregard_draper_golden() {
    // Prop 3.7 structure at n ∈ {4, 8}: pure QFT arithmetic — no Toffolis,
    // 2 CNOTs, 6(n+1) H from 3 QFT + 3 IQFT, and the C-R rotation budget.
    for (n, unitary, mbu) in [
        (
            4usize,
            Golden {
                tag: "beauregard4",
                q: 10,
                tof: 0,
                cx: 2,
                cz: 0,
                x: 2,
                h: 30,
                cphase: 107,
                mz: 0,
                mx: 0,
                reset: 0,
                etof: 0.0,
                ecx: 2.0,
            },
            Golden {
                tag: "beauregard4-mbu",
                q: 10,
                tof: 0,
                cx: 2,
                cz: 0,
                x: 3,
                h: 43,
                cphase: 127,
                mz: 1,
                mx: 0,
                reset: 0,
                etof: 0.0,
                ecx: 1.5,
            },
        ),
        (
            8,
            Golden {
                tag: "beauregard8",
                q: 18,
                tof: 0,
                cx: 2,
                cz: 0,
                x: 2,
                h: 54,
                cphase: 357,
                mz: 0,
                mx: 0,
                reset: 0,
                etof: 0.0,
                ecx: 2.0,
            },
            Golden {
                tag: "beauregard8-mbu",
                q: 18,
                tof: 0,
                cx: 2,
                cz: 0,
                x: 3,
                h: 75,
                cphase: 429,
                mz: 1,
                mx: 0,
                reset: 0,
                etof: 0.0,
                ecx: 1.5,
            },
        ),
    ] {
        let p = (1u128 << n) - 1;
        let u = modular::beauregard::modadd_circuit(Uncompute::Unitary, n, p).unwrap();
        check(&u.circuit, &unitary);
        assert_eq!(u.circuit.num_qubits(), 2 * n + 2, "Table 1: 2n+2 qubits");
        let m = modular::beauregard::modadd_circuit(Uncompute::Mbu, n, p).unwrap();
        check(&m.circuit, &mbu);
    }
}
