//! Observational invisibility of measurement-driven qubit reclamation.
//!
//! The compiled engine may execute `Drop` instructions by compacting the
//! state-vector amplitude array — but nothing outside the run is allowed
//! to notice: for random MBU modular adders, reclamation on vs. off must
//! produce identical classical records, executed counts, final register
//! values and (up to the discarded `≤1e-20`-mass rounding residues)
//! identical amplitudes, and the static `counts_golden`-style resource
//! pins of the compiled program must not move at all.
//!
//! The chained-modadd test is the acceptance benchmark's twin: two
//! sequential MBU modular additions on fresh per-stage ancillas must run
//! at **at most half** the peak amplitudes with reclamation on, while the
//! shot-ensemble classical aggregates stay bit-identical between the two
//! engine configurations.

use mbu_arith::{
    modular::{self, ModAddSpec},
    Uncompute,
};
use mbu_circuit::{CompiledCircuit, PassConfig};
use mbu_sim::{Ensemble, ShotRunner, Simulator, StateVector};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arch_spec(arch: u8, unc: Uncompute) -> ModAddSpec {
    match arch % 3 {
        0 => ModAddSpec::cdkpm(unc),
        1 => ModAddSpec::gidney(unc),
        _ => ModAddSpec::gidney_cdkpm(unc),
    }
}

/// The classical face of an ensemble, for equality checks that must not
/// depend on the peak-memory stat (which reclamation is *supposed* to
/// change).
fn classical_view(e: &Ensemble) -> impl PartialEq + std::fmt::Debug {
    let records: Vec<(Vec<Option<bool>>, u64)> = e
        .record_frequencies()
        .map(|(r, n)| (r.to_vec(), n))
        .collect();
    (e.shots(), e.mean(), e.variance(), records)
}

proptest! {
    // Each case simulates an up-to-18-qubit modadd twice.
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn reclamation_is_invisible_for_random_mbu_modadds(
        n in 2usize..=4,
        pk in 0u128..1_000_000,
        xk in 0u128..1_000_000,
        yk in 0u128..1_000_000,
        arch in 0u8..3,
        seed in 0u64..u64::MAX,
    ) {
        let pmax = (1u128 << n) - 1;
        let p = 2 + pk % (pmax - 1);
        let x = xk % p;
        let y = yk % p;
        let spec = arch_spec(arch, Uncompute::Mbu);
        let layout = modular::modadd_circuit(&spec, n, p).unwrap();
        let nq = layout.circuit.num_qubits();
        let input = StateVector::index_with(&[
            (layout.x.qubits(), u64::try_from(x).unwrap()),
            (layout.y.qubits(), u64::try_from(y).unwrap()),
        ]);

        let compiled = CompiledCircuit::compile(&layout.circuit).unwrap();
        prop_assert!(compiled.reclaims_qubits(), "MBU modadds always measure garbage");

        let mut sv_on = StateVector::basis(nq, input).unwrap().with_reclamation(true);
        let mut rng = StdRng::seed_from_u64(seed);
        let ex_on = sv_on.run_compiled(&compiled, &mut rng).unwrap();

        let mut sv_off = StateVector::basis(nq, input).unwrap().with_reclamation(false);
        let mut rng = StdRng::seed_from_u64(seed);
        let ex_off = sv_off.run_compiled(&compiled, &mut rng).unwrap();

        // Identical measurement records, outcomes and executed counts.
        prop_assert_eq!(&ex_on, &ex_off);
        // Identical state, up to the exactly-zero / residue mass a drop
        // discards.
        let amps_on = sv_on.amplitudes();
        let amps_off = sv_off.amplitudes();
        for (i, (a, b)) in amps_on.iter().zip(&amps_off).enumerate() {
            prop_assert!((*a - *b).norm() < 1e-9, "amp {}: {} vs {}", i, a, b);
        }
        // Both compute the paper's modular sum.
        prop_assert_eq!(sv_on.value(layout.x.qubits()).unwrap(), x);
        prop_assert_eq!(sv_on.value(layout.y.qubits()).unwrap(), (x + y) % p);
        // Reclamation never *raises* the working set.
        prop_assert!(
            sv_on.last_run_peak_amplitudes().unwrap()
                <= sv_off.last_run_peak_amplitudes().unwrap()
        );

        // The static resource pins are untouched by the reclamation pass:
        // drops are not gates, and no gate moves.
        let no_reclaim = PassConfig {
            reclaim_dead_qubits: false,
            ..PassConfig::default()
        };
        let without = CompiledCircuit::with_config(&layout.circuit, &no_reclaim).unwrap();
        prop_assert_eq!(compiled.counts(), without.counts());
        prop_assert_eq!(
            compiled.instrs().len(),
            without.instrs().len() + compiled.stats().dead_qubits_reclaimed as usize
        );
    }
}

#[test]
fn chained_mbu_modadd_halves_peak_with_bit_identical_aggregates() {
    // Two sequential MBU modular additions, fresh garbage per stage: the
    // acceptance shape. Stage 1's measured ancillas drop before stage 2's
    // materialise, so the reclaiming engine never holds the full width.
    let spec = ModAddSpec::cdkpm(Uncompute::Mbu);
    let chain = modular::modadd_chain_circuit(&spec, 2, 3, 2).unwrap();
    let nq = chain.circuit.num_qubits();
    let runner = ShotRunner::new(64).with_passes(PassConfig::default());

    let on = runner
        .run(&chain.circuit, || {
            let mut sv = StateVector::zeros(nq).unwrap().with_reclamation(true);
            sv.set_value(chain.x.qubits(), 2).unwrap();
            sv.set_value(chain.y.qubits(), 1).unwrap();
            Box::new(sv) as Box<dyn Simulator>
        })
        .unwrap();
    let off = runner
        .run(&chain.circuit, || {
            let mut sv = StateVector::zeros(nq).unwrap().with_reclamation(false);
            sv.set_value(chain.x.qubits(), 2).unwrap();
            sv.set_value(chain.y.qubits(), 1).unwrap();
            Box::new(sv) as Box<dyn Simulator>
        })
        .unwrap();

    let peak_on = on.peak_amplitudes().expect("state vector reports peaks");
    let peak_off = off.peak_amplitudes().expect("state vector reports peaks");
    assert_eq!(
        peak_off,
        1 << nq,
        "without reclamation the full array is live"
    );
    assert!(
        peak_on * 2 <= peak_off,
        "reclamation must at least halve the peak: {peak_on} vs {peak_off}"
    );

    // Bit-identical classical aggregates between the two configurations.
    assert_eq!(classical_view(&on), classical_view(&off));

    // And the chain still computes (2x + y) mod p on every shot: verify on
    // one replayed seed.
    let compiled = CompiledCircuit::compile(&chain.circuit).unwrap();
    let mut sv = StateVector::zeros(nq).unwrap();
    sv.set_value(chain.x.qubits(), 2).unwrap();
    sv.set_value(chain.y.qubits(), 1).unwrap();
    let mut rng = StdRng::seed_from_u64(runner.seed_for_shot(0));
    sv.run_compiled(&compiled, &mut rng).unwrap();
    assert_eq!(sv.value(chain.y.qubits()).unwrap(), (2 + 2 + 1) % 3);
}

#[test]
fn unitary_uncompute_reclaims_nothing() {
    // The §3/§4 asymmetry: the unitary chain has no measurement, so the
    // compiler emits no drops and the peak stays at full width even with
    // reclamation enabled.
    let spec = ModAddSpec::cdkpm(Uncompute::Unitary);
    let chain = modular::modadd_chain_circuit(&spec, 3, 5, 2).unwrap();
    let compiled = CompiledCircuit::compile(&chain.circuit).unwrap();
    assert!(!compiled.reclaims_qubits());

    let nq = chain.circuit.num_qubits();
    let mut sv = StateVector::zeros(nq).unwrap().with_reclamation(true);
    sv.set_value(chain.x.qubits(), 3).unwrap();
    sv.set_value(chain.y.qubits(), 4).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    sv.run_compiled(&compiled, &mut rng).unwrap();
    assert_eq!(sv.last_run_peak_amplitudes(), Some(1 << nq));
    assert_eq!(sv.value(chain.y.qubits()).unwrap(), (3 + 3 + 4) % 5);
}
