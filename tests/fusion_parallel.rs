//! Observational invisibility of gate fusion and amplitude parallelism.
//!
//! The gate-fusion pass rewrites the compiled program (runs of adjacent
//! gates become dense `Instr::Fused` blocks) and `MBU_AMP_THREADS`-style
//! amplitude lanes rewrite the execution schedule (each kernel sweep
//! splits across a worker pool) — but neither is allowed to change a
//! single bit of observable behaviour. For random MBU modular adders, the
//! fused, amplitude-parallel engine must reproduce the unfused serial
//! engine **exactly**: bitwise-identical amplitudes, identical classical
//! records and executed counts, identical RNG consumption, and identical
//! ensemble outcome frequencies — across both kernel modes and with qubit
//! reclamation on and off.

use mbu_arith::{
    modular::{self, ModAddSpec},
    Uncompute,
};
use mbu_circuit::{CompiledCircuit, PassConfig};
use mbu_sim::{Ensemble, KernelMode, ShotRunner, Simulator, StateVector};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

fn arch_spec(arch: u8, unc: Uncompute) -> ModAddSpec {
    match arch % 3 {
        0 => ModAddSpec::cdkpm(unc),
        1 => ModAddSpec::gidney(unc),
        _ => ModAddSpec::gidney_cdkpm(unc),
    }
}

/// Passes with fusion pinned off (everything else at the defaults), so the
/// baseline is unfused regardless of the ambient `MBU_FUSION` setting.
fn unfused_passes() -> PassConfig {
    PassConfig {
        fuse_max_qubits: 0,
        ..PassConfig::default()
    }
}

/// Passes with fusion pinned on at the standard window.
fn fused_passes() -> PassConfig {
    PassConfig {
        fuse_max_qubits: 3,
        ..PassConfig::default()
    }
}

proptest! {
    // Each case simulates an up-to-18-qubit modadd 8 times (2 kernel
    // modes × reclamation on/off × fused/unfused).
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn fusion_and_amp_parallelism_are_bit_invisible(
        n in 2usize..=4,
        pk in 0u128..1_000_000,
        xk in 0u128..1_000_000,
        yk in 0u128..1_000_000,
        arch in 0u8..3,
        seed in 0u64..u64::MAX,
    ) {
        let pmax = (1u128 << n) - 1;
        let p = 2 + pk % (pmax - 1);
        let x = xk % p;
        let y = yk % p;
        let spec = arch_spec(arch, Uncompute::Mbu);
        let layout = modular::modadd_circuit(&spec, n, p).unwrap();
        let nq = layout.circuit.num_qubits();
        let input = StateVector::index_with(&[
            (layout.x.qubits(), u64::try_from(x).unwrap()),
            (layout.y.qubits(), u64::try_from(y).unwrap()),
        ]);

        let unfused = CompiledCircuit::with_config(&layout.circuit, &unfused_passes()).unwrap();
        let fused = CompiledCircuit::with_config(&layout.circuit, &fused_passes()).unwrap();
        prop_assert!(
            fused.stats().fused_blocks > 0,
            "modadds always contain fusable gate runs: {}",
            fused.stats()
        );
        // Fusion moves gates into blocks but loses none of them.
        prop_assert_eq!(fused.counts(), unfused.counts());

        for mode in [KernelMode::Stride, KernelMode::Scan] {
            for reclaim in [true, false] {
                // Baseline: unfused program, serial kernels.
                let mut sv_base = StateVector::basis(nq, input)
                    .unwrap()
                    .with_kernel_mode(mode)
                    .with_reclamation(reclaim)
                    .with_amp_threads(1);
                let mut rng_base = StdRng::seed_from_u64(seed);
                let ex_base = sv_base.run_compiled(&unfused, &mut rng_base).unwrap();

                // Fused program, four amplitude lanes.
                let mut sv_fast = StateVector::basis(nq, input)
                    .unwrap()
                    .with_kernel_mode(mode)
                    .with_reclamation(reclaim)
                    .with_amp_threads(4);
                let mut rng_fast = StdRng::seed_from_u64(seed);
                let ex_fast = sv_fast.run_compiled(&fused, &mut rng_fast).unwrap();

                // Identical executed counts and classical records.
                prop_assert_eq!(&ex_base, &ex_fast, "{:?} reclaim={}", mode, reclaim);
                // Identical RNG consumption: the generators are at the
                // same stream position after the run.
                prop_assert_eq!(
                    rng_base.next_u64(),
                    rng_fast.next_u64(),
                    "{:?} reclaim={}: RNG streams diverged",
                    mode,
                    reclaim
                );
                // Bitwise-identical amplitudes.
                for (i, (a, b)) in sv_base
                    .amplitudes()
                    .iter()
                    .zip(sv_fast.amplitudes())
                    .enumerate()
                {
                    prop_assert_eq!(
                        a.re.to_bits(),
                        b.re.to_bits(),
                        "{:?} reclaim={}: re of amp {}",
                        mode,
                        reclaim,
                        i
                    );
                    prop_assert_eq!(
                        a.im.to_bits(),
                        b.im.to_bits(),
                        "{:?} reclaim={}: im of amp {}",
                        mode,
                        reclaim,
                        i
                    );
                }
                // And both compute the paper's modular sum.
                prop_assert_eq!(sv_fast.value(layout.x.qubits()).unwrap(), x);
                prop_assert_eq!(sv_fast.value(layout.y.qubits()).unwrap(), (x + y) % p);
            }
        }
    }
}

/// The classical face of an ensemble (peak-memory stats excluded so the
/// comparison is meaningful with reclamation in play).
fn classical_view(e: &Ensemble) -> impl PartialEq + std::fmt::Debug {
    let records: Vec<(Vec<Option<bool>>, u64)> = e
        .record_frequencies()
        .map(|(r, n)| (r.to_vec(), n))
        .collect();
    (e.shots(), e.mean(), e.variance(), records)
}

#[test]
fn ensemble_outcome_frequencies_survive_fusion_and_thread_splits() {
    // A 2-stage MBU modadd chain under the shot engine: unfused serial
    // aggregates vs fused runs at several (budget, lane) splits must be
    // bit-identical, outcome frequencies included.
    let spec = ModAddSpec::cdkpm(Uncompute::Mbu);
    let chain = modular::modadd_chain_circuit(&spec, 2, 3, 2).unwrap();
    let nq = chain.circuit.num_qubits();
    let factory = || {
        let mut sv = StateVector::zeros(nq).unwrap();
        sv.set_value(chain.x.qubits(), 2).unwrap();
        sv.set_value(chain.y.qubits(), 1).unwrap();
        Box::new(sv) as Box<dyn Simulator>
    };

    let baseline = ShotRunner::new(48)
        .with_passes(unfused_passes())
        .with_threads(1)
        .with_amp_threads(1)
        .run(&chain.circuit, factory)
        .unwrap();
    for (threads, lanes) in [(1, 1), (8, 1), (8, 4), (2, 2)] {
        let fused = ShotRunner::new(48)
            .with_passes(fused_passes())
            .with_threads(threads)
            .with_amp_threads(lanes)
            .run(&chain.circuit, factory)
            .unwrap();
        assert_eq!(
            classical_view(&baseline),
            classical_view(&fused),
            "budget {threads}, lanes {lanes}"
        );
        for clbit in 0..baseline.num_clbits() {
            assert_eq!(
                baseline.outcome_frequency(clbit),
                fused.outcome_frequency(clbit),
                "clbit {clbit} at budget {threads}, lanes {lanes}"
            );
        }
    }
}

#[test]
fn fusion_report_shows_up_in_stats_and_dump() {
    // The compile-stage face of the feature: a modadd's program reports
    // its fusion work and renders blocks in the dump.
    let spec = ModAddSpec::cdkpm(Uncompute::Mbu);
    let layout = modular::modadd_circuit(&spec, 2, 3).unwrap();
    let compiled = CompiledCircuit::with_config(&layout.circuit, &fused_passes()).unwrap();
    let stats = compiled.stats();
    assert!(stats.fused_blocks > 0);
    assert!(stats.fused_gates >= 2 * stats.fused_blocks);
    let dump = compiled.to_string();
    assert!(dump.contains("fused["), "{dump}");
    assert!(dump.contains("fused"), "{}", stats);
}
