//! Integration tests for the QFT-based (Draper/Beauregard) circuits:
//! Monte-Carlo validation of the Thm 4.6 expectation, chained constant
//! modular additions (the "Draper (Expect)" amortisation of Table 1), and
//! the doubly-controlled Figure-23 circuit on superposed controls.

use mbu_arith::modular::beauregard;
use mbu_arith::{adders, AdderKind, Uncompute};
use mbu_circuit::{Circuit, CircuitBuilder, Gate, Op};
use mbu_sim::{Complex, StateVector};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn beauregard_mbu_monte_carlo_rotation_mean() {
    // Thm 4.6's accounting in expectation: the measured mean of executed
    // controlled rotations over many runs must match the analytic
    // ExpectedCounts.
    let n = 4usize;
    let p = 13u64;
    let layout = beauregard::modadd_circuit(Uncompute::Mbu, n, u128::from(p)).unwrap();
    let analytic = layout.circuit.expected_counts().cphase;
    let trials = 200u64;
    let mut total = 0u64;
    for seed in 0..trials {
        let mut sv = StateVector::zeros(layout.circuit.num_qubits()).unwrap();
        sv.prepare_basis(StateVector::index_with(&[
            (layout.x.qubits(), 11),
            (layout.y.qubits(), 9),
        ]))
        .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let ex = sv.run(&layout.circuit, &mut rng).unwrap();
        total += ex.counts.cphase;
    }
    let mean = total as f64 / trials as f64;
    assert!(
        (mean - analytic).abs() < analytic * 0.05 + 2.0,
        "measured {mean} vs analytic {analytic}"
    );
}

#[test]
fn chained_constant_modadds_amortise_qfts() {
    // "Draper (Expect)": across k chained constant modular additions the
    // interior IQFT·QFT pairs are dead weight. We verify the chain is
    // *correct* (the prerequisite for amortisation) and report that the
    // H-count is linear in k with the per-addition constant of Table 1.
    let n = 3usize;
    let p = 7u64;
    let adds = [3u64, 5, 6, 1];
    let mut b = CircuitBuilder::new();
    let x = b.qreg("x", n + 1);
    let p_bits = mbu_bitstring::BitString::from_u128(u128::from(p), n);
    for a in adds {
        let a_bits = mbu_bitstring::BitString::from_u128(u128::from(a), n);
        beauregard::modadd_const(
            &mut b,
            Uncompute::Unitary,
            &[],
            &a_bits,
            x.qubits(),
            &p_bits,
        )
        .unwrap();
    }
    let circuit = b.finish();
    let mut value = 2u64;
    let mut sv = StateVector::zeros(circuit.num_qubits()).unwrap();
    sv.prepare_basis(StateVector::index_with(&[(x.qubits(), value)]))
        .unwrap();
    let mut rng = StdRng::seed_from_u64(0);
    sv.run(&circuit, &mut rng).unwrap();
    for a in adds {
        value = (value + a) % p;
    }
    let (idx, amp) = sv.as_basis(1e-7).unwrap();
    assert_eq!(StateVector::register_value(idx, x.qubits()), value);
    assert!((amp.re - 1.0).abs() < 1e-6 && amp.im.abs() < 1e-6);
    // 6 QFT-equivalents per addition over n+1 qubits.
    assert_eq!(
        circuit.counts().h,
        (adds.len() * 6 * (n + 1)) as u64,
        "3 QFT + 3 IQFT per chained addition"
    );
}

#[test]
fn figure_23_superposed_controls_entangle_correctly() {
    // Put both Shor controls in |+⟩ and check all four branches of the
    // doubly-controlled constant modular adder.
    let n = 2usize;
    let (a, p) = (2u64, 3u64);
    let layout =
        beauregard::modadd_const_circuit(Uncompute::Mbu, 2, n, u128::from(a), u128::from(p))
            .unwrap();
    let mut full = Circuit::new(layout.circuit.num_qubits(), layout.circuit.num_clbits());
    full.push(Op::Gate(Gate::H(layout.controls[0])));
    full.push(Op::Gate(Gate::H(layout.controls[1])));
    for op in layout.circuit.ops() {
        full.push(op.clone());
    }
    let x0 = 1u64;
    for seed in 0..10 {
        let mut sv = StateVector::zeros(full.num_qubits()).unwrap();
        sv.prepare_basis(StateVector::index_with(&[(layout.x.qubits(), x0)]))
            .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        sv.run(&full, &mut rng).unwrap();
        for c1 in 0..2u64 {
            for c2 in 0..2u64 {
                let expected_x = (x0 + a * c1 * c2) % p;
                let idx = StateVector::index_with(&[
                    (&[layout.controls[0]], c1),
                    (&[layout.controls[1]], c2),
                    (layout.x.qubits(), expected_x),
                ]);
                let amp = sv.amplitude(idx);
                assert!(
                    (amp - Complex::new(0.5, 0.0)).norm() < 1e-6,
                    "seed {seed} branch ({c1},{c2}): {amp}"
                );
            }
        }
    }
}

#[test]
fn draper_and_ripple_adders_agree() {
    // Differential: Draper's QFT adder against CDKPM on identical inputs.
    let n = 3usize;
    for x in 0..(1u64 << n) {
        for y in [0u64, 7, 12, 15] {
            let outputs: Vec<u64> = [AdderKind::Draper, AdderKind::Cdkpm]
                .into_iter()
                .map(|kind| {
                    let adder = adders::plain_adder(kind, n).unwrap();
                    let mut sv = StateVector::zeros(adder.circuit.num_qubits()).unwrap();
                    sv.prepare_basis(StateVector::index_with(&[
                        (adder.x.qubits(), x),
                        (adder.y.qubits(), y),
                    ]))
                    .unwrap();
                    let mut rng = StdRng::seed_from_u64(1);
                    sv.run(&adder.circuit, &mut rng).unwrap();
                    let (idx, _) = sv.as_basis(1e-7).unwrap();
                    StateVector::register_value(idx, adder.y.qubits())
                })
                .collect();
            assert_eq!(outputs[0], outputs[1], "{x}+{y}");
            assert_eq!(u128::from(outputs[0]), (u128::from(x) + u128::from(y)) % 16);
        }
    }
}

#[test]
fn qft_of_zero_is_uniform_superposition() {
    let m = 4usize;
    let mut b = CircuitBuilder::new();
    let r = b.qreg("r", m);
    mbu_arith::adders::draper::qft(&mut b, r.qubits()).unwrap();
    let circuit = b.finish();
    let mut sv = StateVector::zeros(m).unwrap();
    let mut rng = StdRng::seed_from_u64(0);
    sv.run(&circuit, &mut rng).unwrap();
    let amp = 1.0 / ((1u64 << m) as f64).sqrt();
    for i in 0..(1u64 << m) {
        let a = sv.amplitude(i);
        assert!(
            (a - Complex::new(amp, 0.0)).norm() < 1e-9,
            "component {i}: {a}"
        );
    }
}

#[test]
fn qft_eigenphase_convention_matches_paper() {
    // After our QFT, qubit i of |ϕ(y)⟩ holds phase y/2^{i+1} (Prop 2.5's
    // convention). Check it by undoing qubit i alone: H should map it to
    // |y_i ...⟩ only when the accumulated controlled corrections are
    // applied — here we verify via the full inverse instead, on every y.
    let m = 3usize;
    for y in 0..(1u64 << m) {
        let mut b = CircuitBuilder::new();
        let r = b.qreg("r", m);
        mbu_arith::adders::draper::qft(&mut b, r.qubits()).unwrap();
        mbu_arith::adders::draper::iqft(&mut b, r.qubits()).unwrap();
        let circuit = b.finish();
        let mut sv = StateVector::basis(m, y).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        sv.run(&circuit, &mut rng).unwrap();
        let (idx, amp) = sv.as_basis(1e-9).unwrap();
        assert_eq!(idx, y);
        assert!((amp - Complex::ONE).norm() < 1e-9);
    }
}
