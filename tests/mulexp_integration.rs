//! Integration tests for the modular multiplication / exponentiation
//! extension, the paper's motivating cryptanalysis workload.

use mbu_arith::{
    modular::ModAddSpec,
    mulexp::{self, mod_pow},
    Uncompute,
};
use mbu_circuit::{Circuit, CircuitBuilder, QubitId};
use mbu_sim::BasisTracker;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run_tracker(
    circuit: &Circuit,
    inputs: &[(&[QubitId], u128)],
    out: &[QubitId],
    seed: u64,
) -> u128 {
    circuit.validate().unwrap();
    let mut sim = BasisTracker::zeros(circuit.num_qubits());
    for (reg, v) in inputs {
        sim.set_value(reg, *v).unwrap();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    sim.run(circuit, &mut rng).unwrap();
    assert!(sim.global_phase().is_zero());
    sim.value(out).unwrap()
}

#[test]
fn inplace_multiplication_8bit_prime() {
    let n = 8usize;
    let p = 251u128;
    let spec = ModAddSpec::gidney_cdkpm(Uncompute::Mbu);
    for (a, x) in [(2u128, 250u128), (246, 17), (113, 113), (1, 77)] {
        let mut b = CircuitBuilder::new();
        let xr = b.qreg("x", n + 1);
        mulexp::modmul_const_inplace(&mut b, &spec, xr.qubits(), a, p).unwrap();
        let circuit = b.finish();
        let got = run_tracker(&circuit, &[(xr.qubits(), x)], xr.qubits(), (a * x) as u64);
        assert_eq!(got, a * x % p, "{a}·{x} mod {p}");
    }
}

#[test]
fn repeated_multiplication_walks_the_group() {
    // x ← g·x applied k times must equal g^k·x mod p.
    let n = 6usize;
    let p = 61u128;
    let g = 2u128;
    let k = 5;
    let spec = ModAddSpec::cdkpm(Uncompute::Mbu);
    let mut b = CircuitBuilder::new();
    let xr = b.qreg("x", n + 1);
    for _ in 0..k {
        mulexp::modmul_const_inplace(&mut b, &spec, xr.qubits(), g, p).unwrap();
    }
    let circuit = b.finish();
    let x0 = 7u128;
    let got = run_tracker(&circuit, &[(xr.qubits(), x0)], xr.qubits(), 4);
    assert_eq!(got, mod_pow(g, k, p) * x0 % p);
}

#[test]
fn modexp_finds_the_period_structure() {
    // Shor's precondition: the modexp circuit evaluates e ↦ g^e mod p
    // faithfully so the period r (here ord_15(7) = 4) is present.
    let n = 4usize;
    let p = 15u128;
    let g = 7u128;
    let k = 3usize;
    let spec = ModAddSpec::cdkpm(Uncompute::Mbu);
    let mut seen = Vec::new();
    for e in 0..(1u128 << k) {
        let layout = mulexp::modexp_circuit(&spec, k, n, g, p).unwrap();
        let got = run_tracker(
            &layout.circuit,
            &[(layout.exponent.qubits(), e), (layout.work.qubits(), 1)],
            layout.work.qubits(),
            e as u64,
        );
        assert_eq!(got, mod_pow(g, e, p), "7^{e} mod 15");
        seen.push(got);
    }
    // Period 4: e and e+4 collide.
    assert_eq!(seen[0], seen[4]);
    assert_eq!(seen[1], seen[5]);
    assert_eq!(seen[2], seen[6]);
    assert_ne!(seen[0], seen[1]);
}

#[test]
fn modexp_mbu_savings_at_shor_scale_shape() {
    // The paper's motivation: MBU savings compound over the ~2n² modular
    // additions of a modular exponentiation. Verify the per-circuit saving
    // carries through at a small but structured scale.
    let n = 8usize;
    let p = 251u128;
    let k = 4usize;
    let plain = mulexp::modexp_circuit(&ModAddSpec::cdkpm(Uncompute::Unitary), k, n, 7, p)
        .unwrap()
        .circuit
        .expected_counts();
    let with_mbu = mulexp::modexp_circuit(&ModAddSpec::cdkpm(Uncompute::Mbu), k, n, 7, p)
        .unwrap()
        .circuit
        .expected_counts();
    let saving = 1.0 - with_mbu.toffoli / plain.toffoli;
    assert!(
        saving > 0.05 && saving < 0.20,
        "modexp-level Toffoli saving {saving}"
    );
    // Absolute scale sanity: thousands of Toffolis, not tens.
    assert!(plain.toffoli > 1000.0);
}

#[test]
fn accumulate_version_keeps_x_intact() {
    let n = 5usize;
    let p = 31u128;
    let a = 11u128;
    let spec = ModAddSpec::gidney(Uncompute::Mbu);
    let mut b = CircuitBuilder::new();
    let xr = b.qreg("x", n);
    let acc = b.qreg("acc", n + 1);
    mulexp::modmul_const_accum(&mut b, &spec, xr.qubits(), acc.qubits(), a, p).unwrap();
    let circuit = b.finish();
    for seed in 0..4 {
        let mut sim = BasisTracker::zeros(circuit.num_qubits());
        sim.set_value(xr.qubits(), 19).unwrap();
        sim.set_value(acc.qubits(), 5).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        sim.run(&circuit, &mut rng).unwrap();
        assert_eq!(sim.value(xr.qubits()).unwrap(), 19);
        assert_eq!(sim.value(acc.qubits()).unwrap(), (5 + a * 19) % p);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_inplace_multiplication(
        n in 3usize..=10,
        a_raw in 1u64..u64::MAX,
        x_raw in 0u64..u64::MAX,
        seed in 0u64..1000,
    ) {
        // Pick an odd modulus so odd multipliers are invertible.
        let p = ((1u128 << n) - 1) | 1;
        let a = (u128::from(a_raw) % (p - 1) + 1) | 1; // odd, nonzero
        if mulexp::mod_inverse(a % p, p).is_err() {
            return Ok(()); // gcd ≠ 1: construction rightfully refuses
        }
        let x = u128::from(x_raw) % p;
        let spec = ModAddSpec::cdkpm(Uncompute::Mbu);
        let mut b = CircuitBuilder::new();
        let xr = b.qreg("x", n + 1);
        mulexp::modmul_const_inplace(&mut b, &spec, xr.qubits(), a % p, p).unwrap();
        let circuit = b.finish();
        let got = run_tracker(&circuit, &[(xr.qubits(), x)], xr.qubits(), seed);
        prop_assert_eq!(got, (a % p) * x % p);
    }

    #[test]
    fn prop_accumulate(
        n in 2usize..=8,
        a_raw in 0u64..u64::MAX,
        x_raw in 0u64..u64::MAX,
        acc_raw in 0u64..u64::MAX,
        seed in 0u64..1000,
    ) {
        let p = (1u128 << n) - 1;
        prop_assume!(p >= 2);
        let a = u128::from(a_raw) % p;
        let x = u128::from(x_raw) % (1 << n);
        let acc0 = u128::from(acc_raw) % p;
        let spec = ModAddSpec::gidney_cdkpm(Uncompute::Mbu);
        let mut b = CircuitBuilder::new();
        let xr = b.qreg("x", n);
        let ar = b.qreg("acc", n + 1);
        mulexp::modmul_const_accum(&mut b, &spec, xr.qubits(), ar.qubits(), a, p).unwrap();
        let circuit = b.finish();
        let got = run_tracker(
            &circuit,
            &[(xr.qubits(), x), (ar.qubits(), acc0)],
            ar.qubits(),
            seed,
        );
        prop_assert_eq!(got, (acc0 + a * x) % p);
    }
}
