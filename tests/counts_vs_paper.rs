//! Resource-count reproduction tests: our constructed circuits against the
//! paper's printed formulas (Tables 1–6), with the tolerance policy of
//! EXPERIMENTS.md — leading coefficients must match, small additive
//! constants may differ (the paper itself rounds; e.g. Prop 2.2 states
//! "4n Tof" for a 4n−2 circuit).

use mbu_arith::{
    adders, compare,
    modular::{self, ModAddSpec},
    resources::{self, Table1Row},
    AdderKind, Uncompute,
};
use mbu_bitstring::hamming_weight;

/// Asserts `measured` is within `slack` of `formula`.
fn close(context: &str, measured: f64, formula: f64, slack: f64) {
    assert!(
        (measured - formula).abs() <= slack,
        "{context}: measured {measured}, paper {formula} (slack {slack})"
    );
}

#[test]
fn table2_plain_adder_counts() {
    for n in [8usize, 16, 32] {
        let nf = n as f64;
        for kind in [AdderKind::Vbe, AdderKind::Cdkpm, AdderKind::Gidney] {
            let adder = adders::plain_adder(kind, n).unwrap();
            let c = adder.circuit.counts();
            let paper = resources::table2_plain_adder(kind, nf);
            close(
                &format!("Table 2 {kind} Tof (n={n})"),
                c.toffoli as f64,
                paper.toffoli,
                2.0,
            );
            close(
                &format!("Table 2 {kind} CNOT (n={n})"),
                c.cx as f64,
                paper.cnot,
                6.0,
            );
        }
        // CDKPM is exact.
        let c = adders::plain_adder(AdderKind::Cdkpm, n)
            .unwrap()
            .circuit
            .counts();
        assert_eq!(c.toffoli, 2 * n as u64);
        assert_eq!(c.cx, 4 * n as u64 + 1);
        // Gidney Toffoli count is exact.
        let g = adders::plain_adder(AdderKind::Gidney, n)
            .unwrap()
            .circuit
            .counts();
        assert_eq!(g.toffoli, n as u64);
    }
}

#[test]
fn table3_controlled_adder_counts() {
    for n in [8usize, 24] {
        let nf = n as f64;
        for kind in [AdderKind::Cdkpm, AdderKind::Gidney, AdderKind::Draper] {
            let ca = adders::controlled_adder(kind, n).unwrap();
            let c = ca.circuit.counts();
            let paper = resources::table3_controlled_adder(kind, nf);
            close(
                &format!("Table 3 {kind} Tof (n={n})"),
                c.toffoli as f64,
                paper.toffoli,
                2.0,
            );
        }
    }
}

#[test]
fn table4_and_5_constant_adder_counts() {
    let n = 16usize;
    let nf = n as f64;
    let a = 0xBEEFu128 & ((1 << n) - 1);
    let wa = hamming_weight(a) as f64;
    for kind in [AdderKind::Cdkpm, AdderKind::Gidney] {
        let plain = adders::const_adder(kind, n, a).unwrap().circuit.counts();
        let paper4 = resources::table4_const_adder(kind, nf);
        close(
            &format!("Table 4 {kind} Tof"),
            plain.toffoli as f64,
            paper4.toffoli,
            2.0,
        );
        // X gates: 2|a| for load/unload.
        assert_eq!(plain.x as f64, 2.0 * wa, "{kind} load X count");

        let ctrl = adders::controlled_const_adder(kind, n, a)
            .unwrap()
            .circuit
            .counts();
        let paper5 = resources::table5_controlled_const_adder(kind, nf, wa);
        close(
            &format!("Table 5 {kind} Tof"),
            ctrl.toffoli as f64,
            paper5.toffoli,
            2.0,
        );
        // The control converts the 2|a| X loads into 2|a| CNOTs.
        assert_eq!(ctrl.cx - plain.cx, 2 * wa as u64, "{kind} 2|a| CNOTs");
    }
}

#[test]
fn table6_comparator_counts() {
    for n in [8usize, 32] {
        let nf = n as f64;
        for kind in [AdderKind::Cdkpm, AdderKind::Gidney] {
            let cmp = compare::comparator(kind, n).unwrap();
            let c = cmp.circuit.counts();
            let paper = resources::table6_comparator(kind, nf);
            close(
                &format!("Table 6 {kind} Tof (n={n})"),
                c.toffoli as f64,
                paper.toffoli,
                1.0,
            );
            // Our Gidney comparator saves a few CNOTs over the paper's
            // accounting (6n−5 vs 6n+1); constants differ, slope matches.
            close(
                &format!("Table 6 {kind} CNOT (n={n})"),
                c.cx as f64,
                paper.cnot,
                7.0,
            );
        }
        // Exact values.
        assert_eq!(
            compare::comparator(AdderKind::Cdkpm, n)
                .unwrap()
                .circuit
                .counts()
                .toffoli,
            2 * n as u64
        );
        assert_eq!(
            compare::comparator(AdderKind::Gidney, n)
                .unwrap()
                .circuit
                .counts()
                .toffoli,
            n as u64
        );
    }
}

fn spec_for(row: Table1Row, unc: Uncompute) -> Option<ModAddSpec> {
    match row {
        Table1Row::Vbe5 => Some(ModAddSpec::vbe5(unc)),
        Table1Row::Vbe4 => Some(ModAddSpec::vbe4(unc)),
        Table1Row::Cdkpm => Some(ModAddSpec::cdkpm(unc)),
        Table1Row::Gidney => Some(ModAddSpec::gidney(unc)),
        Table1Row::CdkpmGidney => Some(ModAddSpec::gidney_cdkpm(unc)),
        Table1Row::Draper | Table1Row::DraperExpect => None,
    }
}

#[test]
fn table1_toffoli_leading_coefficients() {
    // The headline table: the measured Toffoli count divided by n must
    // approach the paper's leading coefficient (8, 4, 6, 16, 20; halved
    // comparator terms under MBU) as n grows.
    let n = 64usize;
    let p = (1u128 << 61) - 1; // fits 64 bits
    let w = f64::from(hamming_weight(p));
    for row in [
        Table1Row::Vbe5,
        Table1Row::Vbe4,
        Table1Row::Cdkpm,
        Table1Row::Gidney,
        Table1Row::CdkpmGidney,
    ] {
        for mbu in [false, true] {
            let unc = if mbu {
                Uncompute::Mbu
            } else {
                Uncompute::Unitary
            };
            let spec = spec_for(row, unc).unwrap();
            let layout = modular::modadd_circuit(&spec, n, p).unwrap();
            let measured = layout.circuit.expected_counts().toffoli;
            let paper = resources::table1(row, n as f64, w, mbu).toffoli;
            // Leading-order agreement: within 10% + a small constant.
            let slack = paper * 0.10 + 12.0;
            close(
                &format!("Table 1 {} Tof (mbu={mbu})", row.label()),
                measured,
                paper,
                slack,
            );
        }
    }
}

#[test]
fn table1_mbu_savings_reproduce_headline() {
    // §1.1: MBU reduces Toffoli count by 10–15% for the VBE-architecture
    // adders (measured, not just formulas).
    let n = 64usize;
    let p = (1u128 << 61) - 1;
    for row in [Table1Row::Cdkpm, Table1Row::Gidney, Table1Row::CdkpmGidney] {
        let plain = modular::modadd_circuit(&spec_for(row, Uncompute::Unitary).unwrap(), n, p)
            .unwrap()
            .circuit
            .expected_counts()
            .toffoli;
        let with_mbu = modular::modadd_circuit(&spec_for(row, Uncompute::Mbu).unwrap(), n, p)
            .unwrap()
            .circuit
            .expected_counts()
            .toffoli;
        let saving = 1.0 - with_mbu / plain;
        assert!(
            (0.07..=0.17).contains(&saving),
            "{}: measured MBU saving {saving}",
            row.label()
        );
    }
    // The 5-adder VBE row saves the most (≈20%).
    let plain = modular::modadd_circuit(&ModAddSpec::vbe5(Uncompute::Unitary), n, p)
        .unwrap()
        .circuit
        .expected_counts()
        .toffoli;
    let with_mbu = modular::modadd_circuit(&ModAddSpec::vbe5(Uncompute::Mbu), n, p)
        .unwrap()
        .circuit
        .expected_counts()
        .toffoli;
    let saving = 1.0 - with_mbu / plain;
    assert!((0.15..=0.25).contains(&saving), "VBE5 saving {saving}");
}

#[test]
fn table1_toffoli_depth_also_improves() {
    // The abstract claims Toffoli *depth* improves alongside the count.
    let n = 32usize;
    let p = (1u128 << 31) - 1;
    for row in [Table1Row::Cdkpm, Table1Row::Gidney] {
        let plain = modular::modadd_circuit(&spec_for(row, Uncompute::Unitary).unwrap(), n, p)
            .unwrap()
            .circuit
            .toffoli_depth();
        // With MBU the worst-case depth matches but the *typical* path is
        // shorter: compare the executed depth proxy via expected counts.
        let mbu_counts = modular::modadd_circuit(&spec_for(row, Uncompute::Mbu).unwrap(), n, p)
            .unwrap()
            .circuit
            .expected_counts()
            .toffoli;
        let plain_counts =
            modular::modadd_circuit(&spec_for(row, Uncompute::Unitary).unwrap(), n, p)
                .unwrap()
                .circuit
                .expected_counts()
                .toffoli;
        assert!(mbu_counts < plain_counts);
        assert!(plain > 0);
    }
}

#[test]
fn beauregard_structure_counts() {
    // Prop 3.7: 3 QFTs + 3 IQFTs (6(n+1) H gates) and 2 CNOTs.
    for n in [4usize, 8, 12] {
        let layout =
            modular::beauregard::modadd_circuit(Uncompute::Unitary, n, (1u128 << n) - 1).unwrap();
        let c = layout.circuit.counts();
        assert_eq!(c.h, 6 * (n as u64 + 1), "n={n}");
        assert_eq!(c.cx, 2, "n={n}");
        assert_eq!(c.toffoli, 0, "n={n}");
        // Logical qubits: 2n+2 per Table 1 (x: n, y: n+1, flag: 1).
        assert_eq!(layout.circuit.num_qubits(), 2 * n + 2);
    }
}

#[test]
fn gidney_trades_ancillas_for_toffolis() {
    // The space-time trade of Thm 3.6, measured: Gidney uses ~n more
    // qubits than CDKPM but ~half the Toffolis; the hybrid sits between.
    let n = 48usize;
    let p = (1u128 << 47) - 1;
    let get = |spec: ModAddSpec| {
        let l = modular::modadd_circuit(&spec, n, p).unwrap();
        (l.circuit.num_qubits(), l.circuit.counts().toffoli)
    };
    let (q_c, t_c) = get(ModAddSpec::cdkpm(Uncompute::Unitary));
    let (q_g, t_g) = get(ModAddSpec::gidney(Uncompute::Unitary));
    let (q_h, t_h) = get(ModAddSpec::gidney_cdkpm(Uncompute::Unitary));
    assert!(q_g > q_c, "Gidney should use more qubits: {q_g} vs {q_c}");
    assert!(
        t_g < t_c,
        "Gidney should use fewer Toffolis: {t_g} vs {t_c}"
    );
    assert!(
        t_c > t_h && t_h > t_g,
        "hybrid in between: {t_c} {t_h} {t_g}"
    );
    assert!(
        q_h <= q_c + 2,
        "hybrid keeps CDKPM-like width: {q_h} vs {q_c}"
    );
}
