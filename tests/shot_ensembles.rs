//! Integration tests for the [`ShotRunner`] ensemble engine on the paper's
//! real circuits: determinism, parallel-equals-serial, backend
//! polymorphism through the [`Simulator`] trait, and agreement of ensemble
//! means with the analytic "in expectation" accounting.

use mbu_arith::modular::{self, ModAddSpec};
use mbu_arith::Uncompute;
use mbu_sim::{BasisTracker, ShotRunner, Simulator, StateVector};

fn mbu_modadd() -> (modular::ModAdd, u128, u128, u128) {
    let n = 6usize;
    let p = 61u128;
    let layout = modular::modadd_circuit(&ModAddSpec::cdkpm(Uncompute::Mbu), n, p).unwrap();
    (layout, p, 37, 52)
}

fn tracker_factory(
    layout: &modular::ModAdd,
    x: u128,
    y: u128,
) -> impl Fn() -> Box<dyn Simulator> + Sync + '_ {
    move || {
        let mut sim = BasisTracker::zeros(layout.circuit.num_qubits());
        sim.set_value(layout.x.qubits(), x).unwrap();
        sim.set_value(layout.y.qubits(), y).unwrap();
        Box::new(sim)
    }
}

#[test]
fn same_master_seed_reproduces_the_exact_aggregate() {
    let (layout, _p, x, y) = mbu_modadd();
    let run = |seed: u64| {
        ShotRunner::new(400)
            .with_master_seed(seed)
            .run(&layout.circuit, tracker_factory(&layout, x, y))
            .unwrap()
    };
    let a = run(2025);
    let b = run(2025);
    assert_eq!(a, b, "identical master seeds must agree bit-for-bit");

    let c = run(2026);
    let flag = a.last_clbit().unwrap();
    assert_ne!(
        (a.outcome_ones(flag), a.mean().toffoli),
        (c.outcome_ones(flag), c.mean().toffoli),
        "different master seeds should draw different outcome sequences"
    );
}

#[test]
fn parallel_and_serial_ensembles_are_bit_identical() {
    let (layout, _p, x, y) = mbu_modadd();
    let serial = ShotRunner::new(1000)
        .with_threads(1)
        .run(&layout.circuit, tracker_factory(&layout, x, y))
        .unwrap();
    for threads in [2, 4, 8] {
        let parallel = ShotRunner::new(1000)
            .with_threads(threads)
            .run(&layout.circuit, tracker_factory(&layout, x, y))
            .unwrap();
        assert_eq!(serial, parallel, "threads = {threads}");
    }
}

#[test]
fn ensemble_mean_matches_analytic_expectation() {
    let (layout, _p, x, y) = mbu_modadd();
    let analytic = layout.circuit.expected_counts();
    let ensemble = ShotRunner::new(800)
        .run(&layout.circuit, tracker_factory(&layout, x, y))
        .unwrap();
    let mean = ensemble.mean();
    for (measured, expected, what) in [
        (mean.toffoli, analytic.toffoli, "toffoli"),
        (mean.cx, analytic.cx, "cx"),
        (mean.x, analytic.x, "x"),
    ] {
        assert!(
            (measured - expected).abs() < expected * 0.1 + 1.0,
            "{what}: measured {measured} vs analytic {expected}"
        );
    }
    // The conditional correction makes the executed Toffoli count
    // genuinely random: nonzero variance is the MBU signature.
    assert!(ensemble.variance().toffoli > 0.0);
}

#[test]
fn per_shot_probes_check_every_result_value() {
    let (layout, p, x, y) = mbu_modadd();
    let (ensemble, sums) = ShotRunner::new(200)
        .run_probed(&layout.circuit, tracker_factory(&layout, x, y), |sim, _| {
            sim.value(layout.y.qubits()).unwrap()
        })
        .unwrap();
    assert_eq!(sums.len(), 200);
    assert!(
        sums.iter().all(|&s| s == (x + y) % p),
        "every shot must compute (x + y) mod p"
    );
    assert_eq!(ensemble.shots(), 200);
}

#[test]
fn state_vector_backend_runs_the_same_ensemble_through_the_trait() {
    // A small instance, so the exact backend fits: the whole point of the
    // Simulator seam is that only the factory changes.
    let n = 3usize;
    let p = 5u128;
    let layout = modular::modadd_circuit(&ModAddSpec::cdkpm(Uncompute::Mbu), n, p).unwrap();
    let (x, y) = (3u128, 4u128);

    let on_tracker = ShotRunner::new(300)
        .run(&layout.circuit, tracker_factory(&layout, x, y))
        .unwrap();
    let on_statevector = ShotRunner::new(300)
        .run(&layout.circuit, || {
            let mut sim = StateVector::zeros(layout.circuit.num_qubits()).unwrap();
            sim.set_value(layout.x.qubits(), x).unwrap();
            sim.set_value(layout.y.qubits(), y).unwrap();
            Box::new(sim)
        })
        .unwrap();

    // Deterministic counts agree exactly; outcome-dependent ones agree
    // statistically (the backends draw from independent probability
    // computations, exact vs symbolic).
    assert_eq!(on_tracker.shots(), on_statevector.shots());
    let flag = on_tracker.last_clbit().unwrap();
    assert_eq!(flag, on_statevector.last_clbit().unwrap());
    let f_tracker = on_tracker.outcome_frequency(flag).unwrap();
    let f_sv = on_statevector.outcome_frequency(flag).unwrap();
    assert!(
        (f_tracker - 0.5).abs() < 0.15 && (f_sv - 0.5).abs() < 0.15,
        "Lemma 4.1 fair coin on both backends: {f_tracker} vs {f_sv}"
    );
    assert!(
        (on_tracker.mean().toffoli - on_statevector.mean().toffoli).abs()
            < on_tracker.mean().toffoli * 0.1 + 1.0,
        "mean executed Toffolis agree across backends"
    );
}
