//! Integration tests for measurement-based uncomputation (§4): Monte-Carlo
//! validation of the "in expectation" accounting, phase exactness on
//! superpositions, and the two-sided comparator.

use mbu_arith::{
    modular::{self, ModAddSpec},
    two_sided, AdderKind, Uncompute,
};
use mbu_circuit::Circuit;
use mbu_sim::{BasisTracker, ShotRunner, StateVector};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Empirical mean of executed Toffoli counts over a seeded shot ensemble.
fn monte_carlo_toffoli(
    circuit: &Circuit,
    prepare: impl Fn(&mut BasisTracker) + Sync,
    trials: u64,
) -> f64 {
    ShotRunner::new(trials)
        .run(circuit, || {
            let mut sim = BasisTracker::zeros(circuit.num_qubits());
            prepare(&mut sim);
            Box::new(sim)
        })
        .unwrap()
        .mean()
        .toffoli
}

#[test]
fn monte_carlo_matches_analytic_expectation_modadd() {
    // The paper's "in expectation" columns are analytic; our executor
    // measures what actually ran. The two must agree to Monte-Carlo error.
    let n = 8usize;
    let p = 251u128;
    let trials = 600;
    for spec in [
        ModAddSpec::cdkpm(Uncompute::Mbu),
        ModAddSpec::gidney(Uncompute::Mbu),
        ModAddSpec::gidney_cdkpm(Uncompute::Mbu),
        ModAddSpec::vbe4(Uncompute::Mbu),
        ModAddSpec::vbe5(Uncompute::Mbu),
    ] {
        let layout = modular::modadd_circuit(&spec, n, p).unwrap();
        let analytic = layout.circuit.expected_counts().toffoli;
        let measured = monte_carlo_toffoli(
            &layout.circuit,
            |sim| {
                sim.set_value(layout.x.qubits(), 200).unwrap();
                sim.set_value(layout.y.qubits(), 123).unwrap();
            },
            trials,
        );
        let sigma_bound = analytic * 0.08 + 2.0;
        assert!(
            (measured - analytic).abs() < sigma_bound,
            "{spec:?}: measured {measured} vs analytic {analytic}"
        );
    }
}

#[test]
fn mbu_outcome_statistics_are_uniform() {
    // Lemma 4.1: the X-basis measurement of the flag is a fair coin
    // regardless of the input — stated as an ensemble assertion over the
    // ShotRunner's aggregated outcome frequencies.
    let n = 6usize;
    let p = 61u128;
    let spec = ModAddSpec::cdkpm(Uncompute::Mbu);
    let layout = modular::modadd_circuit(&spec, n, p).unwrap();
    for (x, y) in [(0u128, 0u128), (60, 60), (30, 31)] {
        let trials = 300u64;
        let ensemble = ShotRunner::new(trials)
            .with_master_seed(x as u64 ^ (y as u64).rotate_left(32))
            .run(&layout.circuit, || {
                let mut sim = BasisTracker::zeros(layout.circuit.num_qubits());
                sim.set_value(layout.x.qubits(), x).unwrap();
                sim.set_value(layout.y.qubits(), y).unwrap();
                Box::new(sim)
            })
            .unwrap();
        // The MBU measurement is the last classical bit written.
        let flag = ensemble.last_clbit().expect("MBU flag measured");
        assert_eq!(
            ensemble.outcome_writes(flag),
            trials,
            "flag written every shot"
        );
        let freq = ensemble.outcome_frequency(flag).unwrap();
        assert!(
            (0.3..=0.7).contains(&freq),
            "outcome-1 frequency {freq} for ({x},{y})"
        );
    }
}

#[test]
fn mbu_modadd_is_phase_exact_on_superpositions() {
    // The strongest MBU correctness statement: on a superposition over x,
    // the MBU modular adder must produce *exactly* Σ|x⟩|x+y mod p⟩ with
    // positive uniform amplitudes, for every measurement outcome path.
    let n = 3usize;
    let p = 5u64;
    for spec in [
        ModAddSpec::cdkpm(Uncompute::Mbu),
        ModAddSpec::gidney(Uncompute::Mbu),
        ModAddSpec::vbe5(Uncompute::Mbu),
    ] {
        let layout = modular::modadd_circuit(&spec, n, u128::from(p)).unwrap();
        // Superpose x over {0..3} (2 qubits of H keeps x < p = 5).
        let mut full = Circuit::new(layout.circuit.num_qubits(), layout.circuit.num_clbits());
        full.push(mbu_circuit::Op::Gate(mbu_circuit::Gate::H(layout.x[0])));
        full.push(mbu_circuit::Op::Gate(mbu_circuit::Gate::H(layout.x[1])));
        for op in layout.circuit.ops() {
            full.push(op.clone());
        }
        let y0 = 3u64;
        for seed in 0..12 {
            let mut sv = StateVector::zeros(full.num_qubits()).unwrap();
            sv.prepare_basis(StateVector::index_with(&[(layout.y.qubits(), y0)]))
                .unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            sv.run(&full, &mut rng).unwrap();
            for x0 in 0..4u64 {
                let idx = StateVector::index_with(&[
                    (layout.x.qubits(), x0),
                    (layout.y.qubits(), (x0 + y0) % p),
                ]);
                let a = sv.amplitude(idx);
                assert!(
                    (a.re - 0.5).abs() < 1e-9 && a.im.abs() < 1e-9,
                    "{spec:?} seed {seed} x={x0}: amplitude {a}"
                );
            }
        }
    }
}

#[test]
fn expected_savings_match_theorems_4_3_to_4_5() {
    // Thm 4.3: CDKPM 8n → 7n; Thm 4.4: Gidney 4n → 3.5n;
    // Thm 4.5: hybrid 6n → 5.5n. Compare the *difference* of our measured
    // expected counts against the theorems' savings of n (resp. n/2).
    let n = 32usize;
    let p = (1u128 << 32) - 5;
    let cases = [
        (ModAddSpec::cdkpm(Uncompute::Unitary), n as f64),
        (ModAddSpec::gidney(Uncompute::Unitary), n as f64 / 2.0),
        (ModAddSpec::gidney_cdkpm(Uncompute::Unitary), n as f64 / 2.0),
    ];
    for (plain_spec, expected_saving) in cases {
        let mbu_spec = ModAddSpec {
            uncompute: Uncompute::Mbu,
            ..plain_spec
        };
        let plain = modular::modadd_circuit(&plain_spec, n, p).unwrap();
        let with_mbu = modular::modadd_circuit(&mbu_spec, n, p).unwrap();
        let saving =
            plain.circuit.expected_counts().toffoli - with_mbu.circuit.expected_counts().toffoli;
        assert!(
            (saving - expected_saving).abs() <= 2.0,
            "{plain_spec:?}: saving {saving} vs theorem {expected_saving}"
        );
    }
}

#[test]
fn two_sided_comparator_statistics_and_savings() {
    let n = 10usize;
    let plain = two_sided::in_range_circuit(AdderKind::Cdkpm, Uncompute::Unitary, n).unwrap();
    let with_mbu = two_sided::in_range_circuit(AdderKind::Cdkpm, Uncompute::Mbu, n).unwrap();

    // Functional equality across many random inputs and seeds.
    let mut lcg = 99u128;
    for trial in 0..40u64 {
        lcg = lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let x = lcg % (1 << n);
        lcg = lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let y = lcg % (1 << n);
        lcg = lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let z = lcg % (1 << n);
        for layout in [&plain, &with_mbu] {
            let mut sim = BasisTracker::zeros(layout.circuit.num_qubits());
            sim.set_value(layout.x.qubits(), x).unwrap();
            sim.set_value(layout.y.qubits(), y).unwrap();
            sim.set_value(layout.z.qubits(), z).unwrap();
            let mut rng = StdRng::seed_from_u64(trial);
            sim.run(&layout.circuit, &mut rng).unwrap();
            assert_eq!(sim.bit(layout.t).unwrap(), y < x && x < z);
            assert!(sim.global_phase().is_zero());
        }
    }

    // Thm 4.13: r = 2·r_COMP + r'_C-COMP → 1.5·r_COMP + r'_C-COMP.
    let r_comp = 2.0 * n as f64;
    let saving =
        plain.circuit.expected_counts().toffoli - with_mbu.circuit.expected_counts().toffoli;
    assert!((saving - r_comp / 2.0).abs() < 1.0, "saving {saving}");
}

#[test]
fn monte_carlo_two_sided_quarter_saving() {
    // The paper: "we save 25% for the Tof gate cost" on the comparator
    // pair. Check the measured expectation over runs.
    let n = 8usize;
    let plain = two_sided::in_range_circuit(AdderKind::Gidney, Uncompute::Unitary, n).unwrap();
    let with_mbu = two_sided::in_range_circuit(AdderKind::Gidney, Uncompute::Mbu, n).unwrap();
    let trials = 400;
    let prep = |layout: &two_sided::InRange| {
        let (x, y, z) = (100u128, 50u128, 200u128);
        let xq = layout.x.qubits().to_vec();
        let yq = layout.y.qubits().to_vec();
        let zq = layout.z.qubits().to_vec();
        move |sim: &mut BasisTracker| {
            sim.set_value(&xq, x).unwrap();
            sim.set_value(&yq, y).unwrap();
            sim.set_value(&zq, z).unwrap();
        }
    };
    let t_plain = monte_carlo_toffoli(&plain.circuit, prep(&plain), trials);
    let t_mbu = monte_carlo_toffoli(&with_mbu.circuit, prep(&with_mbu), trials);
    assert!(
        t_mbu < t_plain,
        "MBU must reduce measured Toffolis: {t_mbu} vs {t_plain}"
    );
    // Expected reduction: n/2 out of 3n+1 ≈ 13–17%.
    let ratio = 1.0 - t_mbu / t_plain;
    assert!(ratio > 0.08 && ratio < 0.30, "ratio {ratio}");
}

#[test]
fn executed_counts_bifurcate_by_outcome() {
    // On outcome 0 the correction must not run; on outcome 1 it must. The
    // per-shot probe exposes the (outcome, executed-Toffoli) pairs of the
    // whole ensemble at once.
    let n = 6usize;
    let p = 61u128;
    let spec = ModAddSpec::cdkpm(Uncompute::Mbu);
    let layout = modular::modadd_circuit(&spec, n, p).unwrap();
    let (_, observations) = ShotRunner::new(64)
        .run_probed(
            &layout.circuit,
            || {
                let mut sim = BasisTracker::zeros(layout.circuit.num_qubits());
                sim.set_value(layout.x.qubits(), 30).unwrap();
                sim.set_value(layout.y.qubits(), 40).unwrap();
                Box::new(sim)
            },
            |_, ex| {
                let outcome = ex.classical.last().copied().flatten().unwrap();
                (outcome, ex.counts.toffoli)
            },
        )
        .unwrap();
    let cheap = observations.iter().find(|(o, _)| !o).map(|(_, t)| *t);
    let costly = observations.iter().find(|(o, _)| *o).map(|(_, t)| *t);
    let (cheap, costly) = (
        cheap.expect("outcome 0 should occur within 64 shots"),
        costly.expect("outcome 1 should occur within 64 shots"),
    );
    assert!(
        costly > cheap,
        "correction path must cost more: {costly} vs {cheap}"
    );
    // The gap is exactly the oracle comparator (2n Toffolis).
    assert_eq!(costly - cheap, 2 * n as u64);
}
